"""Named synthetic stand-ins for the paper's evaluation datasets.

The paper (Table 4) evaluates on SNAP / KONECT / DIMACS / Web Data Commons /
WebGraph datasets.  Those cannot be shipped or downloaded here, so each
dataset name used in §7 maps to a calibrated synthetic generator that
reproduces the structural features the experiment depends on:

- the *class* (social friendship, hyperlink, communication, collaboration,
  road, web crawl),
- the degree-distribution family (power-law for all but roads),
- the triangles-per-vertex regime T/n the paper selects graphs by
  (Fig. 5 uses T/n = 1052 (s-cds), 20 (s-pok), 80 (v-ewk)),
- relative size ordering (scaled down ~100–1000x so experiments complete on
  a laptop-class box, as allowed by the reproduction scope).

``load(name)`` returns the stand-in; ``PAPER_STATS`` records the original
(n, m) from Table 4 so reports can show what was substituted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.graphs.weights import with_uniform_weights

__all__ = ["load", "available", "describe", "PAPER_STATS", "DatasetSpec"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named stand-in: how to build it and what it substitutes."""

    name: str
    paper_n: int
    paper_m: int
    category: str
    build: Callable[[int], CSRGraph]
    note: str = ""


def _s_cds(seed: int) -> CSRGraph:
    """Catster/Dogster stand-in: extremely triangle-dense (paper T/n ~ 1052).

    Dense 32-cliques (communities) overlaid with a power-law RMAT backbone:
    the cliques supply hundreds of triangles per vertex, the backbone the
    heavy-tailed degrees of a pet-owner social network.
    """
    import numpy as np

    n = 4096
    clique_size = 32
    base = gen.rmat(12, 4, seed=seed)
    idx = np.arange(n, dtype=np.int64).reshape(-1, clique_size)
    iu, iv = np.triu_indices(clique_size, k=1)
    src = np.concatenate([base.edge_src] + [row[iu] for row in idx])
    dst = np.concatenate([base.edge_dst] + [row[iv] for row in idx])
    return CSRGraph.from_edges(n, src, dst)


def _s_pok(seed: int) -> CSRGraph:
    # Pokec: large social graph with comparatively few triangles.
    # Paper: T/n ~ 20 with T/m ~ 1; this stand-in lands T/n ~ 4, T/m ~ 0.6
    # (the flatter RMAT quadrants trim triangle density).
    return gen.rmat(13, 8, a=0.45, b=0.22, c=0.22, seed=seed)


def _v_ewk(seed: int) -> CSRGraph:
    # Wikipedia evolution (de): medium triangle density
    # (paper T/n ~ 80; this stand-in lands ~60).
    return gen.rmat(13, 10, seed=seed)


def _s_you(seed: int) -> CSRGraph:
    # Youtube: sparse social network, low triangle count per vertex
    # (T/m ~ 0.2, matching the paper's sparse-social regime).
    return gen.rmat(13, 4, a=0.45, b=0.22, c=0.22, seed=seed)


def _s_flx(seed: int) -> CSRGraph:
    # Flixster: sparse social network.
    return gen.rmat(12, 4, seed=seed)


def _s_flc(seed: int) -> CSRGraph:
    # Flickr: very triangle-dense (T/n ~ 1091 in the paper's Table 6).
    return gen.powerlaw_cluster(3500, 12, 0.9, seed=seed)


def _s_lib(seed: int) -> CSRGraph:
    # Libimseti: dense rating-like graph.
    return gen.powerlaw_cluster(3000, 16, 0.7, seed=seed)


def _h_dbp(seed: int) -> CSRGraph:
    # DBpedia hyperlinks: sparse hyperlink graph.
    return gen.rmat(12, 3, seed=seed)


def _h_hud(seed: int) -> CSRGraph:
    # Hudong encyclopedia hyperlinks.
    return gen.rmat(12, 6, seed=seed)


def _l_cit(seed: int) -> CSRGraph:
    # Patent citations: near-tree-like with some triangles.
    return gen.powerlaw_cluster(6000, 4, 0.25, seed=seed)


def _l_dbl(seed: int) -> CSRGraph:
    # DBLP co-authorship: many small cliques -> high clustering.
    return gen.powerlaw_cluster(5000, 6, 0.8, seed=seed)


def _v_skt(seed: int) -> CSRGraph:
    # Skitter internet topology.
    return gen.powerlaw_cluster(5000, 6, 0.5, seed=seed)


def _v_usa(seed: int) -> CSRGraph:
    # USA road network: near-planar, triangle-free, weighted.
    return gen.road_network(80, 80, drop_p=0.04, seed=seed)


def _m_twt(seed: int) -> CSRGraph:
    # Twitter follow graph: heavy power law.
    return gen.rmat(14, 12, seed=seed)


def _s_frs(seed: int) -> CSRGraph:
    # Friendster: the biggest friendship graph in Table 4.
    return gen.rmat(14, 16, seed=seed)


def _h_dit(seed: int) -> CSRGraph:
    # .it domain crawl: power-law hyperlink graph.
    return gen.rmat(13, 14, seed=seed)


def _l_act(seed: int) -> CSRGraph:
    # Actor collaboration: dense collaboration cliques.
    return gen.powerlaw_cluster(4000, 20, 0.85, seed=seed)


def _h_wdb(seed: int) -> CSRGraph:
    return gen.rmat(13, 8, seed=seed)


def _h_wen(seed: int) -> CSRGraph:
    return gen.rmat(13, 6, seed=seed)


def _h_wit(seed: int) -> CSRGraph:
    return gen.rmat(12, 10, seed=seed)


def _s_ljn(seed: int) -> CSRGraph:
    return gen.rmat(13, 7, seed=seed)


def _s_ork(seed: int) -> CSRGraph:
    return gen.powerlaw_cluster(5000, 18, 0.6, seed=seed)


def _h_dar(seed: int) -> CSRGraph:
    return gen.rmat(12, 12, seed=seed)


def _h_din(seed: int) -> CSRGraph:
    return gen.rmat(12, 11, seed=seed)


def _h_dsk(seed: int) -> CSRGraph:
    return gen.rmat(13, 12, seed=seed)


def _v_wbb(seed: int) -> CSRGraph:
    return gen.rmat(13, 5, seed=seed)


def _s_gmc(seed: int) -> CSRGraph:
    return gen.rmat(12, 8, seed=seed)


# Fig. 8 "largest publicly available" hyperlink crawls; these are the
# largest stand-ins we generate (scaled from 33–128 B edges).
def _h_wdc(seed: int) -> CSRGraph:
    return gen.rmat(16, 12, seed=seed, directed=True)


def _h_deu(seed: int) -> CSRGraph:
    return gen.rmat(16, 10, seed=seed, directed=True)


def _h_duk(seed: int) -> CSRGraph:
    return gen.rmat(15, 12, seed=seed, directed=True)


def _h_clu(seed: int) -> CSRGraph:
    return gen.rmat(15, 10, seed=seed, directed=True)


def _h_dgh(seed: int) -> CSRGraph:
    return gen.rmat(15, 8, seed=seed, directed=True)


_SPECS: dict[str, DatasetSpec] = {}


def _register(name, paper_n, paper_m, category, build, note=""):
    _SPECS[name] = DatasetSpec(name, paper_n, paper_m, category, build, note)


_register("s-cds", 623_000, 15_000_000, "friendship", _s_cds, "T/n ~ 1052 regime (Fig. 5)")
_register("s-pok", 1_600_000, 30_000_000, "friendship", _s_pok, "T/n ~ 20 regime (Fig. 5)")
_register("v-ewk", 2_100_000, 43_200_000, "various", _v_ewk, "T/n ~ 80 regime (Fig. 5)")
_register("s-you", 3_200_000, 9_300_000, "friendship", _s_you)
_register("s-flx", 2_500_000, 7_900_000, "friendship", _s_flx)
_register("s-flc", 2_300_000, 33_000_000, "friendship", _s_flc)
_register("s-lib", 220_000, 17_000_000, "friendship", _s_lib)
_register("s-ljn", 5_300_000, 49_000_000, "friendship", _s_ljn)
_register("s-ork", 3_100_000, 117_000_000, "friendship", _s_ork)
_register("s-frs", 64_000_000, 2_100_000_000, "friendship", _s_frs)
_register("s-gmc", 0, 0, "friendship", _s_gmc, "appears only in Fig. 6 panel")
_register("h-dbp", 3_900_000, 13_800_000, "hyperlink", _h_dbp)
_register("h-hud", 2_400_000, 18_800_000, "hyperlink", _h_hud)
_register("h-wdb", 12_000_000, 378_000_000, "hyperlink", _h_wdb)
_register("h-wen", 18_000_000, 172_000_000, "hyperlink", _h_wen)
_register("h-wit", 1_800_000, 91_500_000, "hyperlink", _h_wit)
_register("h-dar", 22_000_000, 639_000_000, "hyperlink", _h_dar)
_register("h-din", 7_400_000, 194_000_000, "hyperlink", _h_din)
_register("h-dit", 41_000_000, 1_150_000_000, "hyperlink", _h_dit)
_register("h-dsk", 50_000_000, 1_940_000_000, "hyperlink", _h_dsk)
_register("l-cit", 3_700_000, 16_500_000, "collaboration", _l_cit)
_register("l-dbl", 1_820_000, 13_800_000, "collaboration", _l_dbl)
_register("l-act", 2_100_000, 228_000_000, "collaboration", _l_act)
_register("m-twt", 52_500_000, 1_960_000_000, "communication", _m_twt)
_register("v-skt", 1_690_000, 11_000_000, "various", _v_skt)
_register("v-usa", 23_900_000, 58_300_000, "road", _v_usa, "weighted; triangle-free")
_register("v-wbb", 118_000_000, 1_010_000_000, "various", _v_wbb)
_register("h-wdc", 3_500_000_000, 128_000_000_000, "webcrawl", _h_wdc, "Fig. 8; directed")
_register("h-deu", 1_070_000_000, 91_700_000_000, "webcrawl", _h_deu, "Fig. 8; directed")
_register("h-duk", 787_000_000, 47_600_000_000, "webcrawl", _h_duk, "Fig. 8; directed")
_register("h-clu", 978_000_000, 42_500_000_000, "webcrawl", _h_clu, "Fig. 8; directed")
_register("h-dgh", 988_000_000, 33_800_000_000, "webcrawl", _h_dgh, "Fig. 8; directed")

PAPER_STATS = {name: (s.paper_n, s.paper_m) for name, s in _SPECS.items()}


def available() -> list[str]:
    """Names of all dataset stand-ins, in registration (paper-table) order."""
    return list(_SPECS)


def describe(name: str) -> DatasetSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; see datasets.available()") from None


def load(name: str, *, seed: int = 0, weighted: bool = False) -> CSRGraph:
    """Build the synthetic stand-in for a paper dataset.

    Parameters
    ----------
    name:
        A Table 4 symbol such as ``"s-cds"`` or ``"v-usa"``.
    seed:
        Generator seed; the default reproduces the shipped experiments.
    weighted:
        Attach uniform-random weights in [1, 10] (no-op if the dataset is
        already weighted, e.g. ``v-usa``).
    """
    spec = describe(name)
    g = spec.build(seed)
    if weighted and not g.is_weighted:
        g = with_uniform_weights(g, 1.0, 10.0, seed=seed + 1)
    return g
