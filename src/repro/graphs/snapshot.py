"""Fast binary CSR snapshots (v1 ``.npz``, v2 exploded ``.npy`` + header).

A snapshot holds every array of a :class:`~repro.graphs.csr.CSRGraph` —
the canonical edge arrays *and* the derived adjacency
(``indptr``/``indices``/``arc_edge_ids``) — so loading is a handful of
array reads plus slot assignment: no edge list parsing, no deduplication,
no ``lexsort`` to rebuild the CSR.  This is what lets the sweep runner's
worker processes pick up a many-edge graph in milliseconds, and what the
artifact store keys graphs under (see
:func:`repro.runner.fingerprint.graph_fingerprint`).

Two layouts share one loader:

- **v1** (``SNAPSHOT_VERSION``): a single ``.npz`` archive.  Compact and
  one-file, but ``np.load(mmap_mode=...)`` cannot memory-map arrays that
  live *inside* a zip archive, so a v1 snapshot always decompresses into
  private process memory.
- **v2** (``EXPLODED_SNAPSHOT_VERSION``): an "exploded" directory of raw
  ``.npy`` sidecars plus a ``header.json`` manifest.  Each sidecar is a
  plain flat file, so ``load_snapshot(path, mmap=True)`` maps the arrays
  read-only straight off disk — graphs larger than RAM stream pages on
  demand (the out-of-core shard scheduler in :mod:`repro.runner.shards`
  rides this).

Both layouts are written atomically with the shared fileio discipline
(temp file + fsync + ``os.replace``).  For v2 the sidecars land first and
the header last, so a reader that finds a header always finds the arrays
it names; a missing/partial header reads as damage.  (Overwriting an
existing v2 snapshot *in place* with different content is not atomic as a
unit — write content-addressed paths, as the store does, or fresh
directories.)

Loaded arrays are returned **read-only** (``flags.writeable = False``):
``CSRGraph`` is immutable by contract, and snapshot/shared-memory buffers
may be shared by many workers — accidental mutation must raise instead of
silently corrupting every sibling.  Loads also cross-validate shapes and
dtypes (:func:`validate_parts`), so a corrupt-but-well-formed file fails
here, naming the offending field, not later with an unrelated
``IndexError`` deep inside a kernel.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.fileio import atomic_write

__all__ = [
    "SNAPSHOT_VERSION",
    "EXPLODED_SNAPSHOT_VERSION",
    "save_snapshot",
    "load_snapshot",
    "validate_parts",
    "SnapshotError",
]

#: Layout version of the single-file ``.npz`` snapshot.
SNAPSHOT_VERSION = 1
#: Layout version of the exploded (directory) snapshot.
EXPLODED_SNAPSHOT_VERSION = 2

#: Header file of an exploded snapshot; written last, read first.
HEADER_NAME = "header.json"

#: Array fields of a snapshot, in canonical order.  ``edge_weights`` is
#: optional (unweighted graphs omit it).
ARRAY_FIELDS = (
    "edge_src",
    "edge_dst",
    "indptr",
    "indices",
    "arc_edge_ids",
    "edge_weights",
)

_EXPECTED_DTYPES = {
    "edge_src": np.dtype(np.int64),
    "edge_dst": np.dtype(np.int64),
    "indptr": np.dtype(np.int64),
    "indices": np.dtype(np.int64),
    "arc_edge_ids": np.dtype(np.int64),
    "edge_weights": np.dtype(np.float64),
}


class SnapshotError(ValueError):
    """Raised when a file is not a loadable CSR snapshot."""


def validate_parts(
    n: int, directed: bool, parts: dict, *, source="snapshot"
) -> None:
    """Cross-field consistency check of CSR arrays about to be adopted.

    ``parts`` maps the :data:`ARRAY_FIELDS` names to arrays
    (``edge_weights`` may be absent or ``None``).  Raises
    :class:`SnapshotError` naming the offending field for any shape or
    dtype that cannot belong to a well-formed ``CSRGraph`` of ``n``
    vertices — the checks are O(1) (shapes, dtypes, the two ``indptr``
    endpoints), so they cost nothing against mmap-backed arrays.

    Shared by the snapshot loader and the shared-memory attach path
    (:mod:`repro.runner.shm`): both hand arrays to
    :meth:`CSRGraph._from_parts`, which trusts its inputs.
    """

    def bad(field: str, message: str) -> SnapshotError:
        return SnapshotError(f"{source}: field {field!r} {message}")

    if n < 0:
        raise bad("n", f"is negative ({n})")
    for field in ARRAY_FIELDS:
        arr = parts.get(field)
        if arr is None:
            if field == "edge_weights":
                continue
            raise bad(field, "is missing")
        if getattr(arr, "ndim", None) != 1:
            raise bad(field, "is not a 1-D array")
        if arr.dtype != _EXPECTED_DTYPES[field]:
            raise bad(
                field,
                f"has dtype {arr.dtype}, expected {_EXPECTED_DTYPES[field]}",
            )
    edge_src = parts["edge_src"]
    m = len(edge_src)
    if parts["edge_dst"].shape != edge_src.shape:
        raise bad(
            "edge_dst",
            f"has length {len(parts['edge_dst'])}, expected {m} (edge_src)",
        )
    indptr = parts["indptr"]
    if len(indptr) != n + 1:
        raise bad("indptr", f"has length {len(indptr)}, expected n+1 = {n + 1}")
    indices = parts["indices"]
    expected_arcs = m if directed else 2 * m
    if len(indices) != expected_arcs:
        raise bad(
            "indices",
            f"has length {len(indices)}, expected {expected_arcs} "
            f"({'directed' if directed else 'undirected'} graph with {m} edges)",
        )
    if parts["arc_edge_ids"].shape != indices.shape:
        raise bad(
            "arc_edge_ids",
            f"has length {len(parts['arc_edge_ids'])}, expected {len(indices)} (indices)",
        )
    if int(indptr[0]) != 0:
        raise bad("indptr", f"does not start at 0 (got {int(indptr[0])})")
    if int(indptr[-1]) != len(indices):
        raise bad(
            "indptr",
            f"ends at {int(indptr[-1])}, expected len(indices) = {len(indices)}",
        )
    weights = parts.get("edge_weights")
    if weights is not None and weights.shape != edge_src.shape:
        raise bad(
            "edge_weights", f"has length {len(weights)}, expected {m} (edge_src)"
        )


def _frozen(arr: np.ndarray) -> np.ndarray:
    """Mark an array read-only (immutability contract, enforced)."""
    try:
        arr.flags.writeable = False
    except ValueError:  # already a read-only view (e.g. mmap_mode="r")
        pass
    return arr


def _assemble(n: int, directed: bool, parts: dict, *, source) -> CSRGraph:
    """Validate ``parts`` and reassemble the graph with read-only arrays."""
    validate_parts(n, directed, parts, source=source)
    return CSRGraph._from_parts(
        n,
        _frozen(parts["edge_src"]),
        _frozen(parts["edge_dst"]),
        None if parts.get("edge_weights") is None else _frozen(parts["edge_weights"]),
        directed=directed,
        indptr=_frozen(parts["indptr"]),
        indices=_frozen(parts["indices"]),
        arc_edge_ids=_frozen(parts["arc_edge_ids"]),
    )


# ---------------------------------------------------------------------- #
# writing
# ---------------------------------------------------------------------- #


def save_snapshot(g: CSRGraph, path, *, layout: str = "npz") -> Path:
    """Write ``g`` to ``path`` as a binary snapshot (atomically).

    ``layout="npz"`` (default) writes the single-file v1 archive;
    ``layout="exploded"`` writes the v2 directory of raw ``.npy``
    sidecars plus ``header.json`` (the mmap-able layout).  Parent
    directories are created.  Returns the path written.
    """
    if layout == "npz":
        arrays = {
            "version": np.int64(SNAPSHOT_VERSION),
            "n": np.int64(g.n),
            "directed": np.bool_(g.directed),
            "edge_src": g.edge_src,
            "edge_dst": g.edge_dst,
            "indptr": g.indptr,
            "indices": g.indices,
            "arc_edge_ids": g.arc_edge_ids,
        }
        if g.edge_weights is not None:
            arrays["edge_weights"] = g.edge_weights
        return atomic_write(path, lambda fh: np.savez(fh, **arrays))
    if layout != "exploded":
        raise ValueError(f"layout must be 'npz' or 'exploded', got {layout!r}")

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    header: dict = {
        "version": EXPLODED_SNAPSHOT_VERSION,
        "n": g.n,
        "directed": g.directed,
        "arrays": {},
    }
    for name in ARRAY_FIELDS:
        arr = getattr(g, name)
        if arr is None:
            continue
        # Each sidecar is atomic on its own; the header lands last, so a
        # crash mid-write leaves a directory without a (new) header — the
        # loader treats that as damage, never as a torn graph.
        atomic_write(path / f"{name}.npy", lambda fh, a=arr: np.save(fh, a))
        header["arrays"][name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
        }
    atomic_write(
        path / HEADER_NAME,
        lambda fh: fh.write(
            (json.dumps(header, indent=2, sort_keys=True) + "\n").encode()
        ),
    )
    return path


# ---------------------------------------------------------------------- #
# loading
# ---------------------------------------------------------------------- #


def load_snapshot(path, *, mmap: bool = False) -> CSRGraph:
    """Load a snapshot (either layout) back into a :class:`CSRGraph`.

    ``mmap=True`` memory-maps the arrays read-only instead of reading
    them into process memory — v2 (exploded) snapshots only: arrays
    inside a v1 ``.npz`` archive cannot be mapped, and asking for it is
    a :class:`SnapshotError` rather than a silent full load.

    Raises :class:`SnapshotError` for anything that is not a complete,
    self-consistent snapshot of a supported version (truncated files,
    foreign ``.npz`` archives, future versions, cross-field shape/dtype
    damage — the error names the offending field), so callers can treat
    damage as a cache miss instead of crashing.  All returned arrays are
    read-only.
    """
    path = Path(path)
    if path.is_dir() or (path / HEADER_NAME).exists():
        return _load_exploded(path, mmap=mmap)
    if mmap:
        raise SnapshotError(
            f"{path}: cannot memory-map a v1 .npz snapshot; write the "
            "exploded layout (save_snapshot(..., layout='exploded'))"
        )
    try:
        with np.load(path) as data:
            try:
                version = int(data["version"])
            except KeyError:
                raise SnapshotError(f"{path} is not a CSR snapshot") from None
            if version != SNAPSHOT_VERSION:
                raise SnapshotError(
                    f"{path} has snapshot version {version}; "
                    f"this build reads {SNAPSHOT_VERSION}"
                )
            parts = {
                name: data[name]
                for name in ARRAY_FIELDS
                if name in data
            }
            return _assemble(
                int(data["n"]), bool(data["directed"]), parts, source=path
            )
    except SnapshotError:
        raise
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as err:
        raise SnapshotError(f"cannot read CSR snapshot {path}: {err}") from err


def _load_exploded(path: Path, *, mmap: bool) -> CSRGraph:
    header_path = path / HEADER_NAME
    try:
        header = json.loads(header_path.read_text())
    except FileNotFoundError:
        raise SnapshotError(
            f"{path} is not a CSR snapshot (no {HEADER_NAME})"
        ) from None
    except (OSError, ValueError, UnicodeDecodeError) as err:
        raise SnapshotError(f"cannot read CSR snapshot {path}: {err}") from err
    if not isinstance(header, dict) or "version" not in header:
        raise SnapshotError(f"{path} is not a CSR snapshot (malformed header)")
    version = header["version"]
    if version != EXPLODED_SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} has snapshot version {version}; "
            f"this build reads {EXPLODED_SNAPSHOT_VERSION} (exploded)"
        )
    declared = header.get("arrays")
    if not isinstance(declared, dict):
        raise SnapshotError(f"{path}: field 'arrays' is missing from the header")
    parts: dict = {}
    try:
        for name in ARRAY_FIELDS:
            meta = declared.get(name)
            if meta is None:
                continue
            arr = np.load(
                path / f"{name}.npy",
                mmap_mode="r" if mmap else None,
                allow_pickle=False,
            )
            # The header is the unit of atomicity: a sidecar differing
            # from what the header declares is mixed-generation damage.
            if arr.dtype.str != meta.get("dtype") or list(arr.shape) != meta.get(
                "shape"
            ):
                raise SnapshotError(
                    f"{path}: field {name!r} does not match its header entry "
                    f"(found {arr.dtype.str}{list(arr.shape)}, header says "
                    f"{meta.get('dtype')}{meta.get('shape')})"
                )
            parts[name] = arr
        return _assemble(
            int(header.get("n", -1)),
            bool(header.get("directed", False)),
            parts,
            source=path,
        )
    except SnapshotError:
        raise
    except (OSError, ValueError, KeyError, EOFError) as err:
        raise SnapshotError(f"cannot read CSR snapshot {path}: {err}") from err
