"""Fast binary CSR snapshots.

A snapshot is a single ``.npz`` file holding every array of a
:class:`~repro.graphs.csr.CSRGraph` — the canonical edge arrays *and* the
derived adjacency (``indptr``/``indices``/``arc_edge_ids``) — so loading
is a handful of mmap-friendly array reads plus slot assignment: no edge
list parsing, no deduplication, no ``lexsort`` to rebuild the CSR.  This
is what lets the sweep runner's worker processes pick up a many-edge graph
in milliseconds, and what the artifact store keys graphs under (see
:func:`repro.runner.fingerprint.graph_fingerprint`).

Snapshots are versioned (`SNAPSHOT_VERSION`) and written atomically
(temp file + ``os.replace``), mirroring the artifact-store discipline: a
reader either sees a complete snapshot or none at all.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.fileio import atomic_write

__all__ = ["SNAPSHOT_VERSION", "save_snapshot", "load_snapshot", "SnapshotError"]

SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """Raised when a file is not a loadable CSR snapshot."""


def save_snapshot(g: CSRGraph, path) -> Path:
    """Write ``g`` to ``path`` as a binary snapshot (atomically).

    Parent directories are created.  Returns the path written.
    """
    arrays = {
        "version": np.int64(SNAPSHOT_VERSION),
        "n": np.int64(g.n),
        "directed": np.bool_(g.directed),
        "edge_src": g.edge_src,
        "edge_dst": g.edge_dst,
        "indptr": g.indptr,
        "indices": g.indices,
        "arc_edge_ids": g.arc_edge_ids,
    }
    if g.edge_weights is not None:
        arrays["edge_weights"] = g.edge_weights
    return atomic_write(path, lambda fh: np.savez(fh, **arrays))


def load_snapshot(path) -> CSRGraph:
    """Load a snapshot back into a :class:`CSRGraph`.

    Raises :class:`SnapshotError` for anything that is not a complete
    snapshot of a supported version (truncated files, foreign ``.npz``
    archives, future versions), so callers can treat damage as a cache
    miss instead of crashing.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            try:
                version = int(data["version"])
            except KeyError:
                raise SnapshotError(f"{path} is not a CSR snapshot") from None
            if version != SNAPSHOT_VERSION:
                raise SnapshotError(
                    f"{path} has snapshot version {version}; "
                    f"this build reads {SNAPSHOT_VERSION}"
                )
            return CSRGraph._from_parts(
                int(data["n"]),
                data["edge_src"],
                data["edge_dst"],
                data["edge_weights"] if "edge_weights" in data else None,
                directed=bool(data["directed"]),
                indptr=data["indptr"],
                indices=data["indices"],
                arc_edge_ids=data["arc_edge_ids"],
            )
    except SnapshotError:
        raise
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as err:
        raise SnapshotError(f"cannot read CSR snapshot {path}: {err}") from err
