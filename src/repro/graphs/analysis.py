"""Graph-keyed memoization of expensive structural analyses.

Slim Graph's evaluation loop applies many schemes × seeds × algorithms to
the *same* input graph (§5), and several of those steps need the same
expensive derived structure: Triangle Reduction lists the graph's
triangles once per seed, the ``tc`` baseline counts them again,
``summarize``/Table 3 checks count them a third time.  Each of those is
O(m^{3/2}) from scratch.  :class:`AnalysisCache` memoizes such derived
structures **per graph object**:

- **identity-keyed, weakly held** — the key is the graph's object
  identity in a ``WeakKeyDictionary``.  :class:`~repro.graphs.csr.
  CSRGraph` is immutable and every transform returns a *new* object, so
  identity keying gives mutation-free invalidation for free: a derived
  graph can never observe its parent's cached triangles, and cached
  entries die with the graph instead of pinning it in memory.
- **fingerprint-linked** — a graph's content fingerprint
  (:func:`repro.runner.fingerprint.graph_fingerprint`) can be registered
  with :meth:`AnalysisCache.link_fingerprint`; a *different* object with
  the same content (e.g. one reloaded from a binary snapshot) can then
  :meth:`~AnalysisCache.adopt` the live twin's cached analyses instead of
  recomputing them.
- **observable** — per-analysis hit/miss counters surface in
  ``Session.last_grid_perf`` and the runner's ``BENCH_*.json`` records
  (see :func:`stats_delta`), so cache effectiveness is part of the perf
  trajectory and the test suite can assert, e.g., that a multi-seed TR
  sweep lists triangles exactly once.

Analyses register with the :func:`cached_analysis` decorator; only the
bare one-argument form ``fn(graph)`` is memoized — parameterized calls
pass straight through.
"""

from __future__ import annotations

import functools
import weakref
from collections import defaultdict

from repro.obs.metrics import counter as _counter

__all__ = [
    "AnalysisCache",
    "analysis_cache",
    "cached_analysis",
    "stats_delta",
]

# Process-wide rollups of the per-instance hit/miss dicts below; the
# canonical names fixing the historical analysis_hits-vs-hits drift.
_metric_hits = _counter("repro.analysis.hits")
_metric_misses = _counter("repro.analysis.misses")


class AnalysisCache:
    """A weak, graph-keyed memo for derived structural analyses."""

    def __init__(self) -> None:
        self._entries: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._by_fingerprint: dict[str, weakref.ref] = {}
        self._hits: dict[str, int] = defaultdict(int)
        self._misses: dict[str, int] = defaultdict(int)
        self.enabled = True

    # -- core lookup -------------------------------------------------------- #

    def lookup(self, graph, name: str, build):
        """The cached ``name`` analysis of ``graph``, computing via
        ``build(graph)`` on a miss.  Counts a hit or a miss either way."""
        if not self.enabled:
            return build(graph)
        entry = self._entry(graph)
        if entry is None:  # graph cannot be weakly referenced / hashed
            return build(graph)
        if name in entry:
            self._hits[name] += 1
            _metric_hits.inc()
            return entry[name]
        self._misses[name] += 1
        _metric_misses.inc()
        value = build(graph)
        entry[name] = value
        return value

    def peek(self, graph, name: str, default=None):
        """The cached value if present; never computes.

        A found value counts as a hit (it is a successful cache use — e.g.
        ``count_triangles`` reading an already-listed triangle set); an
        absent one counts nothing, because peeking is how callers probe
        for *optional* reuse without committing to the computation.
        """
        if not self.enabled:
            return default
        try:
            entry = self._entries.get(graph)
        except TypeError:
            return default
        if entry is None or name not in entry:
            return default
        self._hits[name] += 1
        _metric_hits.inc()
        return entry[name]

    def put(self, graph, name: str, value) -> None:
        """Install a value computed elsewhere (no hit/miss accounting)."""
        if not self.enabled:
            return
        entry = self._entry(graph)
        if entry is not None:
            entry[name] = value

    def _entry(self, graph) -> dict | None:
        try:
            entry = self._entries.get(graph)
            if entry is None:
                entry = {}
                self._entries[graph] = entry
            return entry
        except TypeError:
            return None

    # -- fingerprint linkage ------------------------------------------------ #

    def link_fingerprint(self, graph, fingerprint: str) -> None:
        """Register ``graph`` as a live carrier of ``fingerprint``.

        The link is weak, and a collected graph prunes its own entry (via
        the weakref callback), so long-lived processes fingerprinting many
        transient graphs do not accumulate dead links.
        """
        if not self.enabled:
            return
        fp = str(fingerprint)
        table = self._by_fingerprint

        def _prune(ref, _fp=fp, _table=table):
            # Only drop the entry if it still points at the dead ref —
            # the fingerprint may have been re-linked to a newer graph.
            if _table.get(_fp) is ref:
                del _table[_fp]

        try:
            table[fp] = weakref.ref(graph, _prune)
        except TypeError:
            pass

    def resolve_fingerprint(self, fingerprint: str):
        """A live graph previously linked to ``fingerprint``, or ``None``."""
        ref = self._by_fingerprint.get(str(fingerprint))
        if ref is None:
            return None
        graph = ref()
        if graph is None:
            del self._by_fingerprint[str(fingerprint)]
        return graph

    def adopt(self, graph, fingerprint: str) -> int:
        """Copy cached analyses from a live same-content twin onto ``graph``.

        Safe because analyses are pure functions of graph *content* and
        the fingerprint is a content hash.  Returns the number of entries
        adopted (0 when no live twin exists).  Also links ``graph`` as a
        carrier of ``fingerprint``.
        """
        if not self.enabled:
            return 0
        adopted = 0
        twin = self.resolve_fingerprint(fingerprint)
        if twin is not None and twin is not graph:
            source = self.peek_all(twin)
            if source:
                entry = self._entry(graph)
                if entry is not None:
                    for name, value in source.items():
                        if name not in entry:
                            entry[name] = value
                            adopted += 1
        self.put(graph, "fingerprint", str(fingerprint))
        self.link_fingerprint(graph, fingerprint)
        return adopted

    def peek_all(self, graph) -> dict:
        """All cached analyses of ``graph`` as ``{name: value}`` (a copy)."""
        try:
            entry = self._entries.get(graph)
        except TypeError:
            return {}
        return dict(entry) if entry else {}

    # -- maintenance & observability ---------------------------------------- #

    def forget(self, graph) -> None:
        """Drop every cached analysis of ``graph``."""
        try:
            self._entries.pop(graph, None)
        except TypeError:
            pass

    def clear(self) -> None:
        """Drop all cached entries and fingerprint links (stats persist)."""
        self._entries.clear()
        self._by_fingerprint.clear()

    def reset_stats(self) -> None:
        self._hits.clear()
        self._misses.clear()

    def stats(self) -> dict:
        """JSON-safe snapshot: total hits/misses plus per-analysis detail."""
        names = sorted(set(self._hits) | set(self._misses))
        return {
            "hits": sum(self._hits.values()),
            "misses": sum(self._misses.values()),
            "by_analysis": {
                name: {"hits": self._hits[name], "misses": self._misses[name]}
                for name in names
            },
            "live_graphs": len(self._entries),
        }


#: The process-wide cache every analysis routes through by default.  Worker
#: processes each get their own (module state is per process), mirroring
#: how the sweep runner shards baseline caches.
_CACHE = AnalysisCache()


def analysis_cache() -> AnalysisCache:
    """The process-wide :class:`AnalysisCache`."""
    return _CACHE


def cached_analysis(name: str):
    """Decorator memoizing a one-argument ``fn(graph)`` analysis.

    Calls with extra arguments bypass the cache (they parameterize the
    analysis, so the graph alone no longer determines the result).
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(graph, *args, **kwargs):
            if args or kwargs:
                return fn(graph, *args, **kwargs)
            return _CACHE.lookup(graph, name, fn)

        wrapper.analysis_name = name
        return wrapper

    return decorate


def stats_delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`AnalysisCache.stats` snapshots.

    Returns the same shape (hits/misses totals plus per-analysis detail,
    zero-activity analyses dropped) — the form perf records embed.
    """
    by: dict[str, dict[str, int]] = {}
    names = set(after.get("by_analysis", {})) | set(before.get("by_analysis", {}))
    for name in sorted(names):
        b = before.get("by_analysis", {}).get(name, {})
        a = after.get("by_analysis", {}).get(name, {})
        hits = a.get("hits", 0) - b.get("hits", 0)
        misses = a.get("misses", 0) - b.get("misses", 0)
        if hits or misses:
            by[name] = {"hits": hits, "misses": misses}
    return {
        "hits": after.get("hits", 0) - before.get("hits", 0),
        "misses": after.get("misses", 0) - before.get("misses", 0),
        "by_analysis": by,
    }
