"""Structural graph statistics.

Cheap, degree-level statistics live here; anything requiring full algorithm
runs (triangle counts, components, diameter) is imported lazily from
:mod:`repro.algorithms` to keep the package layering acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["GraphSummary", "summarize", "degree_statistics", "density"]


@dataclass(frozen=True)
class GraphSummary:
    """A one-stop structural profile of a graph.

    Mirrors the columns of the paper's Table 3 header: n, m, degree
    statistics, triangle count, components — everything the theory bounds
    quantify over.
    """

    num_vertices: int
    num_edges: int
    max_degree: int
    avg_degree: float
    num_triangles: int
    triangles_per_vertex: float
    num_components: int
    is_weighted: bool
    directed: bool

    def as_dict(self) -> dict:
        return {
            "n": self.num_vertices,
            "m": self.num_edges,
            "max_degree": self.max_degree,
            "avg_degree": self.avg_degree,
            "T": self.num_triangles,
            "T/n": self.triangles_per_vertex,
            "components": self.num_components,
            "weighted": self.is_weighted,
            "directed": self.directed,
        }


def degree_statistics(g: CSRGraph) -> dict:
    """Max / mean / median degree and degree variance."""
    d = g.degrees
    if g.n == 0:
        return {"max": 0, "mean": 0.0, "median": 0.0, "var": 0.0}
    return {
        "max": int(d.max()),
        "mean": float(d.mean()),
        "median": float(np.median(d)),
        "var": float(d.var()),
    }


def density(g: CSRGraph) -> float:
    """m / (n choose 2) for undirected, m / n(n-1) for directed graphs."""
    if g.n < 2:
        return 0.0
    pairs = g.n * (g.n - 1)
    if not g.directed:
        pairs //= 2
    return g.num_edges / pairs


def summarize(g: CSRGraph) -> GraphSummary:
    """Full structural profile (runs triangle counting and CC)."""
    from repro.algorithms.components import connected_components
    from repro.algorithms.triangles import count_triangles

    t = int(count_triangles(g))
    comps = connected_components(g).num_components
    d = g.degrees
    return GraphSummary(
        num_vertices=g.n,
        num_edges=g.num_edges,
        max_degree=int(d.max()) if g.n else 0,
        avg_degree=float(d.mean()) if g.n else 0.0,
        num_triangles=t,
        triangles_per_vertex=t / g.n if g.n else 0.0,
        num_components=comps,
        is_weighted=g.is_weighted,
        directed=g.directed,
    )
