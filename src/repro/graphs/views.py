"""Subgraph extraction.

Subgraph kernels (§4.5) receive induced subgraphs derived from a
vertex-to-cluster mapping; these helpers materialize such views.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["induced_subgraph", "edge_subgraph", "cluster_subgraphs"]


def induced_subgraph(
    g: CSRGraph, vertices, *, relabel: bool = True
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    original vertex id of subgraph vertex ``i`` (identity if
    ``relabel=False``, in which case non-members become isolated).
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    member = np.zeros(g.n, dtype=bool)
    member[vertices] = True
    keep = member[g.edge_src] & member[g.edge_dst]
    w = None if g.edge_weights is None else g.edge_weights[keep]
    if not relabel:
        sub = CSRGraph(g.n, g.edge_src[keep], g.edge_dst[keep], w, directed=g.directed)
        return sub, np.arange(g.n, dtype=np.int64)
    new_id = np.cumsum(member) - 1
    sub = CSRGraph(
        len(vertices),
        new_id[g.edge_src[keep]],
        new_id[g.edge_dst[keep]],
        w,
        directed=g.directed,
    )
    return sub, vertices


def edge_subgraph(g: CSRGraph, edge_ids) -> CSRGraph:
    """Subgraph keeping only the given canonical edge ids (all vertices)."""
    mask = np.zeros(g.num_edges, dtype=bool)
    mask[np.asarray(edge_ids, dtype=np.int64)] = True
    return g.keep_edges(mask)


def cluster_subgraphs(g: CSRGraph, mapping: np.ndarray):
    """Group vertices by cluster id; yields ``(cluster_id, vertex_array)``.

    ``mapping`` assigns every vertex a cluster id (the §4.5.2 mapping
    structure).  Iteration order is ascending cluster id; vectorized
    grouping via one argsort rather than n list appends.
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.shape != (g.n,):
        raise ValueError("mapping must assign a cluster to every vertex")
    order = np.argsort(mapping, kind="stable")
    sorted_ids = mapping[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [g.n]])
    for s, e in zip(starts, ends):
        yield int(sorted_ids[s]), order[s:e]
