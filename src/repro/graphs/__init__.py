"""Graph substrate: CSR core, builders, generators, datasets, and I/O."""

from repro.graphs.analysis import AnalysisCache, analysis_cache, cached_analysis
from repro.graphs.csr import CSRGraph
from repro.graphs.builder import GraphBuilder
from repro.graphs import generators
from repro.graphs import datasets
from repro.graphs.views import induced_subgraph, edge_subgraph, cluster_subgraphs
from repro.graphs.properties import GraphSummary, summarize, degree_statistics, density
from repro.graphs.weights import (
    with_uniform_weights,
    with_exponential_weights,
    with_unit_weights,
)
from repro.graphs import edgelist
from repro.graphs.snapshot import load_snapshot, save_snapshot

__all__ = [
    "AnalysisCache",
    "analysis_cache",
    "cached_analysis",
    "load_snapshot",
    "save_snapshot",
    "CSRGraph",
    "GraphBuilder",
    "generators",
    "datasets",
    "induced_subgraph",
    "edge_subgraph",
    "cluster_subgraphs",
    "GraphSummary",
    "summarize",
    "degree_statistics",
    "density",
    "with_uniform_weights",
    "with_exponential_weights",
    "with_unit_weights",
    "edgelist",
]
