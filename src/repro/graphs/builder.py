"""Incremental graph construction.

``GraphBuilder`` accumulates edges in growable buffers and finalizes into an
immutable :class:`~repro.graphs.csr.CSRGraph`.  It exists for code that
produces edges one group at a time — decompression of lossy summaries,
synthetic generators, and the distributed engine's per-rank partitions —
without paying repeated array concatenation costs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulate edges, then :meth:`build` a ``CSRGraph``.

    Amortized O(1) appends via doubling buffers (the standard growable-array
    idiom; ``np.append`` in a loop is quadratic).
    """

    def __init__(self, num_vertices: int, *, directed: bool = False, weighted: bool = False):
        self.n = int(num_vertices)
        self.directed = directed
        self.weighted = weighted
        self._cap = 16
        self._len = 0
        self._src = np.empty(self._cap, dtype=np.int64)
        self._dst = np.empty(self._cap, dtype=np.int64)
        self._w = np.empty(self._cap, dtype=np.float64) if weighted else None

    def __len__(self) -> int:
        return self._len

    def _grow(self, need: int) -> None:
        while self._cap < need:
            self._cap *= 2
        self._src = np.resize(self._src, self._cap)
        self._dst = np.resize(self._dst, self._cap)
        if self._w is not None:
            self._w = np.resize(self._w, self._cap)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        if self._len + 1 > self._cap:
            self._grow(self._len + 1)
        self._src[self._len] = u
        self._dst[self._len] = v
        if self._w is not None:
            self._w[self._len] = weight
        self._len += 1

    def add_edges(self, src, dst, weights=None) -> None:
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        k = len(src)
        if len(dst) != k:
            raise ValueError("src and dst must have the same length")
        if self._len + k > self._cap:
            self._grow(self._len + k)
        self._src[self._len : self._len + k] = src
        self._dst[self._len : self._len + k] = dst
        if self._w is not None:
            if weights is None:
                self._w[self._len : self._len + k] = 1.0
            else:
                self._w[self._len : self._len + k] = np.asarray(weights, dtype=np.float64)
        self._len += k

    def build(self, *, dedup: str = "first") -> CSRGraph:
        """Finalize into a clean, deduplicated ``CSRGraph``."""
        w = None if self._w is None else self._w[: self._len]
        return CSRGraph.from_edges(
            self.n,
            self._src[: self._len],
            self._dst[: self._len],
            w,
            directed=self.directed,
            dedup=dedup,
        )
