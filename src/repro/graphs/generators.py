"""Synthetic graph generators.

The paper evaluates on SNAP/KONECT/DIMACS/WebGraph datasets that are not
redistributable here (no network access), so every experiment runs on
synthetic stand-ins produced by this module.  The generators are chosen to
span the structural axes the paper's evaluation varies deliberately:

- **degree law** — RMAT/Kronecker and Barabási–Albert for power-law social
  and web graphs (Figs. 7, 8),
- **triangle density** — Holme–Kim power-law-cluster graphs with a tunable
  triangle-formation probability, matching the paper's selection of graphs
  by triangles-per-vertex T/n (1052 / 80 / 20 in Fig. 5),
- **sparsity / regularity** — 2-D grids for road networks (v-usa; TR gives
  ~no compression there, §7.1), Watts–Strogatz for locally clustered
  graphs, Erdős–Rényi as the triangle-poor control.

All generators are fully deterministic given ``seed`` and return undirected
:class:`~repro.graphs.csr.CSRGraph` objects unless stated otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "erdos_renyi",
    "rmat",
    "barabasi_albert",
    "powerlaw_cluster",
    "watts_strogatz",
    "grid_2d",
    "road_network",
    "complete_graph",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "balanced_tree",
    "triangle_strip",
    "disjoint_union",
]


def erdos_renyi(n: int, *, p: float | None = None, m: int | None = None, seed=None) -> CSRGraph:
    """G(n, p) or G(n, m) random graph.

    Exactly one of ``p``/``m`` must be given.  G(n, m) draws ``m`` distinct
    edges uniformly; G(n, p) uses the same routine with ``m ~ Binomial``,
    which is indistinguishable in distribution and avoids materializing all
    n² pairs.
    """
    check_positive(n, "n")
    rng = as_generator(seed)
    if (p is None) == (m is None):
        raise ValueError("specify exactly one of p or m (p and m are mutually exclusive)")
    total_pairs = n * (n - 1) // 2
    if p is not None:
        check_probability(p, "p")
        m = int(rng.binomial(total_pairs, p)) if total_pairs else 0
    else:
        check_integer(m, "m")
        check_nonnegative(m, "m")
    if m > total_pairs:
        raise ValueError(f"m={m} exceeds the number of vertex pairs {total_pairs}")
    # Sample distinct pair ranks without replacement, decode to (u, v).
    if m == 0:
        return CSRGraph.empty(n)
    ranks = rng.choice(total_pairs, size=m, replace=False)
    u, v = _decode_pair_ranks(np.sort(ranks), n)
    return CSRGraph(n, u, v)


def _decode_pair_ranks(ranks: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map lexicographic ranks of pairs (u < v) back to endpoints.

    Rank of (u, v) is u*n - u*(u+1)/2 + (v - u - 1).  Invert with the
    quadratic formula, vectorized.
    """
    r = ranks.astype(np.float64)
    # Rows have sizes n-1, n-2, ...; rank of (u, u+1) is
    # row_start(u) = u*(n-1) - u*(u-1)/2.  Invert via the quadratic formula,
    # then repair float rounding at row boundaries in both directions.
    u = np.floor(((2 * n - 1) - np.sqrt((2 * n - 1) ** 2 - 8 * r)) / 2).astype(np.int64)
    u = np.clip(u, 0, n - 2)

    def row_start(x):
        return x * (n - 1) - x * (x - 1) // 2

    for _ in range(2):
        u[row_start(u) > ranks] -= 1
        u[row_start(u + 1) <= ranks] += 1
    v = (ranks - row_start(u)) + u + 1
    return u, v.astype(np.int64)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=None,
    directed: bool = False,
) -> CSRGraph:
    """Recursive-MATrix (Kronecker) power-law graph; Graph500 parameters.

    ``n = 2**scale`` vertices and ``edge_factor * n`` generated arcs (the
    final edge count is lower after dedup/self-loop removal, as in Graph500).
    The skewed quadrant probabilities produce the heavy-tailed degree
    distributions of the paper's web/social datasets.
    """
    for value, name in ((scale, "scale"), (edge_factor, "edge_factor")):
        check_integer(value, name)
        check_positive(value, name)
    d = 1.0 - a - b - c
    if d < -1e-9 or min(a, b, c) < 0:
        raise ValueError(
            "RMAT probabilities a, b, c must be nonnegative and sum to <= 1, "
            f"got a={a}, b={b}, c={c}"
        )
    rng = as_generator(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(m)
        src <<= 1
        dst <<= 1
        # Quadrants: a=(0,0), b=(0,1), c=(1,0), d=(1,1).
        go_b = (r >= a) & (r < a + b)
        go_c = (r >= a + b) & (r < a + b + c)
        go_d = r >= a + b + c
        dst += (go_b | go_d).astype(np.int64)
        src += (go_c | go_d).astype(np.int64)
    # Permute vertex labels so degree is not correlated with id.
    perm = rng.permutation(n)
    return CSRGraph.from_edges(n, perm[src], perm[dst], directed=directed)


def barabasi_albert(n: int, m_attach: int, *, seed=None) -> CSRGraph:
    """Preferential-attachment power-law graph (Barabási–Albert).

    Uses the repeated-endpoints list so attachment probability is exactly
    proportional to degree; each new vertex attaches to ``m_attach``
    distinct existing vertices.
    """
    check_positive(n, "n")
    check_positive(m_attach, "m_attach")
    if m_attach >= n:
        raise ValueError(f"m_attach must be < n, got m_attach={m_attach} with n={n}")
    rng = as_generator(seed)
    src = np.empty((n - m_attach) * m_attach, dtype=np.int64)
    dst = np.empty_like(src)
    # Start from a star on the first m_attach+1 vertices.
    targets = list(range(m_attach))
    repeated: list[int] = []
    k = 0
    for v in range(m_attach, n):
        chosen = set()
        for t in targets:
            src[k] = v
            dst[k] = t
            k += 1
            chosen.add(t)
        repeated.extend(targets)
        repeated.extend([v] * m_attach)
        # Sample next targets proportionally to degree, distinct.
        chosen = set()
        while len(chosen) < m_attach:
            chosen.add(repeated[rng.integers(0, len(repeated))])
        targets = list(chosen)
    return CSRGraph.from_edges(n, src[:k], dst[:k])


def powerlaw_cluster(n: int, m_attach: int, triangle_p: float, *, seed=None) -> CSRGraph:
    """Holme–Kim power-law graph with tunable triangle density.

    Like Barabási–Albert, but after each preferential attachment a triangle
    is closed with probability ``triangle_p`` by also linking to a random
    neighbor of the chosen target.  Sweeping ``triangle_p`` reproduces the
    paper's axis of triangles-per-vertex (T/n), which drives how much
    Triangle Reduction can compress.
    """
    check_positive(n, "n")
    check_positive(m_attach, "m_attach")
    check_probability(triangle_p, "triangle_p")
    if m_attach >= n:
        raise ValueError(f"m_attach must be < n, got m_attach={m_attach} with n={n}")
    rng = as_generator(seed)
    src: list[int] = []
    dst: list[int] = []
    adj: list[list[int]] = [[] for _ in range(n)]
    repeated: list[int] = []

    def connect(v: int, t: int) -> None:
        src.append(v)
        dst.append(t)
        adj[v].append(t)
        adj[t].append(v)
        repeated.append(v)
        repeated.append(t)

    for t in range(m_attach):
        connect(m_attach, t)
    for v in range(m_attach + 1, n):
        added = 0
        mine = set()
        while added < m_attach:
            t = repeated[rng.integers(0, len(repeated))]
            if t == v or t in mine:
                continue
            connect(v, t)
            mine.add(t)
            added += 1
            # Triangle-formation step.
            if added < m_attach and adj[t] and rng.random() < triangle_p:
                w = adj[t][rng.integers(0, len(adj[t]))]
                if w != v and w not in mine:
                    connect(v, w)
                    mine.add(w)
                    added += 1
    return CSRGraph.from_edges(n, np.array(src), np.array(dst))


def watts_strogatz(n: int, k: int, beta: float, *, seed=None) -> CSRGraph:
    """Small-world ring lattice with rewiring probability ``beta``.

    High clustering at low ``beta``; used as a locally-dense, low-degree
    contrast to power-law graphs.
    """
    check_positive(n, "n")
    if k <= 0 or k >= n:
        raise ValueError(f"k must satisfy 0 < k < n, got k={k} with n={n}")
    if k % 2:
        raise ValueError(f"k must be even (each vertex links k/2 hops each way), got k={k}")
    check_probability(beta, "beta")
    rng = as_generator(seed)
    base = np.arange(n, dtype=np.int64)
    src_parts, dst_parts = [], []
    for hop in range(1, k // 2 + 1):
        src_parts.append(base)
        dst_parts.append((base + hop) % n)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    rewire = rng.random(len(src)) < beta
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    return CSRGraph.from_edges(n, src, dst)


def grid_2d(rows: int, cols: int, *, diagonals: bool = False) -> CSRGraph:
    """Rectangular grid; the road-network stand-in (v-usa) skeleton.

    Grids are triangle-free unless ``diagonals=True``, reproducing the
    paper's observation that TR cannot compress very sparse road networks.
    """
    check_positive(rows, "rows")
    check_positive(cols, "cols")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    parts = [right, down]
    if diagonals:
        parts.append(np.stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()]))
    src = np.concatenate([p[0] for p in parts])
    dst = np.concatenate([p[1] for p in parts])
    return CSRGraph.from_edges(rows * cols, src, dst)


def road_network(rows: int, cols: int, *, drop_p: float = 0.05, seed=None) -> CSRGraph:
    """Weighted grid with random dropouts — a v-usa-style road network.

    Edge weights are drawn uniformly from [1, 10] as segment lengths; a few
    edges are removed so the graph is not perfectly regular.
    """
    check_probability(drop_p, "drop_p")
    rng = as_generator(seed)
    g = grid_2d(rows, cols)
    keep = rng.random(g.num_edges) >= drop_p
    g = g.keep_edges(keep)
    w = rng.uniform(1.0, 10.0, size=g.num_edges)
    return g.with_weights(w)


def complete_graph(n: int) -> CSRGraph:
    """K_n: every triangle-rich bound-check's favourite worst case."""
    check_positive(n, "n")
    u, v = np.triu_indices(n, k=1)
    return CSRGraph(n, u.astype(np.int64), v.astype(np.int64))


def star_graph(n: int) -> CSRGraph:
    """K_{1,n-1}: hub vertex 0.  All leaves are degree-1 (vertex kernels)."""
    check_positive(n, "n")
    if n == 1:
        return CSRGraph.empty(1)
    centers = np.zeros(n - 1, dtype=np.int64)
    leaves = np.arange(1, n, dtype=np.int64)
    return CSRGraph(n, centers, leaves)


def path_graph(n: int) -> CSRGraph:
    check_positive(n, "n")
    base = np.arange(n - 1, dtype=np.int64)
    return CSRGraph(n, base, base + 1)


def cycle_graph(n: int) -> CSRGraph:
    if n < 3:
        raise ValueError(f"n must be >= 3 for a cycle, got n={n}")
    base = np.arange(n, dtype=np.int64)
    return CSRGraph.from_edges(n, base, (base + 1) % n)


def balanced_tree(branching: int, height: int) -> CSRGraph:
    """Complete ``branching``-ary tree of the given height."""
    check_positive(branching, "branching")
    if height < 0:
        raise ValueError(f"height must be >= 0, got height={height}")
    n = (branching ** (height + 1) - 1) // (branching - 1) if branching > 1 else height + 1
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // branching
    return CSRGraph(n, np.minimum(parent, child), np.maximum(parent, child))


def triangle_strip(num_triangles: int) -> CSRGraph:
    """A strip of edge-disjoint-ish triangles sharing consecutive vertices.

    Vertices 0..num_triangles+1; triangle i = (i, i+1, i+2).  Handy for
    exact TR bound checks (every edge is in at most 2 triangles).
    """
    check_positive(num_triangles, "num_triangles")
    n = num_triangles + 2
    base = np.arange(num_triangles, dtype=np.int64)
    src = np.concatenate([base, base + 1, base])
    dst = np.concatenate([base + 1, base + 2, base + 2])
    return CSRGraph.from_edges(n, src, dst)


def disjoint_union(*graphs: CSRGraph) -> CSRGraph:
    """Disjoint union with vertex ids shifted; preserves weights."""
    if not graphs:
        return CSRGraph.empty(0)
    directed = graphs[0].directed
    if any(g.directed != directed for g in graphs):
        raise ValueError("cannot union directed with undirected graphs")
    offsets = np.cumsum([0] + [g.n for g in graphs])
    src = np.concatenate([g.edge_src + off for g, off in zip(graphs, offsets)])
    dst = np.concatenate([g.edge_dst + off for g, off in zip(graphs, offsets)])
    weighted = any(g.is_weighted for g in graphs)
    w = None
    if weighted:
        w = np.concatenate(
            [
                g.edge_weights if g.is_weighted else np.ones(g.num_edges)
                for g in graphs
            ]
        )
    return CSRGraph(int(offsets[-1]), src, dst, w, directed=directed)
