"""Compressed Sparse Row graph core.

``CSRGraph`` is the single graph representation used across the library —
the paper's execution engine keeps graphs "maintained as adjacency arrays"
(§4.5.2), which is exactly CSR.  The structure is *immutable*: lossy
compression never mutates a graph in place; kernels record deletions into
buffers (:mod:`repro.core.atomic`) which are applied at the end of a kernel
sweep, producing a new ``CSRGraph``.  Immutability is what makes the
parallel kernel semantics of the paper (atomic deletes merged after the
sweep) deterministic and race-free in this implementation.

Identity model
--------------
Every *undirected edge* (or directed arc for directed graphs) has a stable
integer **edge id** ``0..m-1`` indexing the canonical edge arrays
``edge_src``/``edge_dst``/``edge_weights`` (canonical means ``src < dst``
for undirected graphs).  The CSR adjacency additionally stores, for every
stored arc, the id of the canonical edge it belongs to (``arc_edge_ids``),
so a kernel holding a local view of the graph can delete "this edge" without
any searching.  ``delete_edges``/``keep_edges`` take edge-id masks and
return new graphs with *edge ids renumbered* (they index the new arrays) but
vertex ids preserved.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable graph in CSR form with stable edge identities.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertex ids are ``0..n-1``.  Isolated
        vertices are allowed (compression often creates them).
    edge_src, edge_dst:
        Canonical edge endpoint arrays of length ``m``.  For undirected
        graphs every edge appears exactly once with ``src < dst``; for
        directed graphs each arc appears once as given.
    edge_weights:
        Optional ``float64`` array of length ``m``; ``None`` for unweighted
        graphs.
    directed:
        Whether the graph is directed.  Undirected graphs store both arc
        directions in the adjacency.

    Notes
    -----
    Use :meth:`from_edges` (which cleans, deduplicates, and canonicalizes
    raw input) rather than the constructor unless the arrays are already
    canonical — the constructor validates cheaply but does not repair.
    """

    __slots__ = (
        "n",
        "edge_src",
        "edge_dst",
        "edge_weights",
        "directed",
        "indptr",
        "indices",
        "arc_edge_ids",
        "_degrees",
        "_in_degrees",
        "_arc_heads",
        # Weak referenceability is what lets the analysis cache
        # (:mod:`repro.graphs.analysis`) key derived structures by graph
        # identity without pinning graphs in memory.
        "__weakref__",
    )

    def __init__(
        self,
        num_vertices: int,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_weights: np.ndarray | None = None,
        *,
        directed: bool = False,
    ) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        if edge_src.shape != edge_dst.shape or edge_src.ndim != 1:
            raise ValueError("edge_src and edge_dst must be 1-D arrays of equal length")
        m = len(edge_src)
        if m and (edge_src.min() < 0 or max(edge_src.max(), edge_dst.max()) >= num_vertices):
            raise ValueError("edge endpoints out of range")
        if not directed and m and np.any(edge_src >= edge_dst):
            raise ValueError(
                "undirected canonical edges require src < dst "
                "(self-loops are not allowed); use CSRGraph.from_edges"
            )
        if directed and m and np.any(edge_src == edge_dst):
            raise ValueError("self-loops are not allowed; use CSRGraph.from_edges")
        if edge_weights is not None:
            edge_weights = np.ascontiguousarray(edge_weights, dtype=np.float64)
            if edge_weights.shape != edge_src.shape:
                raise ValueError("edge_weights must match the number of edges")

        self.n = int(num_vertices)
        self.edge_src = edge_src
        self.edge_dst = edge_dst
        self.edge_weights = edge_weights
        self.directed = bool(directed)
        self._degrees = None
        self._in_degrees = None
        self._arc_heads = None
        self._build_csr()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _build_csr(self) -> None:
        """Build adjacency arrays (both directions for undirected graphs)."""
        m = len(self.edge_src)
        eids = np.arange(m, dtype=np.int64)
        if self.directed:
            heads, tails, arc_ids = self.edge_src, self.edge_dst, eids
        else:
            heads = np.concatenate([self.edge_src, self.edge_dst])
            tails = np.concatenate([self.edge_dst, self.edge_src])
            arc_ids = np.concatenate([eids, eids])
        order = np.lexsort((tails, heads))
        heads, tails, arc_ids = heads[order], tails[order], arc_ids[order]
        counts = np.bincount(heads, minlength=self.n)
        self.indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        self.indices = np.ascontiguousarray(tails)
        self.arc_edge_ids = np.ascontiguousarray(arc_ids)

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        src,
        dst,
        weights=None,
        *,
        directed: bool = False,
        dedup: str = "first",
    ) -> "CSRGraph":
        """Build a graph from raw (possibly messy) edge arrays.

        Self-loops are dropped.  For undirected graphs endpoints are
        canonicalized to ``src < dst``.  Duplicate edges are collapsed
        according to ``dedup``:

        - ``"first"``: keep the first occurrence's weight,
        - ``"sum"``: sum duplicate weights (parallel-edge aggregation, used
          when building summaries),
        - ``"min"`` / ``"max"``: keep the extreme weight.
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        w = None if weights is None else np.asarray(weights, dtype=np.float64).ravel()
        if w is not None and w.shape != src.shape:
            raise ValueError("weights must match the number of edges")

        keep = src != dst
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]
        if not directed and len(src):
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            src, dst = lo, hi

        if len(src):
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
            if w is not None:
                w = w[order]
            # Collapse duplicates on the sorted arrays.
            is_first = np.empty(len(src), dtype=bool)
            is_first[0] = True
            is_first[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            if not is_first.all():
                group = np.cumsum(is_first) - 1
                usrc, udst = src[is_first], dst[is_first]
                if w is not None:
                    if dedup == "sum":
                        uw = np.bincount(group, weights=w)
                    elif dedup == "min":
                        uw = np.full(group[-1] + 1, np.inf)
                        np.minimum.at(uw, group, w)
                    elif dedup == "max":
                        uw = np.full(group[-1] + 1, -np.inf)
                        np.maximum.at(uw, group, w)
                    elif dedup == "first":
                        uw = w[is_first]
                    else:
                        raise ValueError(f"unknown dedup policy {dedup!r}")
                    w = uw
                src, dst = usrc, udst
        return cls(num_vertices, src, dst, w, directed=directed)

    @classmethod
    def empty(cls, num_vertices: int = 0, *, directed: bool = False) -> "CSRGraph":
        """An edgeless graph on ``num_vertices`` vertices."""
        z = np.empty(0, dtype=np.int64)
        return cls(num_vertices, z, z, None, directed=directed)

    @classmethod
    def _from_parts(
        cls,
        num_vertices: int,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_weights: np.ndarray | None,
        *,
        directed: bool,
        indptr: np.ndarray,
        indices: np.ndarray,
        arc_edge_ids: np.ndarray,
    ) -> "CSRGraph":
        """Reassemble a graph from already-built CSR arrays, skipping both
        validation and :meth:`_build_csr` (the ``lexsort``).

        Only for trusted producers — the binary snapshot loader
        (:mod:`repro.graphs.snapshot`), which persisted arrays taken from
        a live ``CSRGraph``, and the sort-free O(m) transform fast paths
        (:meth:`keep_edges` / :meth:`remove_vertices` /
        :meth:`with_weights`), which derive the child's adjacency from the
        parent's already-sorted arrays.  Callers with unvetted arrays must
        go through the constructor or :meth:`from_edges`.
        """
        g = object.__new__(cls)
        g.n = int(num_vertices)
        g.edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        g.edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        g.edge_weights = (
            None
            if edge_weights is None
            else np.ascontiguousarray(edge_weights, dtype=np.float64)
        )
        g.directed = bool(directed)
        g.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        g.indices = np.ascontiguousarray(indices, dtype=np.int64)
        g.arc_edge_ids = np.ascontiguousarray(arc_edge_ids, dtype=np.int64)
        g._degrees = None
        g._in_degrees = None
        g._arc_heads = None
        return g

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of canonical edges (undirected edges, or directed arcs)."""
        return len(self.edge_src)

    @property
    def is_weighted(self) -> bool:
        return self.edge_weights is not None

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex (out-degree for directed graphs)."""
        if self._degrees is None:
            d = np.diff(self.indptr)
            d.flags.writeable = False
            self._degrees = d
        return self._degrees

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (== degrees for undirected graphs)."""
        if self.directed:
            if self._in_degrees is None:
                d = np.bincount(self.edge_dst, minlength=self.n)
                d.flags.writeable = False
                self._in_degrees = d
            return self._in_degrees
        return self.degrees

    @property
    def arc_heads(self) -> np.ndarray:
        """Head vertex of every stored arc (parallel to ``indices``).

        The row-expansion of ``indptr``; cached on the instance because
        repeated derivation from one parent (e.g. TR across seeds) and
        triangle orientation both need it.
        """
        if self._arc_heads is None:
            h = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
            h.flags.writeable = False
            self._arc_heads = h
        return self._arc_heads

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (out-neighbors if directed); a view."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def incident_edge_ids(self, v: int) -> np.ndarray:
        """Canonical edge ids of the arcs leaving ``v``; parallel to neighbors."""
        return self.arc_edge_ids[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights of arcs leaving ``v``; all-ones view if unweighted."""
        if self.edge_weights is None:
            return np.ones(self.degree(v), dtype=np.float64)
        return self.edge_weights[self.incident_edge_ids(v)]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test by binary search on the sorted neighbor row."""
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < len(row) and row[i] == v

    def edge_id(self, u: int, v: int) -> int:
        """Canonical edge id of edge (u, v); raises ``KeyError`` if absent."""
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        if i >= len(row) or row[i] != v:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        return int(self.incident_edge_ids(u)[i])

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """The canonical edge arrays ``(src, dst)`` (do not mutate)."""
        return self.edge_src, self.edge_dst

    def weight_of(self, edge_id: int) -> float:
        return 1.0 if self.edge_weights is None else float(self.edge_weights[edge_id])

    def total_weight(self) -> float:
        if self.edge_weights is None:
            return float(self.num_edges)
        return float(self.edge_weights.sum())

    # ------------------------------------------------------------------ #
    # derivation (all return new graphs)
    # ------------------------------------------------------------------ #

    def keep_edges(self, keep_mask: np.ndarray) -> "CSRGraph":
        """Subgraph with the canonical edges where ``keep_mask`` is True.

        The vertex set is preserved (compression never renumbers vertices;
        accuracy metrics compare per-vertex outputs positionally).

        Sort-free O(m) derivation: the parent's adjacency is already
        lexsorted by (head, tail) and the child keeps a subset of its
        edges, so the child's arcs are exactly the parent's arcs whose
        edge survives, *in parent order* — a subsequence of a sorted
        sequence is sorted.  Masking arcs with ``keep_mask[arc_edge_ids]``,
        renumbering edge ids with a cumsum, and rebuilding ``indptr`` with
        a ``bincount`` therefore reproduces, bit for bit, what a full
        ``lexsort`` rebuild would produce (arc keys are unique: no
        parallel edges, no self-loops), without the O(m log m) sort or
        re-validation.  See :meth:`_keep_edges_rebuild` for the legacy
        path kept as the equivalence/benchmark reference.
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape != self.edge_src.shape:
            raise ValueError("mask length must equal num_edges")
        new_id = np.cumsum(keep_mask, dtype=np.int64) - 1  # old -> new edge id
        arc_keep = keep_mask[self.arc_edge_ids]
        # indptr[v] = #kept arcs before row v: one running sum over the
        # arcs, sampled at the parent's row boundaries.
        arc_csum = np.empty(len(arc_keep) + 1, dtype=np.int64)
        arc_csum[0] = 0
        np.cumsum(arc_keep, out=arc_csum[1:])
        arc_idx = np.flatnonzero(arc_keep)
        edge_idx = np.flatnonzero(keep_mask)
        w = None if self.edge_weights is None else self.edge_weights[edge_idx]
        return CSRGraph._from_parts(
            self.n,
            self.edge_src[edge_idx],
            self.edge_dst[edge_idx],
            w,
            directed=self.directed,
            indptr=arc_csum[self.indptr],
            indices=self.indices[arc_idx],
            arc_edge_ids=new_id[self.arc_edge_ids[arc_idx]],
        )

    def _keep_edges_rebuild(self, keep_mask: np.ndarray) -> "CSRGraph":
        """Legacy O(m log m) :meth:`keep_edges`: slice the edge arrays and
        rebuild the adjacency from scratch (constructor ``lexsort``).

        Kept as the reference implementation: the property-test suite
        asserts the fast path is buffer-identical to this, and
        ``benchmarks/bench_core.py`` measures the speedup against it.
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape != self.edge_src.shape:
            raise ValueError("mask length must equal num_edges")
        w = None if self.edge_weights is None else self.edge_weights[keep_mask]
        return CSRGraph(
            self.n,
            self.edge_src[keep_mask],
            self.edge_dst[keep_mask],
            w,
            directed=self.directed,
        )

    def delete_edges(self, edge_ids: np.ndarray) -> "CSRGraph":
        """Drop the canonical edges listed in ``edge_ids`` (duplicates ok).

        Ids must lie in ``[0, num_edges)``; negative ids are rejected
        rather than wrapping around numpy-style (which would silently
        delete the wrong edge).
        """
        edge_ids = np.asarray(edge_ids, dtype=np.int64).ravel()
        if len(edge_ids):
            bad = (edge_ids < 0) | (edge_ids >= self.num_edges)
            if bad.any():
                offender = int(edge_ids[np.argmax(bad)])
                raise ValueError(
                    f"edge id {offender} out of range for a graph with "
                    f"{self.num_edges} edges (valid: 0..{self.num_edges - 1})"
                )
        mask = np.ones(self.num_edges, dtype=bool)
        mask[edge_ids] = False
        return self.keep_edges(mask)

    def remove_vertices(self, vertex_ids, *, relabel: bool = False) -> "CSRGraph":
        """Drop vertices and their incident edges.

        With ``relabel=False`` (default) the removed vertices remain as
        isolated ids so per-vertex outputs stay positionally comparable;
        with ``relabel=True`` the survivors are renumbered compactly (used
        by triangle collapse, which genuinely changes the vertex set).

        Both forms are sort-free O(m): the edge drop rides
        :meth:`keep_edges`, and compaction renumbers through a *monotone*
        map, which preserves every sorted order the CSR invariants need.
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64).ravel()
        if len(vertex_ids):
            bad = (vertex_ids < 0) | (vertex_ids >= self.n)
            if bad.any():
                offender = int(vertex_ids[np.argmax(bad)])
                raise ValueError(
                    f"vertex id {offender} out of range for a graph with "
                    f"{self.n} vertices (valid: 0..{self.n - 1})"
                )
        gone = np.zeros(self.n, dtype=bool)
        gone[vertex_ids] = True
        keep_edge = ~(gone[self.edge_src] | gone[self.edge_dst])
        g = self.keep_edges(keep_edge)
        if not relabel:
            return g
        keep_v = ~gone
        new_id = np.cumsum(keep_v, dtype=np.int64) - 1
        indptr = np.zeros(int(keep_v.sum()) + 1, dtype=np.int64)
        np.cumsum(np.diff(g.indptr)[keep_v], out=indptr[1:])
        return CSRGraph._from_parts(
            int(keep_v.sum()),
            new_id[g.edge_src],
            new_id[g.edge_dst],
            g.edge_weights,
            directed=self.directed,
            indptr=indptr,
            indices=new_id[g.indices],
            arc_edge_ids=g.arc_edge_ids,
        )

    def insert_edges(
        self,
        src,
        dst,
        weights=None,
        *,
        num_vertices: int | None = None,
    ) -> "CSRGraph":
        """New graph with ``Δ`` additional canonical edges merged in.

        The streaming counterpart of :meth:`keep_edges`: instead of
        rebuilding the CSR with a ``lexsort`` over all ``m + Δ`` edges,
        the parent's already-sorted edge and arc arrays are *merged* with
        the (small) sorted batch — only the Δ new entries are sorted, and
        every parent entry moves by a ``searchsorted`` offset.  The result
        is bit-identical to a from-scratch :meth:`from_edges` rebuild of
        the combined edge set, in O(m + Δ log Δ) work.

        Validation mirrors the other transforms: endpoints must lie in
        ``[0, num_vertices)`` (negative ids are rejected rather than
        wrapping numpy-style), self-loops, duplicate batch entries, and
        edges already present are all rejected with the offender named.
        ``num_vertices`` may grow the vertex set (new vertices arrive
        with their first edges in a stream); it can never shrink it.

        Weightedness must match: a weighted graph requires batch weights,
        an unweighted graph rejects them — mixing would silently change
        every algorithm's reading of the untouched edges.

        An empty batch with no vertex growth returns ``self`` (graphs are
        immutable, so sharing is safe).
        """
        n_new = self.n if num_vertices is None else int(num_vertices)
        if n_new < self.n:
            raise ValueError(
                f"num_vertices may not shrink the graph: {n_new} < {self.n}"
            )
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if self.is_weighted and weights is None and len(src):
            raise ValueError(
                "graph is weighted; inserted edges must carry weights"
            )
        if not self.is_weighted and weights is not None:
            raise ValueError(
                "graph is unweighted; inserted edges may not carry weights"
            )
        w = None if weights is None else np.asarray(weights, dtype=np.float64).ravel()
        if w is not None and w.shape != src.shape:
            raise ValueError("weights must match the number of inserted edges")

        delta = len(src)
        if delta:
            bad = (src < 0) | (src >= n_new) | (dst < 0) | (dst >= n_new)
            if bad.any():
                i = int(np.argmax(bad))
                u = int(src[i]) if src[i] < 0 or src[i] >= n_new else int(dst[i])
                raise ValueError(
                    f"endpoint {u} of inserted edge ({int(src[i])}, "
                    f"{int(dst[i])}) out of range for a graph with "
                    f"{n_new} vertices (valid: 0..{n_new - 1})"
                )
            loops = src == dst
            if loops.any():
                v = int(src[np.argmax(loops)])
                raise ValueError(f"self-loop ({v}, {v}) is not allowed")
            if not self.directed:
                lo = np.minimum(src, dst)
                hi = np.maximum(src, dst)
                src, dst = lo, hi
        if delta == 0:
            if n_new == self.n:
                return self
            pad = np.full(n_new - self.n, self.indptr[-1], dtype=np.int64)
            return CSRGraph._from_parts(
                n_new,
                self.edge_src,
                self.edge_dst,
                self.edge_weights,
                directed=self.directed,
                indptr=np.concatenate([self.indptr, pad]),
                indices=self.indices,
                arc_edge_ids=self.arc_edge_ids,
            )

        # Sort only the batch (O(Δ log Δ)); the parent arrays stay put.
        N = np.int64(max(n_new, 1))
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if w is not None:
            w = w[order]
        new_keys = src * N + dst
        dup = new_keys[1:] == new_keys[:-1]
        if dup.any():
            i = int(np.argmax(dup)) + 1
            raise ValueError(
                f"duplicate edge ({int(src[i])}, {int(dst[i])}) in the "
                "inserted batch"
            )

        m = self.num_edges
        parent_keys = self.edge_src * N + self.edge_dst
        if m and np.any(parent_keys[1:] < parent_keys[:-1]):
            # The parent's canonical edge arrays are not sorted (a raw
            # constructor graph); fall back to the full rebuild, which is
            # the fast path's bit-identity reference anyway.
            present = np.isin(new_keys, parent_keys)
            if present.any():
                i = int(np.argmax(present))
                raise ValueError(
                    f"edge ({int(src[i])}, {int(dst[i])}) is already present"
                )
            return CSRGraph.from_edges(
                n_new,
                np.concatenate([self.edge_src, src]),
                np.concatenate([self.edge_dst, dst]),
                None if w is None else np.concatenate([self.edge_weights, w]),
                directed=self.directed,
            )

        # Merge positions: edge keys are unique across parent and batch,
        # so each side's final slot is its own rank plus the number of
        # other-side entries preceding it.
        pos = np.searchsorted(parent_keys, new_keys)
        if m:
            present = (pos < m) & (parent_keys[np.minimum(pos, m - 1)] == new_keys)
        else:
            present = np.zeros(delta, dtype=bool)
        if present.any():
            i = int(np.argmax(present))
            raise ValueError(
                f"edge ({int(src[i])}, {int(dst[i])}) is already present"
            )
        new_edge_ids = pos + np.arange(delta, dtype=np.int64)
        parent_edge_ids = (
            np.arange(m, dtype=np.int64) + np.searchsorted(new_keys, parent_keys)
        )

        merged_src = np.empty(m + delta, dtype=np.int64)
        merged_dst = np.empty(m + delta, dtype=np.int64)
        merged_src[parent_edge_ids] = self.edge_src
        merged_src[new_edge_ids] = src
        merged_dst[parent_edge_ids] = self.edge_dst
        merged_dst[new_edge_ids] = dst
        merged_w = None
        if w is not None:
            merged_w = np.empty(m + delta, dtype=np.float64)
            merged_w[parent_edge_ids] = self.edge_weights
            merged_w[new_edge_ids] = w

        # Arcs: the batch contributes Δ (directed) or 2Δ (both
        # directions) new arcs, sorted among themselves, then merged into
        # the parent's (head, tail)-sorted arc sequence the same way.
        if self.directed:
            arc_heads_new, arc_tails_new, arc_ids_new = src, dst, new_edge_ids
        else:
            arc_heads_new = np.concatenate([src, dst])
            arc_tails_new = np.concatenate([dst, src])
            arc_ids_new = np.concatenate([new_edge_ids, new_edge_ids])
            arc_order = np.lexsort((arc_tails_new, arc_heads_new))
            arc_heads_new = arc_heads_new[arc_order]
            arc_tails_new = arc_tails_new[arc_order]
            arc_ids_new = arc_ids_new[arc_order]
        new_arc_keys = arc_heads_new * N + arc_tails_new
        parent_arc_keys = self.arc_heads * N + self.indices
        arcs = len(self.indices)
        num_new_arcs = len(new_arc_keys)
        new_arc_pos = (
            np.searchsorted(parent_arc_keys, new_arc_keys)
            + np.arange(num_new_arcs, dtype=np.int64)
        )
        parent_arc_pos = (
            np.arange(arcs, dtype=np.int64)
            + np.searchsorted(new_arc_keys, parent_arc_keys)
        )
        indices = np.empty(arcs + num_new_arcs, dtype=np.int64)
        indices[parent_arc_pos] = self.indices
        indices[new_arc_pos] = arc_tails_new
        arc_edge_ids = np.empty(arcs + num_new_arcs, dtype=np.int64)
        arc_edge_ids[parent_arc_pos] = parent_edge_ids[self.arc_edge_ids]
        arc_edge_ids[new_arc_pos] = arc_ids_new

        new_counts = np.bincount(arc_heads_new, minlength=n_new)
        grow = np.zeros(n_new + 1, dtype=np.int64)
        np.cumsum(new_counts, out=grow[1:])
        if n_new == self.n:
            base = self.indptr
        else:
            base = np.concatenate(
                [self.indptr, np.full(n_new - self.n, self.indptr[-1], dtype=np.int64)]
            )
        return CSRGraph._from_parts(
            n_new,
            merged_src,
            merged_dst,
            merged_w,
            directed=self.directed,
            indptr=base + grow,
            indices=indices,
            arc_edge_ids=arc_edge_ids,
        )

    def with_weights(self, weights: np.ndarray | None) -> "CSRGraph":
        """Same structure with replaced (or removed) edge weights.

        The adjacency arrays are shared with ``self`` (graphs are
        immutable), so this is O(m) in the weight copy only — no rebuild.
        """
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != self.edge_src.shape:
                raise ValueError("edge_weights must match the number of edges")
        return CSRGraph._from_parts(
            self.n,
            self.edge_src,
            self.edge_dst,
            weights,
            directed=self.directed,
            indptr=self.indptr,
            indices=self.indices,
            arc_edge_ids=self.arc_edge_ids,
        )

    def relabeled(self, mapping: np.ndarray, num_new: int, *, dedup: str = "first") -> "CSRGraph":
        """Contract vertices through ``mapping`` (old id -> new id).

        Edges mapping to self-loops vanish; parallel edges collapse per
        ``dedup``.  This is the primitive behind supervertex construction in
        lossy summarization and triangle collapse.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self.n,):
            raise ValueError("mapping must have one entry per vertex")
        return CSRGraph.from_edges(
            num_new,
            mapping[self.edge_src],
            mapping[self.edge_dst],
            self.edge_weights,
            directed=self.directed,
            dedup=dedup,
        )

    def to_undirected(self) -> "CSRGraph":
        """Symmetrized copy (identity for undirected graphs)."""
        if not self.directed:
            return self
        return CSRGraph.from_edges(
            self.n, self.edge_src, self.edge_dst, self.edge_weights, directed=False
        )

    # ------------------------------------------------------------------ #
    # interop & diagnostics
    # ------------------------------------------------------------------ #

    def to_scipy(self):
        """Adjacency as ``scipy.sparse.csr_matrix`` (symmetric if undirected)."""
        from scipy.sparse import csr_matrix

        if self.edge_weights is None:
            data = np.ones(len(self.indices), dtype=np.float64)
        else:
            data = self.edge_weights[self.arc_edge_ids]
        return csr_matrix((data, self.indices, self.indptr), shape=(self.n, self.n))

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on breakage.

        Exercised heavily by the property-based tests: CSR rows sorted,
        arc/edge id cross-references consistent, degree sums correct.
        """
        assert self.indptr[0] == 0 and self.indptr[-1] == len(self.indices)
        assert np.all(np.diff(self.indptr) >= 0)
        expected_arcs = self.num_edges if self.directed else 2 * self.num_edges
        assert len(self.indices) == expected_arcs
        for v in range(self.n):
            row = self.neighbors(v)
            assert np.all(row[1:] >= row[:-1]), f"row {v} not sorted"
        # Every arc must point back at a canonical edge containing its head.
        heads = np.repeat(np.arange(self.n), np.diff(self.indptr))
        e = self.arc_edge_ids
        ok = (self.edge_src[e] == heads) & (self.edge_dst[e] == self.indices)
        if not self.directed:
            ok |= (self.edge_dst[e] == heads) & (self.edge_src[e] == self.indices)
        assert ok.all(), "arc -> edge-id cross reference broken"

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        w = "weighted" if self.is_weighted else "unweighted"
        return f"CSRGraph(n={self.n}, m={self.num_edges}, {kind}, {w})"
