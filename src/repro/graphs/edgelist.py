"""Edge-list I/O.

Two formats:

- plain text ``u v [w]`` per line (the interchange format of SNAP/KONECT
  dumps the paper's pipeline ingests), with ``#`` and ``%`` comments
  (KONECT headers use ``%``), blank lines, and CRLF endings tolerated;
- compressed ``.npz`` (NumPy) for fast round-trips of generated datasets.

Malformed rows fail with the offender named (``file:line: ...`` plus the
row's text), never with a bare ``int()`` traceback — real dumps are messy
and the error must say *which* line to fix.  The line-level tolerance and
row parsing live in :func:`iter_edge_rows` / :func:`parse_edge_row` so the
streaming delta reader (:mod:`repro.stream.delta`) ingests the same
dialect.

Storage accounting (:func:`storage_bytes`) backs the paper's storage-
reduction numbers: lossy compression reduces stored bytes proportionally to
removed edges because edges dominate any adjacency-array representation.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = [
    "write_text",
    "read_text",
    "write_npz",
    "read_npz",
    "storage_bytes",
    "iter_edge_rows",
    "parse_edge_row",
]


def iter_edge_rows(lines, *, source="<edges>"):
    """Yield ``(lineno, line)`` for every content row of an edge-list text.

    Blank lines (including whitespace-only), CRLF endings, and comment
    lines starting with ``#`` or ``%`` (KONECT) are skipped; ``lineno`` is
    1-based so errors can point into the file.
    """
    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        yield lineno, line


def parse_edge_row(
    line: str, *, lineno: int = 0, source: str = "<edges>"
) -> tuple[int, int, float | None]:
    """Parse one ``u v [w]`` row into ``(u, v, weight-or-None)``.

    Raises ``ValueError`` naming the offending location and row text for
    anything that is not two integer endpoints plus an optional float
    weight.
    """
    parts = line.split()
    where = f"{source}:{lineno}"
    if len(parts) < 2:
        raise ValueError(
            f"{where}: malformed edge row {line!r} "
            "(expected 'u v' or 'u v w')"
        )
    if len(parts) > 3:
        raise ValueError(
            f"{where}: malformed edge row {line!r} "
            f"({len(parts)} fields; expected 2 or 3)"
        )
    try:
        u = int(parts[0])
        v = int(parts[1])
    except ValueError:
        raise ValueError(
            f"{where}: malformed edge row {line!r} "
            "(endpoints must be integers)"
        ) from None
    w = None
    if len(parts) == 3:
        try:
            w = float(parts[2])
        except ValueError:
            raise ValueError(
                f"{where}: malformed edge row {line!r} "
                "(weight must be a number)"
            ) from None
    return u, v, w


def write_text(g: CSRGraph, path) -> None:
    """Write ``u v [w]`` lines, one canonical edge per line."""
    path = Path(path)
    with path.open("w") as f:
        f.write(f"# repro edge list: n={g.n} m={g.num_edges} ")
        f.write(f"directed={int(g.directed)} weighted={int(g.is_weighted)}\n")
        if g.is_weighted:
            for u, v, w in zip(g.edge_src, g.edge_dst, g.edge_weights):
                f.write(f"{u} {v} {float(w)!r}\n")
        else:
            for u, v in zip(g.edge_src, g.edge_dst):
                f.write(f"{u} {v}\n")


def read_text(path, *, num_vertices: int | None = None, directed: bool = False) -> CSRGraph:
    """Read a ``u v [w]`` edge list; infers n when not given in a header."""
    path = Path(path)
    src, dst, w = [], [], []
    weighted = False
    header_n = None
    header_directed = None
    with path.open() as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            if line.startswith("#"):
                if "n=" in line:
                    for tok in line.split():
                        if tok.startswith("n="):
                            header_n = int(tok[2:])
                        elif tok.startswith("directed="):
                            header_directed = bool(int(tok[9:]))
                continue
            u, v, weight = parse_edge_row(line, lineno=lineno, source=str(path))
            src.append(u)
            dst.append(v)
            if weight is not None:
                if not weighted and len(src) > 1:
                    raise ValueError(
                        f"{path}:{lineno}: mixed weighted/unweighted rows "
                        f"(row {line!r} has a weight, earlier rows do not)"
                    )
                weighted = True
                w.append(weight)
            elif weighted:
                raise ValueError(
                    f"{path}:{lineno}: mixed weighted/unweighted rows "
                    f"(row {line!r} has no weight, earlier rows do)"
                )
    if header_directed is not None:
        directed = header_directed
    n = num_vertices if num_vertices is not None else header_n
    if n is None:
        n = (max(max(src), max(dst)) + 1) if src else 0
    return CSRGraph.from_edges(n, src, dst, w if weighted else None, directed=directed)


def write_npz(g: CSRGraph, path) -> None:
    """Binary round-trip format; lossless and fast."""
    arrays = {
        "n": np.array([g.n], dtype=np.int64),
        "src": g.edge_src,
        "dst": g.edge_dst,
        "directed": np.array([int(g.directed)], dtype=np.int8),
    }
    if g.is_weighted:
        arrays["weights"] = g.edge_weights
    np.savez_compressed(Path(path), **arrays)


def read_npz(path) -> CSRGraph:
    with np.load(Path(path)) as z:
        w = z["weights"] if "weights" in z.files else None
        return CSRGraph(
            int(z["n"][0]), z["src"], z["dst"], w, directed=bool(z["directed"][0])
        )


def storage_bytes(g: CSRGraph) -> int:
    """Bytes of the CSR in-memory representation (indptr+indices+weights).

    The paper's storage-reduction claims count adjacency-array bytes; edge
    ids/weights scale with m, indptr with n.
    """
    total = g.indptr.nbytes + g.indices.nbytes + g.arc_edge_ids.nbytes
    total += g.edge_src.nbytes + g.edge_dst.nbytes
    if g.is_weighted:
        total += g.edge_weights.nbytes
    return int(total)
