"""Edge-weight assignment helpers.

The paper's weighted experiments (§7.1: MST and SSSP under TR) use weighted
variants of the evaluation graphs; these helpers attach deterministic random
weights to any graph.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["with_uniform_weights", "with_exponential_weights", "with_unit_weights"]


def with_uniform_weights(g: CSRGraph, low: float = 1.0, high: float = 10.0, *, seed=None) -> CSRGraph:
    """Attach i.i.d. Uniform[low, high) edge weights."""
    if low >= high:
        raise ValueError(f"need low < high, got [{low}, {high})")
    rng = as_generator(seed)
    return g.with_weights(rng.uniform(low, high, size=g.num_edges))


def with_exponential_weights(g: CSRGraph, scale: float = 1.0, *, seed=None) -> CSRGraph:
    """Attach i.i.d. Exponential(scale) weights, shifted away from zero.

    Exponential weights create the strong weight skew under which the
    max-weight Triangle Reduction variant is most distinguishable from the
    uniform-random one.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    rng = as_generator(seed)
    return g.with_weights(rng.exponential(scale, size=g.num_edges) + 1e-6)


def with_unit_weights(g: CSRGraph) -> CSRGraph:
    """Attach explicit weight 1.0 to every edge."""
    return g.with_weights(np.ones(g.num_edges, dtype=np.float64))
