"""CLI for exported traces: ``validate`` against the schema, ``tree`` view.

Used by the CI ``obs-smoke`` job to gate trace exports::

    python -m repro.obs validate trace.json
    python -m repro.obs tree trace.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.spans import tree_from_trace, validate_trace


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate or pretty-print repro Chrome trace exports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="check a trace against the schema")
    validate.add_argument("trace", help="path to a trace JSON export")

    tree = sub.add_parser("tree", help="render a trace as a text span tree")
    tree.add_argument("trace", help="path to a trace JSON export")

    args = parser.parse_args(argv)
    trace = _load(args.trace)

    if args.command == "validate":
        problems = validate_trace(trace)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        events = trace.get("traceEvents", [])
        pids = sorted({event.get("pid") for event in events})
        print(f"OK: {len(events)} events from {len(pids)} process(es) {pids}")
        return 0

    print(tree_from_trace(trace), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
