"""Hierarchical span tracing with Chrome trace-event export.

The paper's evaluation lives on measurement — relative runtimes (Fig. 5),
compression-routine cost (§7.4) — and every subsystem grown since has
invented its own timing fields.  This module is the one substrate they
now share: a :func:`span` context manager produces nested, attributed
timing records that

- nest through a **thread-local stack**, so N queue worker threads (or
  the session and a benchmark driver) never interleave each other's
  parent/child relationships;
- carry **wall-clock epochs** (``time.time``) for cross-process ordering
  and **monotonic durations** (``time.perf_counter``) for precision;
- survive process boundaries: a worker exports its finished spans as
  plain dicts (:meth:`Tracer.drain`) and the parent stitches them under
  its own tree (:meth:`Tracer.adopt`), so a parallel sweep yields one
  flame view spanning every process;
- export as **Chrome trace-event JSON** (`chrome://tracing` / Perfetto
  load the file directly) or a compact text tree
  (:meth:`Tracer.format_tree`).

Tracing is **off by default** and the disabled fast path is one
attribute check plus a constant yield — cheap enough to leave ``span``
calls on hot paths (``benchmarks/bench_core.py`` asserts the enabled
overhead stays ≤ 2% on the 1e6-edge transform path).

The process-global tracer (:func:`tracer`) is what ``Session(trace=…)``,
``python -m repro.runner --trace``, and the service queue all write
through; worker processes enable their own and ship spans back.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "Span",
    "Tracer",
    "TRACE_SCHEMA_VERSION",
    "span",
    "tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span_id",
    "validate_trace",
    "tree_from_trace",
]

#: Version embedded in exported traces and the checked-in schema.
TRACE_SCHEMA_VERSION = 1

#: Process-unique span-id suffix source (ids must stay unique after
#: cross-process stitching, so the pid is part of every id).
_IDS = itertools.count(1)


def _new_span_id() -> str:
    return f"{os.getpid():x}.{next(_IDS):x}"


class Span:
    """One open measured region; becomes a plain dict when closed.

    Attributes are set at open time (``span("compress", scheme=s)``) or
    via :meth:`set`; named counters accumulate through :meth:`inc`.
    Exceptions crossing the region mark ``status="error"`` (the span
    still closes — failure paths stay accounted, mirroring
    :func:`repro.utils.timer.stopwatch`'s include-failures contract).
    """

    __slots__ = (
        "name", "span_id", "parent_id", "pid", "tid", "thread",
        "start", "attrs", "counters", "status", "error",
        "_start_perf", "_cpu_start", "_sample_resources",
    )

    def __init__(self, name, parent_id=None, attrs=None, sample_resources=False):
        self.name = str(name)
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.pid = os.getpid()
        current = threading.current_thread()
        self.tid = current.ident or 0
        self.thread = current.name
        self.start = time.time()
        self.attrs = dict(attrs) if attrs else {}
        self.counters: dict[str, float] = {}
        self.status = "ok"
        self.error: str | None = None
        self._start_perf = time.perf_counter()
        self._sample_resources = sample_resources
        self._cpu_start = time.process_time() if sample_resources else 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the open span; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def inc(self, counter: str, delta: float = 1) -> "Span":
        """Bump a per-span counter (``sp.inc("cells")``); returns ``self``."""
        self.counters[counter] = self.counters.get(counter, 0) + delta
        return self

    def close(self, error: BaseException | None = None) -> dict:
        """Finish the span; returns its export dict."""
        duration = time.perf_counter() - self._start_perf
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "thread": self.thread,
            "start": self.start,
            "duration": duration,
            "attrs": self.attrs,
            "counters": self.counters,
            "status": self.status,
            "error": self.error,
        }
        if self._sample_resources:
            from repro.obs.resources import peak_rss_bytes

            out["resources"] = {
                "peak_rss_bytes": peak_rss_bytes(),
                "cpu_seconds": time.process_time() - self._cpu_start,
            }
        return out


class _NullSpan:
    """The no-op span yielded while tracing is disabled."""

    __slots__ = ()
    span_id = None

    def set(self, **attrs):
        return self

    def inc(self, counter, delta=1):
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """A collection point for finished spans plus per-thread open stacks.

    Thread-safe: every thread nests spans on its own stack (parents never
    cross threads), and finished spans append under one lock.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._finished: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording ----------------------------------------------------- #

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, /, *, sample_resources: bool = False, **attrs):
        """Open a child of this thread's current span; always closes.

        An exception inside the block marks the span ``status="error"``
        (with the exception text) and re-raises after closing.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        sp = Span(name, parent_id, attrs, sample_resources)
        stack.append(sp)
        error = None
        try:
            yield sp
        except BaseException as err:
            error = err
            raise
        finally:
            stack.pop()
            record = sp.close(error)
            with self._lock:
                self._finished.append(record)

    def current_span_id(self) -> str | None:
        """Id of this thread's innermost open span, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    # -- collection ---------------------------------------------------- #

    def export(self) -> list[dict]:
        """A copy of every finished span recorded so far."""
        with self._lock:
            return [dict(s) for s in self._finished]

    def drain(self) -> list[dict]:
        """Pop and return all finished spans (worker → parent shipping)."""
        with self._lock:
            out = self._finished
            self._finished = []
        return out

    def adopt(self, spans, parent_id: str | None = None) -> int:
        """Stitch spans exported by another process into this tracer.

        Spans whose parent is not part of the adopted batch (a worker's
        roots) are re-parented under ``parent_id``, so the worker's whole
        tree hangs off the span that scheduled it.  Returns the number of
        spans adopted.
        """
        spans = [dict(s) for s in spans]
        ids = {s["span_id"] for s in spans}
        for s in spans:
            if s.get("parent_id") not in ids:
                s["parent_id"] = parent_id
        with self._lock:
            self._finished.extend(spans)
        return len(spans)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    # -- export formats ------------------------------------------------ #

    def chrome_trace(self, metadata: dict | None = None) -> dict:
        """The finished spans as a Chrome trace-event JSON document.

        Complete (``ph="X"``) events with wall-clock microsecond
        timestamps, so events from different processes order correctly
        on one timeline; span/parent ids ride in ``args`` for tree
        reconstruction.  Load the written file in ``chrome://tracing``
        or https://ui.perfetto.dev.
        """
        from repro.obs.resources import sample_resources

        events = []
        for s in self.export():
            args = {
                "span_id": s["span_id"],
                "parent_id": s["parent_id"],
                "status": s["status"],
            }
            if s["attrs"]:
                args.update(s["attrs"])
            if s["counters"]:
                args["counters"] = s["counters"]
            if s.get("error"):
                args["error"] = s["error"]
            if s.get("resources"):
                args["resources"] = s["resources"]
            events.append(
                {
                    "name": s["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": s["start"] * 1e6,
                    "dur": s["duration"] * 1e6,
                    "pid": s["pid"],
                    "tid": s["tid"],
                    "args": args,
                }
            )
        meta = {
            "schema_version": TRACE_SCHEMA_VERSION,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "tool": "repro.obs",
            "main_pid": os.getpid(),
            "resources": sample_resources(),
        }
        if metadata:
            meta.update(metadata)
        return {
            "traceEvents": sorted(events, key=lambda e: e["ts"]),
            "displayTimeUnit": "ms",
            "metadata": meta,
        }

    def write_chrome_trace(self, path, metadata: dict | None = None) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace(metadata), indent=1) + "\n")
        return path

    def format_tree(self, *, max_spans: int = 2000) -> str:
        """A compact text rendering of the span forest.

        Children sort by wall-clock start, so a stitched multi-process
        trace reads in true execution order.
        """
        return _format_span_tree(self.export(), max_spans=max_spans)


# ---------------------------------------------------------------------- #
# the process-global tracer
# ---------------------------------------------------------------------- #

_TRACER = Tracer(enabled=False)


def tracer() -> Tracer:
    """The process-wide tracer every ``span()`` call records into."""
    return _TRACER


def enable_tracing() -> Tracer:
    """Switch the global tracer on; returns it."""
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> Tracer:
    """Switch the global tracer off (recorded spans are kept)."""
    _TRACER.enabled = False
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


def span(name: str, /, *, sample_resources: bool = False, **attrs):
    """``with span("compress", scheme="spanner(k=4)") as sp: …``

    The module-level convenience over :meth:`Tracer.span` on the global
    tracer — a no-op (cheap) while tracing is disabled.
    """
    return _TRACER.span(name, sample_resources=sample_resources, **attrs)


def current_span_id() -> str | None:
    return _TRACER.current_span_id()


# ---------------------------------------------------------------------- #
# tree rendering & trace validation
# ---------------------------------------------------------------------- #


def _format_span_tree(spans: list[dict], *, max_spans: int = 2000) -> str:
    if not spans:
        return "(no spans recorded)"
    spans = sorted(spans, key=lambda s: s["start"])[:max_spans]
    ids = {s["span_id"] for s in spans}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s.get("parent_id")
        key = parent if parent in ids else None
        children.setdefault(key, []).append(s)
    lines: list[str] = []

    def walk(s: dict, depth: int) -> None:
        mark = " !ERR" if s["status"] == "error" else ""
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(s["attrs"].items()))
        counters = ", ".join(
            f"{k}:{v:g}" for k, v in sorted(s.get("counters", {}).items())
        )
        detail = "; ".join(p for p in (attrs, counters) if p)
        lines.append(
            f"{'  ' * depth}{s['name']}  {s['duration'] * 1e3:.2f}ms"
            f"  [pid {s['pid']}]{mark}"
            + (f"  ({detail})" if detail else "")
        )
        for child in children.get(s["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def _schema_path() -> Path:
    return Path(__file__).with_name("trace_schema.json")


def _type_ok(value, kind: str) -> bool:
    if kind == "str":
        return isinstance(value, str)
    if kind == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "dict":
        return isinstance(value, dict)
    if kind == "list":
        return isinstance(value, list)
    return True


def validate_trace(trace: dict, schema: dict | None = None) -> list[str]:
    """Check ``trace`` against the checked-in trace schema.

    Returns a list of problem strings (empty = valid).  Beyond the
    schema's field/type requirements this enforces the semantic
    invariants the CI ``obs-smoke`` job relies on: every span closed
    (a non-negative duration), unique span ids, every non-null parent id
    resolving to a span in the same trace, and the metadata resource
    fields present.
    """
    if schema is None:
        schema = json.loads(_schema_path().read_text())
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    for key in schema.get("required_top_level", []):
        if key not in trace:
            problems.append(f"missing top-level key {key!r}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        problems.append("traceEvents must be a non-empty list")
        return problems

    seen_ids: set[str] = set()
    parent_refs: list[tuple[int, str]] = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for field, kind in schema.get("event_required", {}).items():
            if field not in event:
                problems.append(f"event {i} missing field {field!r}")
            elif not _type_ok(event[field], kind):
                problems.append(
                    f"event {i} field {field!r} is not a {kind}"
                )
        if event.get("ph") != "X":
            problems.append(f"event {i} phase {event.get('ph')!r} != 'X'")
        dur = event.get("dur")
        if isinstance(dur, (int, float)) and dur < 0:
            problems.append(f"event {i} has negative duration (span not closed?)")
        args = event.get("args")
        if isinstance(args, dict):
            for field, kind in schema.get("args_required", {}).items():
                if field not in args:
                    problems.append(f"event {i} args missing {field!r}")
                elif not _type_ok(args[field], kind):
                    problems.append(f"event {i} args {field!r} is not a {kind}")
            status = args.get("status")
            allowed = schema.get("span_statuses")
            if allowed and status not in allowed:
                problems.append(f"event {i} status {status!r} not in {allowed}")
            span_id = args.get("span_id")
            if isinstance(span_id, str):
                if span_id in seen_ids:
                    problems.append(f"duplicate span id {span_id!r}")
                seen_ids.add(span_id)
            parent = args.get("parent_id")
            if parent is not None:
                parent_refs.append((i, parent))
    for i, parent in parent_refs:
        if parent not in seen_ids:
            problems.append(
                f"event {i} parent id {parent!r} resolves to no span in the trace"
            )

    metadata = trace.get("metadata")
    if isinstance(metadata, dict):
        for field, kind in schema.get("metadata_required", {}).items():
            if field not in metadata:
                problems.append(f"metadata missing {field!r}")
            elif not _type_ok(metadata[field], kind):
                problems.append(f"metadata {field!r} is not a {kind}")
        resources = metadata.get("resources")
        if isinstance(resources, dict):
            for field in schema.get("resource_fields", []):
                if field not in resources:
                    problems.append(f"metadata resources missing {field!r}")
    return problems


def tree_from_trace(trace: dict, *, max_spans: int = 2000) -> str:
    """Re-render the text tree from an exported Chrome trace document."""
    spans = []
    for event in trace.get("traceEvents", []):
        args = event.get("args", {})
        spans.append(
            {
                "name": event.get("name", "?"),
                "span_id": args.get("span_id"),
                "parent_id": args.get("parent_id"),
                "pid": event.get("pid", 0),
                "start": event.get("ts", 0) / 1e6,
                "duration": event.get("dur", 0) / 1e6,
                "attrs": {
                    k: v
                    for k, v in args.items()
                    if k not in (
                        "span_id", "parent_id", "status", "counters",
                        "error", "resources",
                    )
                },
                "counters": args.get("counters", {}),
                "status": args.get("status", "ok"),
            }
        )
    return _format_span_tree(spans, max_spans=max_spans)
