"""Process resource sampling: peak RSS, CPU time, GC activity.

The ROADMAP's shared-memory item asks BENCH records to prove memory
wins with peak-RSS and per-worker load-time fields; this module is the
one place those numbers come from.  Stdlib only: ``resource`` (gated —
absent on Windows), ``time.process_time``, ``os.times``, ``gc``, and
``tracemalloc`` when the caller already enabled it.

:func:`sample_resources` is the JSON-safe snapshot embedded in every
``BENCH_*.json`` (via :func:`repro.runner.harness.write_perf_record`)
and in exported trace metadata; spans opened with
``span(..., sample_resources=True)`` attach :func:`peak_rss_bytes` and
a CPU-time delta at close.
"""

from __future__ import annotations

import gc
import os
import sys
import time
import tracemalloc

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = ["peak_rss_bytes", "private_bytes", "cpu_seconds", "sample_resources"]


def peak_rss_bytes() -> int:
    """Lifetime peak resident set size of this process, in bytes.

    ``getrusage`` reports ``ru_maxrss`` in KiB on Linux and bytes on
    macOS; normalized here.  Returns 0 where ``resource`` is missing.
    """
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def private_bytes() -> int | None:
    """Private (unshared) resident memory of this process, in bytes.

    ``ru_maxrss`` counts *shared* pages in every process that maps them,
    so N workers reading one shared-memory graph all report the full
    graph in their peak RSS — useless for proving the zero-copy win.
    This is the USS (``Private_Clean + Private_Dirty`` from
    ``/proc/self/smaps_rollup``): memory attributable to this process
    alone, which a shared mapping does **not** inflate.  Returns ``None``
    where the rollup is unavailable (non-Linux, hardened /proc).
    """
    try:
        with open("/proc/self/smaps_rollup", "rb") as fh:
            total = 0
            for line in fh:
                if line.startswith(b"Private_"):
                    total += int(line.split()[1])  # kB
        return total * 1024
    except (OSError, ValueError, IndexError):
        return None


def cpu_seconds() -> float:
    """Process CPU time (user + system) in seconds."""
    return time.process_time()


def _gc_stats() -> dict:
    stats = gc.get_stats()
    return {
        "collections": sum(s.get("collections", 0) for s in stats),
        "collected": sum(s.get("collected", 0) for s in stats),
        "uncollectable": sum(s.get("uncollectable", 0) for s in stats),
    }


def sample_resources() -> dict:
    """A JSON-safe snapshot of this process's resource usage.

    Always includes ``peak_rss_bytes``, ``cpu_seconds``, split
    user/system CPU, the pid, and GC totals; ``tracemalloc_*`` fields
    appear only when tracemalloc is actively tracing (it is never
    started here — its overhead is the caller's decision).
    """
    times = os.times()
    out = {
        "pid": os.getpid(),
        "peak_rss_bytes": peak_rss_bytes(),
        "cpu_seconds": cpu_seconds(),
        "cpu_user_seconds": times.user,
        "cpu_system_seconds": times.system,
        "gc": _gc_stats(),
    }
    uss = private_bytes()
    if uss is not None:
        out["private_bytes"] = uss
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        out["tracemalloc_current_bytes"] = current
        out["tracemalloc_peak_bytes"] = peak
    return out
