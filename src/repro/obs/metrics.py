"""The process-global metrics registry: counters, gauges, histograms.

Before this module, every subsystem kept its own counters under its own
names — ``StoreStats`` dataclass fields, ``AnalysisCache`` hit/miss
dicts, the service queue's ``Timer`` latency labels, maintainer
``stats`` dicts — and the ``/metrics`` JSON, the dashboard, and the
BENCH records each spelled them differently (``analysis_hits`` vs
``hits``).  The registry gives them one home and one naming scheme::

    from repro.obs.metrics import counter, histogram, get_metric

    counter("repro.store.hits").inc()
    histogram("repro.service.latency_seconds.cold").observe(0.31)
    get_metric("repro.store.hits").value

Names follow ``repro.<subsystem>.<name>`` (lowercase, dot-separated;
validated at registration).  The native stats objects stay — they are
per-instance views — while the registry is the process-wide rollup the
Prometheus exposition (``GET /metrics?format=prometheus``) and the
dashboard sparklines read.

Histograms are **log-scale**: latency and size observations span many
orders of magnitude, so bucket bounds step by powers of ``10^(1/3)``
(three buckets per decade) between 1e-7 and 1e3 by default.

Everything is thread-safe (the service queue bumps counters from N
worker threads) and :func:`reset_metrics` zeroes values **in place** so
modules that cached a metric object keep counting into the live one.
"""

from __future__ import annotations

import bisect
import math
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "get_metric",
    "metric_names",
    "snapshot",
    "prometheus_text",
    "reset_metrics",
    "DEFAULT_BUCKET_BOUNDS",
]

#: ``repro.<subsystem>.<name>`` — lowercase segments, dot separated.
_NAME_RE = re.compile(r"^repro(\.[a-z0-9_]+)+$")

#: Log-scale bounds: 10^(1/3) steps, 1e-7 .. 1e3 (31 buckets + overflow).
DEFAULT_BUCKET_BOUNDS = tuple(10.0 ** (k / 3.0) for k in range(-21, 10))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self):
        return self._value

    def inc(self, delta=1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += delta

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """A value that goes up and down (queue depth, live workers)."""

    kind = "gauge"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self):
        return self._value

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, delta=1) -> None:
        with self._lock:
            self._value += delta

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """Log-scale bucketed observations (latencies, sizes).

    ``bounds`` are upper bucket edges; an observation lands in the first
    bucket whose bound is ``>= value`` (one overflow bucket catches the
    rest).  Tracks count/sum/min/max alongside the buckets.
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds=None):
        self.name = name
        chosen = DEFAULT_BUCKET_BOUNDS if bounds is None else tuple(sorted(bounds))
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = chosen
        self._counts = [0] * (len(chosen) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts, overflow bucket last."""
        with self._lock:
            return list(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "bounds": list(self.bounds),
                "counts": list(self._counts),
            }


# ---------------------------------------------------------------------- #
# the registry
# ---------------------------------------------------------------------- #

_REGISTRY: dict[str, object] = {}
_LOCK = threading.Lock()


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must match repro.<subsystem>.<name> "
            "(lowercase segments of [a-z0-9_], dot separated)"
        )
    return name


def _register(name: str, cls, *args):
    _check_name(name)
    with _LOCK:
        metric = _REGISTRY.get(name)
        if metric is None:
            metric = cls(name, *args)
            _REGISTRY[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} is already registered as a {metric.kind}"
            )
        return metric


def counter(name: str) -> Counter:
    """The named counter, created on first use."""
    return _register(name, Counter)


def gauge(name: str) -> Gauge:
    """The named gauge, created on first use."""
    return _register(name, Gauge)


def histogram(name: str, bounds=None) -> Histogram:
    """The named log-scale histogram, created on first use."""
    return _register(name, Histogram, bounds)


def get_metric(name: str):
    """Look up a registered metric; ``KeyError`` names the known set."""
    with _LOCK:
        try:
            return _REGISTRY[name]
        except KeyError:
            known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
            raise KeyError(f"unknown metric {name!r}; known: {known}") from None


def metric_names() -> list[str]:
    with _LOCK:
        return sorted(_REGISTRY)


def snapshot() -> dict:
    """JSON-safe ``{name: {kind, …}}`` view of every registered metric."""
    with _LOCK:
        metrics = list(_REGISTRY.items())
    return {name: metric.to_dict() for name, metric in sorted(metrics)}


def reset_metrics() -> None:
    """Zero every metric **in place** (identities survive; tests use this)."""
    with _LOCK:
        metrics = list(_REGISTRY.values())
    for metric in metrics:
        metric.reset()


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_value(value) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text() -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters and gauges emit one sample; histograms emit cumulative
    ``_bucket{le=…}`` samples plus ``_sum`` and ``_count``, the shape
    ``prometheus`` scrapers and ``promtool check metrics`` expect.
    """
    with _LOCK:
        metrics = sorted(_REGISTRY.items())
    lines: list[str] = []
    for name, metric in metrics:
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} {metric.kind}")
        if isinstance(metric, Histogram):
            data = metric.to_dict()
            cumulative = 0
            for bound, count in zip(data["bounds"], data["counts"]):
                cumulative += count
                lines.append(
                    f'{pname}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            cumulative += data["counts"][-1]
            lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{pname}_sum {_prom_value(data['sum'])}")
            lines.append(f"{pname}_count {data['count']}")
        else:
            lines.append(f"{pname} {_prom_value(metric.value)}")
    return "\n".join(lines) + "\n"
