"""End-to-end observability: spans, metrics, and resource sampling.

The instrumentation substrate shared by the session, the sweep runner,
the compression service, and the stream subsystem:

- :mod:`repro.obs.spans` — hierarchical span tracing with Chrome
  trace-event export and cross-process stitching;
- :mod:`repro.obs.metrics` — the process-global registry of counters,
  gauges, and log-scale histograms under ``repro.<subsystem>.<name>``
  names, with Prometheus text exposition;
- :mod:`repro.obs.resources` — peak-RSS / CPU / GC sampling for BENCH
  records and trace metadata.

``python -m repro.obs validate <trace.json>`` checks an exported trace
against the checked-in schema; ``… tree <trace.json>`` renders it as a
text tree.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    counter,
    gauge,
    get_metric,
    histogram,
    metric_names,
    prometheus_text,
    reset_metrics,
    snapshot,
)
from repro.obs.resources import cpu_seconds, peak_rss_bytes, sample_resources
from repro.obs.spans import (
    Span,
    Tracer,
    current_span_id,
    disable_tracing,
    enable_tracing,
    span,
    tracer,
    tracing_enabled,
    tree_from_trace,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "Tracer",
    "counter",
    "cpu_seconds",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "gauge",
    "get_metric",
    "histogram",
    "metric_names",
    "peak_rss_bytes",
    "prometheus_text",
    "reset_metrics",
    "sample_resources",
    "snapshot",
    "span",
    "tracer",
    "tracing_enabled",
    "tree_from_trace",
    "validate_trace",
]
