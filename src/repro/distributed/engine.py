"""Distributed compression of large graphs (§7.3, Fig. 8).

Each simulated rank owns a contiguous edge partition and runs an *edge
compression kernel* over it, writing its slice of the global keep mask
into an RMA window — the exact dataflow of the paper's MPI-RMA pipeline.
Randomness is a single *global coin sequence* derived from the seed;
rank r consumes exactly its slice (the counter-based-RNG pattern a real
MPI deployment would use to regenerate slices locally), so the compressed
graph is **bit-identical for any rank count, for both backends, and to
the single-node scheme with the same seed**:

- ``backend="inprocess"`` — ranks execute sequentially in this process
  against a plain window (deterministic reference; used in tests);
- ``backend="process"`` — ranks are real OS processes attached to a
  ``multiprocessing.shared_memory`` window.

Only uniform and spectral kernels are supported, matching the paper
("Currently, we use a distributed-memory implementation of edge
compression kernels").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.base import CompressionResult
from repro.compress.spectral import edge_keep_probabilities
from repro.distributed.partition import EdgePartition
from repro.distributed.rma import Window
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["DistributedCompressionResult", "distributed_uniform_sampling", "distributed_spectral"]


@dataclass(frozen=True)
class DistributedCompressionResult:
    """Compression output plus per-rank accounting."""

    result: CompressionResult
    num_ranks: int
    edges_per_rank: tuple[int, ...]
    deleted_per_rank: tuple[int, ...]


def _rank_keep_mask(keep_prob_slice: np.ndarray, coins_slice: np.ndarray) -> np.ndarray:
    """One rank's kernel sweep: keep edge e iff coin_e <= p_e."""
    return (coins_slice <= keep_prob_slice).astype(np.uint8)


def _process_worker(args) -> tuple[int, int]:
    """Worker entry: attach to the shared window, compress own partition."""
    window_name, total, lo, hi, keep_prob_slice, coins_slice = args
    win = Window(total, dtype="uint8", shared=True, name=window_name)
    try:
        mask = _rank_keep_mask(keep_prob_slice, coins_slice)
        win.lock(rank=lo)  # any unique token; asserts exclusive access
        win.put(lo, mask)
        win.unlock(rank=lo)
        return hi - lo, int((mask == 0).sum())
    finally:
        win._shm.close()  # attach-only close; creator unlinks


def _run(
    g: CSRGraph,
    keep_prob: np.ndarray,
    *,
    num_ranks: int,
    seed,
    backend: str,
    scheme_name: str,
    params: dict,
    reweight: bool,
) -> DistributedCompressionResult:
    partition = EdgePartition.contiguous(g, num_ranks)
    partition.validate(g.num_edges)
    m = g.num_edges
    # The global coin sequence: rank r reads its slice.  A real MPI rank
    # regenerates its slice with a counter-based RNG instead of shipping it.
    coins = as_generator(seed).random(m)

    if backend == "inprocess":
        window = Window(m, dtype="uint8")
        window.fence()
        stats = []
        for lo, hi in partition.ranges:
            mask = _rank_keep_mask(keep_prob[lo:hi], coins[lo:hi])
            window.put(lo, mask)
            stats.append((hi - lo, int((mask == 0).sum())))
        window.fence()
        keep = window.buffer.astype(bool)
    elif backend == "process":
        import multiprocessing as mp

        with Window(m, dtype="uint8", shared=True) as window:
            jobs = [
                (window.name, m, lo, hi, keep_prob[lo:hi].copy(), coins[lo:hi].copy())
                for lo, hi in partition.ranges
            ]
            ctx = mp.get_context("fork")
            with ctx.Pool(processes=min(len(jobs), 4)) as pool:
                stats = pool.map(_process_worker, jobs)
            keep = window.buffer.astype(bool).copy()
    else:
        raise ValueError(f"unknown backend {backend!r}")

    compressed = g.keep_edges(keep)
    if reweight:
        base = (
            g.edge_weights[keep]
            if g.is_weighted
            else np.ones(int(keep.sum()), dtype=np.float64)
        )
        compressed = compressed.with_weights(base / keep_prob[keep])
    result = CompressionResult(
        graph=compressed,
        original=g,
        scheme=scheme_name,
        params=params,
    )
    return DistributedCompressionResult(
        result=result,
        num_ranks=len(partition.ranges),
        edges_per_rank=tuple(s[0] for s in stats),
        deleted_per_rank=tuple(s[1] for s in stats),
    )


def distributed_uniform_sampling(
    g: CSRGraph,
    p: float,
    *,
    num_ranks: int = 4,
    seed=None,
    backend: str = "inprocess",
) -> DistributedCompressionResult:
    """Fig. 8's experiment: uniform sampling over edge partitions."""
    check_probability(p, "p")
    keep_prob = np.full(g.num_edges, p)
    return _run(
        g,
        keep_prob,
        num_ranks=num_ranks,
        seed=seed,
        backend=backend,
        scheme_name="distributed_uniform",
        params={"p": p, "num_ranks": num_ranks},
        reweight=False,
    )


def distributed_spectral(
    g: CSRGraph,
    p: float,
    *,
    variant: str = "logn",
    num_ranks: int = 4,
    seed=None,
    backend: str = "inprocess",
    reweight: bool = True,
) -> DistributedCompressionResult:
    """Distributed spectral sparsification (degree-aware edge kernel).

    Degrees are globally available in the CSR replica each rank holds, as
    in the paper's implementation where kernels read degrees of both
    endpoints.
    """
    check_probability(p, "p")
    keep_prob = edge_keep_probabilities(g, p, variant)
    return _run(
        g,
        keep_prob,
        num_ranks=num_ranks,
        seed=seed,
        backend=backend,
        scheme_name="distributed_spectral",
        params={"p": p, "variant": variant, "num_ranks": num_ranks},
        reweight=reweight,
    )
