"""Edge partitioning for distributed compression (§3.2, §7.3).

The paper's distributed pipeline runs *edge compression kernels* over an
edge-partitioned graph with MPI RMA.  ``EdgePartition`` reproduces the data
layout: canonical edges are split into per-rank ranges (contiguous 1-D
blocks, the layout of the paper's MPI implementation, or degree-balanced
blocks for skewed graphs).  Each rank owns its slice of the global keep
mask; ownership is disjoint, so ranks never conflict — the property that
makes the paper's one-sided-communication design race-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.chunking import balanced_chunks, chunk_ranges

__all__ = ["EdgePartition"]


@dataclass(frozen=True)
class EdgePartition:
    """Assignment of canonical edge ranges to ranks."""

    num_ranks: int
    ranges: tuple[tuple[int, int], ...]

    @classmethod
    def contiguous(cls, g: CSRGraph, num_ranks: int) -> "EdgePartition":
        """Equal-count contiguous ranges (the MPI-RMA layout)."""
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        ranges = chunk_ranges(g.num_edges, num_ranks)
        return cls(num_ranks=max(1, len(ranges)) if g.num_edges else num_ranks,
                   ranges=tuple(ranges))

    @classmethod
    def balanced(cls, g: CSRGraph, num_ranks: int) -> "EdgePartition":
        """Ranges balanced by endpoint degree sums (power-law graphs)."""
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        deg = g.degrees
        weight = deg[g.edge_src] + deg[g.edge_dst]
        ranges = balanced_chunks(weight, num_ranks)
        return cls(num_ranks=max(1, len(ranges)) if g.num_edges else num_ranks,
                   ranges=tuple(ranges))

    def owner_of(self, edge_id: int) -> int:
        for rank, (lo, hi) in enumerate(self.ranges):
            if lo <= edge_id < hi:
                return rank
        raise KeyError(f"edge {edge_id} not in any range")

    def edges_of(self, rank: int) -> tuple[int, int]:
        return self.ranges[rank]

    def validate(self, num_edges: int) -> None:
        """Ranges must tile [0, num_edges) exactly, in order."""
        pos = 0
        for lo, hi in self.ranges:
            assert lo == pos and hi >= lo, "ranges must be contiguous and ordered"
            pos = hi
        assert pos == num_edges, "ranges must cover all edges"
