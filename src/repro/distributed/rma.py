"""Simulated MPI one-sided (RMA) windows.

The paper compresses its largest graphs with "a distributed-memory
implementation of edge compression kernels, based on MPI Remote Memory
Access".  mpi4py is not available offline, so this module simulates the
RMA subset that implementation needs:

- :class:`Window` — a byte-addressable shared array with ``put``/``get``/
  ``accumulate`` plus epoch bookkeeping (``fence``) and per-rank access
  assertion (``lock``/``unlock``), mirroring ``MPI.Win`` semantics;
- two backings: a plain in-process ndarray (deterministic tests) and
  ``multiprocessing.shared_memory`` (real OS-level sharing for the
  process-backed engine).

The simulation checks the discipline the real code must follow (no access
outside an epoch or lock), so porting to mpi4py is mechanical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Window", "RMAError"]


class RMAError(RuntimeError):
    """Violation of the window access discipline."""


class Window:
    """A shared typed array with one-sided access semantics.

    Parameters
    ----------
    size:
        Number of elements.
    dtype:
        NumPy dtype of the window.
    shared:
        Use ``multiprocessing.shared_memory`` (pass ``name=...`` to attach
        to an existing segment from a worker process).
    """

    def __init__(self, size: int, dtype="uint8", *, shared: bool = False, name: str | None = None):
        self.size = int(size)
        self.dtype = np.dtype(dtype)
        self._shared = shared
        self._shm = None
        self._epoch_open = False
        self._locked_by: int | None = None
        if shared:
            from multiprocessing import shared_memory

            nbytes = self.size * self.dtype.itemsize
            if name is None:
                self._shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
                self._owns = True
            else:
                self._shm = shared_memory.SharedMemory(name=name)
                self._owns = False
            try:
                self.buffer = np.ndarray(self.size, dtype=self.dtype, buffer=self._shm.buf)
                if name is None:
                    self.buffer[:] = 0
            except BaseException:
                # The segment exists (create=True already succeeded) but
                # the caller will never hold a Window to close() — without
                # this, a failure here leaks it until reboot.
                self.close()
                raise
        else:
            self._owns = True
            self.buffer = np.zeros(self.size, dtype=self.dtype)

    # -- epochs / locks --------------------------------------------------- #

    @property
    def name(self) -> str | None:
        return self._shm.name if self._shm is not None else None

    def fence(self) -> None:
        """Open/close an access epoch (MPI_Win_fence analogue)."""
        self._epoch_open = not self._epoch_open

    def lock(self, rank: int) -> None:
        if self._locked_by is not None:
            raise RMAError(f"window already locked by rank {self._locked_by}")
        self._locked_by = int(rank)

    def unlock(self, rank: int) -> None:
        if self._locked_by != int(rank):
            raise RMAError(f"rank {rank} does not hold the lock")
        self._locked_by = None

    def _check_access(self) -> None:
        if not self._epoch_open and self._locked_by is None:
            raise RMAError("window access outside an epoch or lock")

    # -- one-sided ops ----------------------------------------------------- #

    def put(self, offset: int, values) -> None:
        self._check_access()
        values = np.asarray(values, dtype=self.dtype)
        if offset < 0 or offset + len(values) > self.size:
            raise RMAError("put out of window bounds")
        self.buffer[offset : offset + len(values)] = values

    def get(self, offset: int, count: int) -> np.ndarray:
        self._check_access()
        if offset < 0 or offset + count > self.size:
            raise RMAError("get out of window bounds")
        return self.buffer[offset : offset + count].copy()

    def accumulate(self, offset: int, values, op: str = "sum") -> None:
        """Element-wise accumulate (sum / max / min / lor)."""
        self._check_access()
        values = np.asarray(values, dtype=self.dtype)
        if offset < 0 or offset + len(values) > self.size:
            raise RMAError("accumulate out of window bounds")
        view = self.buffer[offset : offset + len(values)]
        if op == "sum":
            view += values
        elif op == "max":
            np.maximum(view, values, out=view)
        elif op == "min":
            np.minimum(view, values, out=view)
        elif op == "lor":
            np.bitwise_or(view, values, out=view)
        else:
            raise ValueError(f"unknown accumulate op {op!r}")

    # -- lifecycle ---------------------------------------------------------- #

    def close(self) -> None:
        """Release the backing segment.  Idempotent: safe on a partially
        constructed window, after an external unlink, and called twice."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            # A live view (e.g. self.buffer captured in an exception
            # frame) pins the mapping; it dies with the process.
            pass
        if self._owns:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "Window":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
