"""Simulated distributed compression (MPI-RMA stand-in)."""

from repro.distributed.partition import EdgePartition
from repro.distributed.rma import Window, RMAError
from repro.distributed.engine import (
    DistributedCompressionResult,
    distributed_uniform_sampling,
    distributed_spectral,
)

__all__ = [
    "EdgePartition",
    "Window",
    "RMAError",
    "DistributedCompressionResult",
    "distributed_uniform_sampling",
    "distributed_spectral",
]
