"""Analytics subsystem: evaluation harness, sweeps, report rendering."""

from repro.analytics.evaluation import (
    AlgorithmSpec,
    EvaluationRecord,
    evaluate_scheme,
    default_algorithms,
)
from repro.analytics.grid import GridCell, SweepTable
from repro.analytics.session import CompressedRun, ScoreReport, Session, SweepRow
from repro.analytics.tradeoff import sweep
from repro.analytics.report import format_table, write_csv
from repro.analytics.guidance import Recommendation, recommend, PRESERVABLE_PROPERTIES
from repro.analytics.storage import StorageReport, storage_report

__all__ = [
    "Session",
    "CompressedRun",
    "ScoreReport",
    "GridCell",
    "SweepTable",
    "Recommendation",
    "recommend",
    "PRESERVABLE_PROPERTIES",
    "StorageReport",
    "storage_report",
    "AlgorithmSpec",
    "EvaluationRecord",
    "evaluate_scheme",
    "default_algorithms",
    "SweepRow",
    "sweep",
    "format_table",
    "write_csv",
]
