"""Scheme-selection guidance — §7.5 ("How To Select Compression Schemes?")
as an API.

The paper's recipe: (1) consult Table 3 and pick the scheme with the best
accuracy for the property you need preserved, (2) verify the scheme is
feasible for your graph (weighted/directed support, size), (3) pick
parameters from the Fig. 5 sweeps.  :func:`recommend` encodes steps 1–2;
step 3 remains :func:`repro.analytics.tradeoff.sweep`.

The ranking below is the paper's own Table 3 + §6.3 discussion distilled:
each property maps to schemes ordered best-first, each with the paper's
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.csr import CSRGraph

__all__ = ["Recommendation", "recommend", "PRESERVABLE_PROPERTIES"]


@dataclass(frozen=True)
class Recommendation:
    """One ranked suggestion: a registry spec plus the Table 3 rationale."""

    scheme_spec: str
    rationale: str
    feasible: bool
    caveat: str = ""


# property -> ordered (spec template, rationale) from Table 3 / §6.3 / §7.2.
_RANKINGS: dict[str, list[tuple[str, str]]] = {
    "connected_components": [
        ("EO-{p}-1-TR", "EO-TR deletes at most one edge per triangle cycle; "
                        "#CC preserved (§6.3, §7.2)"),
        ("spanner(k={k})", "spanning trees + one inter-cluster edge keep "
                           "connectivity deterministically (§6.2)"),
        ("spectral(p={p})", "every vertex keeps incident edges w.h.p.; "
                            "far fewer splits than uniform (§7.2)"),
    ],
    "shortest_paths": [
        ("spanner(k={k})", "distances stretch at most O(k) by construction "
                           "(§4.5.3); best SSSP preservation (§7.2)"),
        ("EO-{p}-1-TR", "paths grow at most (1+p)x w.h.p.; a 2-spanner "
                        "deterministically (§6.1, §6.3)"),
    ],
    "mst_weight": [
        ("tr(p={p}, variant=max_weight)", "removing the max-weight edge of "
                                          "intact triangles preserves the MST "
                                          "weight exactly (cycle property, §4.3)"),
        ("spanner(k={k})", "spanning-tree cores keep light edges (§7.2)"),
    ],
    "graph_spectrum": [
        ("spectral(p={p})", "degree-aware sampling with 1/p reweighting is a "
                            "spectral sparsifier (§4.2.1)"),
    ],
    "triangle_count": [
        ("uniform(p={p})", "DOULION: E[T'] = p^3 T, rescale by 1/p^3 "
                           "(§4.2.2, Table 3)"),
        ("spectral(p={p})", "preserves TC ordering on heavy-tailed graphs "
                            "(§7.2; see EXPERIMENTS.md deviation note)"),
    ],
    "betweenness_centrality": [
        ("low_degree(max_degree=1)", "degree-1 vertices contribute no "
                                     "shortest paths between interior "
                                     "vertices: BC exact (§4.4)"),
        ("EO-{p}-1-TR", "small edge loss, bounded path stretch (§6.1)"),
    ],
    "pagerank": [
        ("EO-{p}-1-TR", "lowest KL divergence at comparable budgets "
                        "(Table 5)"),
        ("spectral(p={p})", "random-walk structure tracks the spectrum"),
        ("uniform(p={p})", "unbiased but diverges fastest (Table 5)"),
    ],
    "matching": [
        ("EO-{p}-1-TR", "expected matching size >= 2/3 of the original "
                        "(§6.1); the least-affected property under TR (§7.2)"),
        ("uniform(p={p})", "E[matching] >= p * original (Table 3)"),
    ],
    "coloring": [
        ("EO-{p}-1-TR", "coloring number stays >= 1/3 of the original "
                        "(arboricity argument, §6.1)"),
        ("spanner(k={k})", "O(n^{1/k} log n) colors suffice (§6.2)"),
    ],
    "cut_sizes": [
        ("cut_sparsifier(epsilon={eps})", "Benczur-Karger sampling preserves "
                                          "all cuts within 1±ε (§4.6)"),
        ("spectral(p={p})", "a spectral sparsifier is also a cut sparsifier "
                            "(§4.6)"),
    ],
    "neighborhoods": [
        ("summarization(epsilon={eps})", "per-vertex symmetric difference "
                                         "bounded by ε·d(v) (§4.5.4)"),
    ],
    "storage": [
        ("spanner(k={k})", "largest reductions: subgraphs become spanning "
                           "trees (§7.1); increase k for more"),
        ("uniform(p={p})", "arbitrary reduction via p at Θ(m) cost"),
    ],
}

PRESERVABLE_PROPERTIES = sorted(_RANKINGS)

# Feasibility per Table 2's W/D columns (scheme family -> supports).
_SUPPORTS = {
    "tr": {"weighted": True, "directed": False},
    "EO": {"weighted": True, "directed": False},
    "uniform": {"weighted": True, "directed": True},
    "spectral": {"weighted": True, "directed": False},
    "spanner": {"weighted": False, "directed": False},
    "summarization": {"weighted": False, "directed": False},
    "low_degree": {"weighted": True, "directed": False},
    "cut_sparsifier": {"weighted": True, "directed": False},
}


def _family(spec: str) -> str:
    head = spec.split("(")[0]
    if head.startswith("EO") or head.endswith("TR"):
        return "tr"
    return head


def recommend(
    preserve: str,
    graph: CSRGraph | None = None,
    *,
    p: float = 0.8,
    k: int = 8,
    eps: float = 0.2,
) -> list[Recommendation]:
    """Rank compression schemes for preserving ``preserve`` (§7.5 step 1–2).

    Parameters
    ----------
    preserve:
        One of :data:`PRESERVABLE_PROPERTIES`.
    graph:
        Optional: feasibility (weighted/directed support, triangle
        availability) is checked against this graph.
    p, k, eps:
        Default parameters substituted into the returned specs; tune with
        :func:`repro.analytics.tradeoff.sweep` (§7.5 step 3).
    """
    if preserve not in _RANKINGS:
        raise ValueError(
            f"unknown property {preserve!r}; choose from {PRESERVABLE_PROPERTIES}"
        )
    out: list[Recommendation] = []
    for template, rationale in _RANKINGS[preserve]:
        spec = template.format(p=p, k=k, eps=eps)
        feasible = True
        caveat = ""
        if graph is not None:
            support = _SUPPORTS.get(_family(spec), {"weighted": True, "directed": True})
            if graph.directed and not support["directed"]:
                feasible = False
                caveat = "scheme operates on undirected graphs; symmetrize first"
            elif graph.is_weighted and not support["weighted"]:
                caveat = "weights are ignored by this scheme"
            if _family(spec) == "tr" and graph is not None and not graph.directed:
                # TR needs triangles to do anything.
                from repro.algorithms.triangles import count_triangles

                if graph.num_edges and count_triangles(graph) == 0:
                    feasible = False
                    caveat = "graph is triangle-free: TR removes nothing"
        out.append(
            Recommendation(
                scheme_spec=spec, rationale=rationale, feasible=feasible, caveat=caveat
            )
        )
    return out
