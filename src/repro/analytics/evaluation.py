"""The analytics subsystem (§3.3): scheme × algorithm × metric harness.

Routes each algorithm's output class to the right §5 metric:

- *scalar* outputs (CC count, MST weight, triangle count, matching size)
  → relative change;
- *distribution* outputs (PageRank) → Kullback–Leibler divergence;
- *vector* outputs (betweenness, triangles per vertex) → reordered
  neighbor pairs;
- *BFS* → critical-edge preservation.

``evaluate_scheme`` runs the whole battery and returns one record per
algorithm — the rows behind Tables 5/6 and the §7.2 narrative.  It is a
deprecated shim over :class:`repro.analytics.session.Session`, which
additionally caches the original-graph runs across schemes; new code
should create a session explicitly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["AlgorithmSpec", "EvaluationRecord", "evaluate_scheme", "default_algorithms"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm plus the metric class its output belongs to.

    ``kind`` ∈ {"scalar", "distribution", "vector", "bfs"} decides the
    accuracy metric; ``fn`` maps a graph to the output (for "bfs" the
    output is ignored — the metric runs its own traversals).
    """

    name: str
    fn: Callable[[CSRGraph], object]
    kind: str


@dataclass
class EvaluationRecord:
    algorithm: str
    kind: str
    metric_name: str
    metric_value: float
    original_seconds: float
    compressed_seconds: float
    original_value: object = field(default=None, repr=False)
    compressed_value: object = field(default=None, repr=False)

    @property
    def relative_runtime_difference(self) -> float:
        t0 = self.original_seconds
        return (t0 - self.compressed_seconds) / t0 if t0 > 0 else 0.0


def default_algorithms(*, bfs_root: int = 0, pr_iterations: int = 100) -> list[AlgorithmSpec]:
    """The Fig. 5 battery: BFS, CC, PR, TC (+ per-vertex TC vector)."""
    from repro.algorithms.components import connected_components
    from repro.algorithms.pagerank import pagerank
    from repro.algorithms.triangles import count_triangles, triangles_per_vertex

    return [
        AlgorithmSpec("bfs", lambda g: bfs_root, "bfs"),
        AlgorithmSpec(
            "cc", lambda g: connected_components(g).num_components, "scalar"
        ),
        AlgorithmSpec(
            "pr",
            lambda g: pagerank(g, max_iterations=pr_iterations).ranks,
            "distribution",
        ),
        AlgorithmSpec("tc", lambda g: count_triangles(g), "scalar"),
        AlgorithmSpec("tc_per_vertex", triangles_per_vertex, "vector"),
    ]


def evaluate_scheme(
    g: CSRGraph,
    scheme,
    algorithms: list[AlgorithmSpec] | None = None,
    *,
    seed=None,
    bfs_root: int = 0,
) -> tuple[list[EvaluationRecord], CSRGraph]:
    """Compress ``g`` with ``scheme`` and run the metric battery.

    Returns (records, compressed_graph).  Vector metrics are evaluated on
    the original adjacency so all schemes are compared over the same pair
    population (§5's caveat).

    .. deprecated::
        Use :class:`repro.analytics.session.Session` — a session caches
        baseline runs across schemes and carries the backend selection.
        This shim creates a throwaway session per call.
    """
    warnings.warn(
        "evaluate_scheme() is deprecated; use Session(g).evaluate(scheme)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.analytics.session import Session

    session = Session(g, seed=seed, bfs_root=bfs_root)
    return session.evaluate(scheme, algorithms, seed=seed)


def _pad(x: np.ndarray, n: int) -> np.ndarray:
    """Pad per-vertex vectors with zeros when compression dropped vertices
    (triangle collapse); keeps positional comparability."""
    if len(x) == n:
        return x
    if len(x) > n:
        raise ValueError("compressed output longer than original")
    out = np.zeros(n, dtype=x.dtype)
    out[: len(x)] = x
    return out
