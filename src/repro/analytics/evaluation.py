"""The analytics subsystem (§3.3): scheme × algorithm × metric harness.

Routes each algorithm's output class to the right §5 metric:

- *scalar* outputs (CC count, MST weight, triangle count, matching size)
  → relative change;
- *distribution* outputs (PageRank) → Kullback–Leibler divergence;
- *vector* outputs (betweenness, triangles per vertex) → reordered
  neighbor pairs;
- *BFS* → critical-edge preservation.

``evaluate_scheme`` runs the whole battery and returns one record per
algorithm — the rows behind Tables 5/6 and the §7.2 narrative.  It is a
deprecated shim over :class:`repro.analytics.session.Session`, which
additionally caches the original-graph runs across schemes; new code
should create a session explicitly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.graphs.csr import CSRGraph

__all__ = ["AlgorithmSpec", "EvaluationRecord", "evaluate_scheme", "default_algorithms"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm plus the metric class its output belongs to.

    ``kind`` ∈ {"scalar", "distribution", "vector", "bfs"} (plus the
    newer adapter names ``"ordering"`` / ``"vertex_set"`` /
    ``"traversal"``) decides the accuracy metric; ``fn`` maps a graph to
    the output (for "bfs" the output is ignored — the metric runs its own
    traversals).

    .. deprecated::
        This is the legacy *executable* triple, kept for hand-rolled
        battery entries.  Algorithms are now described declaratively by
        :class:`repro.algorithms.spec.AlgorithmSpec` (a name + parameters
        that parse/format/JSON round-trip) and registered with
        :func:`repro.algorithms.registry.register_algorithm`, which also
        declares the typed result adapter replacing ``kind``.
    """

    name: str
    fn: Callable[[CSRGraph], object]
    kind: str


@dataclass
class EvaluationRecord:
    algorithm: str
    kind: str
    metric_name: str
    metric_value: float
    original_seconds: float
    compressed_seconds: float
    original_value: object = field(default=None, repr=False)
    compressed_value: object = field(default=None, repr=False)

    @property
    def relative_runtime_difference(self) -> float:
        t0 = self.original_seconds
        return (t0 - self.compressed_seconds) / t0 if t0 > 0 else 0.0


def default_algorithms(*, bfs_root: int = 0, pr_iterations: int = 100) -> list[AlgorithmSpec]:
    """The Fig. 5 battery: BFS, CC, PR, TC (+ per-vertex TC vector).

    .. deprecated::
        The algorithm registry is now the source of truth; this shim
        builds its entries through
        :func:`repro.algorithms.registry.build_algorithm` and merely
        wraps them in legacy executable specs under the paper's short
        names.  Prefer naming registered algorithms directly
        (``Session.grid([...], ["pr", "cc", "tc"])``).
    """
    from repro.algorithms.registry import build_algorithm

    cc = build_algorithm("cc")
    pr = build_algorithm("pr", max_iterations=pr_iterations)
    tc = build_algorithm("tc")
    tpv = build_algorithm("tc_per_vertex")
    return [
        AlgorithmSpec("bfs", lambda g: bfs_root, "bfs"),
        AlgorithmSpec("cc", cc.compute, "scalar"),
        AlgorithmSpec("pr", pr.compute, "distribution"),
        AlgorithmSpec("tc", tc.compute, "scalar"),
        AlgorithmSpec("tc_per_vertex", tpv.compute, "vector"),
    ]


def evaluate_scheme(
    g: CSRGraph,
    scheme,
    algorithms: list[AlgorithmSpec] | None = None,
    *,
    seed=None,
    bfs_root: int = 0,
) -> tuple[list[EvaluationRecord], CSRGraph]:
    """Compress ``g`` with ``scheme`` and run the metric battery.

    Returns (records, compressed_graph).  Vector metrics are evaluated on
    the original adjacency so all schemes are compared over the same pair
    population (§5's caveat).

    .. deprecated::
        Use :class:`repro.analytics.session.Session` — a session caches
        baseline runs across schemes and carries the backend selection.
        This shim creates a throwaway session per call.
    """
    warnings.warn(
        "evaluate_scheme() is deprecated; use Session(g).evaluate(scheme)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.analytics.session import Session

    session = Session(g, seed=seed, bfs_root=bfs_root)
    return session.evaluate(scheme, algorithms, seed=seed)
