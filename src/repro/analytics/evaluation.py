"""The analytics subsystem (§3.3): scheme × algorithm × metric harness.

Routes each algorithm's output class to the right §5 metric:

- *scalar* outputs (CC count, MST weight, triangle count, matching size)
  → relative change;
- *distribution* outputs (PageRank) → Kullback–Leibler divergence;
- *vector* outputs (betweenness, triangles per vertex) → reordered
  neighbor pairs;
- *BFS* → critical-edge preservation.

``evaluate_scheme`` runs the whole battery and returns one record per
algorithm — the rows behind Tables 5/6 and the §7.2 narrative.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.metrics.bfs_quality import critical_edge_preservation
from repro.metrics.divergences import kl_divergence
from repro.metrics.ordering import reordered_neighbor_pairs
from repro.metrics.scalars import relative_change

__all__ = ["AlgorithmSpec", "EvaluationRecord", "evaluate_scheme", "default_algorithms"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm plus the metric class its output belongs to.

    ``kind`` ∈ {"scalar", "distribution", "vector", "bfs"} decides the
    accuracy metric; ``fn`` maps a graph to the output (for "bfs" the
    output is ignored — the metric runs its own traversals).
    """

    name: str
    fn: Callable[[CSRGraph], object]
    kind: str


@dataclass
class EvaluationRecord:
    algorithm: str
    kind: str
    metric_name: str
    metric_value: float
    original_seconds: float
    compressed_seconds: float
    original_value: object = field(default=None, repr=False)
    compressed_value: object = field(default=None, repr=False)

    @property
    def relative_runtime_difference(self) -> float:
        t0 = self.original_seconds
        return (t0 - self.compressed_seconds) / t0 if t0 > 0 else 0.0


def default_algorithms(*, bfs_root: int = 0, pr_iterations: int = 100) -> list[AlgorithmSpec]:
    """The Fig. 5 battery: BFS, CC, PR, TC (+ per-vertex TC vector)."""
    from repro.algorithms.components import connected_components
    from repro.algorithms.pagerank import pagerank
    from repro.algorithms.triangles import count_triangles, triangles_per_vertex

    return [
        AlgorithmSpec("bfs", lambda g: bfs_root, "bfs"),
        AlgorithmSpec(
            "cc", lambda g: connected_components(g).num_components, "scalar"
        ),
        AlgorithmSpec(
            "pr",
            lambda g: pagerank(g, max_iterations=pr_iterations).ranks,
            "distribution",
        ),
        AlgorithmSpec("tc", lambda g: count_triangles(g), "scalar"),
        AlgorithmSpec("tc_per_vertex", triangles_per_vertex, "vector"),
    ]


def _timed(fn, g):
    start = time.perf_counter()
    out = fn(g)
    return out, time.perf_counter() - start


def evaluate_scheme(
    g: CSRGraph,
    scheme,
    algorithms: list[AlgorithmSpec] | None = None,
    *,
    seed=None,
    bfs_root: int = 0,
) -> tuple[list[EvaluationRecord], CSRGraph]:
    """Compress ``g`` with ``scheme`` and run the metric battery.

    Returns (records, compressed_graph).  Vector metrics are evaluated on
    the original adjacency so all schemes are compared over the same pair
    population (§5's caveat).
    """
    algorithms = algorithms if algorithms is not None else default_algorithms(bfs_root=bfs_root)
    result = scheme.compress(g, seed=seed)
    compressed = result.graph
    records: list[EvaluationRecord] = []
    for spec in algorithms:
        if spec.kind == "bfs":
            t0 = time.perf_counter()
            value = critical_edge_preservation(g, compressed, bfs_root)
            elapsed = time.perf_counter() - t0
            records.append(
                EvaluationRecord(
                    algorithm=spec.name,
                    kind=spec.kind,
                    metric_name="critical_edge_preservation",
                    metric_value=float(value),
                    original_seconds=elapsed / 2,
                    compressed_seconds=elapsed / 2,
                )
            )
            continue
        out0, t0 = _timed(spec.fn, g)
        out1, t1 = _timed(spec.fn, compressed)
        if spec.kind == "scalar":
            metric_name = "relative_change"
            metric_value = relative_change(float(out0), float(out1))
        elif spec.kind == "distribution":
            metric_name = "kl_divergence"
            metric_value = kl_divergence(np.asarray(out0), _pad(np.asarray(out1), len(out0)))
        elif spec.kind == "vector":
            metric_name = "reordered_neighbor_pairs"
            metric_value = reordered_neighbor_pairs(
                g, np.asarray(out0, dtype=float), _pad(np.asarray(out1, dtype=float), len(out0))
            )
        else:
            raise ValueError(f"unknown algorithm kind {spec.kind!r}")
        records.append(
            EvaluationRecord(
                algorithm=spec.name,
                kind=spec.kind,
                metric_name=metric_name,
                metric_value=float(metric_value),
                original_seconds=t0,
                compressed_seconds=t1,
                original_value=out0,
                compressed_value=out1,
            )
        )
    return records, compressed


def _pad(x: np.ndarray, n: int) -> np.ndarray:
    """Pad per-vertex vectors with zeros when compression dropped vertices
    (triangle collapse); keeps positional comparability."""
    if len(x) == n:
        return x
    if len(x) > n:
        raise ValueError("compressed output longer than original")
    out = np.zeros(n, dtype=x.dtype)
    out[: len(x)] = x
    return out
