"""Tabular report rendering for the benchmark harness.

Formats experiment rows into the fixed-width tables the benchmark scripts
print (one per paper table/figure) and optionally CSV for downstream
plotting.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_table", "write_csv"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Iterable[Sequence], headers: Sequence[str], *, title: str | None = None) -> str:
    """Fixed-width ASCII table (paper-style rows)."""
    rendered = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "-" * len(line)
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(line + "\n")
    out.write(sep + "\n")
    for row in rendered:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def write_csv(rows: Iterable[Sequence], headers: Sequence[str], path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(headers)
        writer.writerows(rows)
