"""Parameter sweeps: the storage/performance/accuracy tradeoff (Fig. 5).

``sweep`` runs a scheme factory over a parameter grid, timing the Fig. 5
algorithm battery on original vs compressed graphs and recording the
compression ratio — one row per (parameter value, algorithm), which is
exactly the data behind each Fig. 5 panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.analytics.evaluation import AlgorithmSpec, evaluate_scheme
from repro.graphs.csr import CSRGraph

__all__ = ["SweepRow", "sweep"]


@dataclass(frozen=True)
class SweepRow:
    """One Fig. 5 data point."""

    parameter: float
    algorithm: str
    compression_ratio: float
    relative_runtime_difference: float
    metric_name: str
    metric_value: float


def sweep(
    g: CSRGraph,
    scheme_factory: Callable[[float], object],
    parameter_values: Sequence[float],
    *,
    algorithms: list[AlgorithmSpec] | None = None,
    seed: int = 0,
    repeats: int = 1,
) -> list[SweepRow]:
    """Run the battery for every parameter value.

    ``repeats`` re-runs each cell and keeps the best (minimum) times,
    damping scheduler noise the way the paper's warmup-and-mean
    methodology does at larger scale.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rows: list[SweepRow] = []
    for value in parameter_values:
        scheme = scheme_factory(value)
        best: dict[str, "tuple"] = {}
        ratio = 1.0
        for r in range(repeats):
            records, compressed = evaluate_scheme(
                g, scheme, algorithms, seed=seed + r
            )
            ratio = compressed.num_edges / g.num_edges if g.num_edges else 1.0
            for rec in records:
                prev = best.get(rec.algorithm)
                if prev is None or rec.compressed_seconds < prev[0].compressed_seconds:
                    best[rec.algorithm] = (rec,)
        for (rec,) in best.values():
            rows.append(
                SweepRow(
                    parameter=float(value),
                    algorithm=rec.algorithm,
                    compression_ratio=ratio,
                    relative_runtime_difference=rec.relative_runtime_difference,
                    metric_name=rec.metric_name,
                    metric_value=rec.metric_value,
                )
            )
    return rows
