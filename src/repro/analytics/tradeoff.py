"""Parameter sweeps: the storage/performance/accuracy tradeoff (Fig. 5).

``sweep`` runs a scheme factory over a parameter grid, timing the Fig. 5
algorithm battery on original vs compressed graphs and recording the
compression ratio — one row per (parameter value, algorithm), which is
exactly the data behind each Fig. 5 panel.

It is a deprecated shim over :meth:`repro.analytics.session.Session.sweep`,
which additionally accepts spec-string lists, deduplicates equal schemes,
and reuses cached baseline runs; new code should create a session.  For
sweeps over *both* the scheme and the algorithm axis (with registry-named
algorithms and metrics), use :meth:`repro.analytics.session.Session.grid`,
which returns a tidy long-format :class:`repro.analytics.grid.SweepTable`.
:class:`SweepRow` now lives in :mod:`repro.analytics.session` and is
re-exported here unchanged.
"""

from __future__ import annotations

import warnings
from typing import Callable, Sequence

from repro.analytics.evaluation import AlgorithmSpec
from repro.analytics.session import Session, SweepRow
from repro.graphs.csr import CSRGraph

__all__ = ["SweepRow", "sweep"]


def sweep(
    g: CSRGraph,
    scheme_factory: Callable[[float], object],
    parameter_values: Sequence[float],
    *,
    algorithms: list[AlgorithmSpec] | None = None,
    seed: int = 0,
    repeats: int = 1,
) -> list[SweepRow]:
    """Run the battery for every parameter value.

    ``repeats`` re-runs each cell and keeps the best (minimum) times,
    damping scheduler noise the way the paper's warmup-and-mean
    methodology does at larger scale.

    .. deprecated::
        Use ``Session(g).sweep([...])`` — it takes spec strings directly
        and shares one baseline cache across the whole sweep.
    """
    warnings.warn(
        "sweep() is deprecated; use Session(g).sweep(schemes)",
        DeprecationWarning,
        stacklevel=2,
    )
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    session = Session(g, seed=seed)
    return session.sweep(
        [scheme_factory(value) for value in parameter_values],
        parameters=[float(value) for value in parameter_values],
        algorithms=algorithms,
        seed=seed,
        repeats=repeats,
    )
