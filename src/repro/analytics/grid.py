"""Tidy long-format results of scheme × algorithm × metric grid sweeps.

:meth:`repro.analytics.session.Session.grid` evaluates every registered
algorithm on every scheme and scores each output with every selected
metric; the result is a :class:`SweepTable` — one :class:`GridCell` row
per (scheme, algorithm, metric) triple, in the tidy long format that
feeds plotting and downstream aggregation directly.

The table is a value: it round-trips losslessly through ``to_dict`` /
``from_dict`` (JSON transport) and ``to_csv`` / ``from_csv`` (files),
renders as the paper-style fixed-width table via ``to_table``, and
supports simple relational slicing with ``filter`` and ``pivot``.
"""

from __future__ import annotations

import csv
import io
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Iterable, Iterator, Mapping

__all__ = ["GridCell", "SweepTable"]


@dataclass(frozen=True)
class GridCell:
    """One cell of a grid sweep: a scored (scheme, algorithm, metric).

    ``seed`` records the compression seed the cell was actually produced
    with (so cached and fresh runs are auditable and byte-identical), and
    ``graph`` names the input graph when the cell comes from a multi-graph
    harness sweep (empty for single-session grids).
    """

    scheme: str
    algorithm: str
    metric: str
    value: float
    compression_ratio: float
    original_seconds: float = 0.0
    compressed_seconds: float = 0.0
    adapter: str = ""
    graph: str = ""
    seed: object = None

    @property
    def relative_runtime_difference(self) -> float:
        t0 = self.original_seconds
        return (t0 - self.compressed_seconds) / t0 if t0 > 0 else 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "GridCell":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


_FLOAT_FIELDS = (
    "value",
    "compression_ratio",
    "original_seconds",
    "compressed_seconds",
)


def _format_field(value) -> str:
    """Serialize one cell field for text transports (CSV *and* markdown).

    Floats use ``repr``, whose shortest-round-trip guarantee makes
    ``float(_format_field(x)) == x`` exact; ``None`` (an unset seed)
    becomes the empty string.  Both :meth:`SweepTable.to_csv` and
    :meth:`SweepTable.to_markdown` go through here so the two formats can
    never drift.
    """
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _parse_seed(text: str):
    """Inverse of :func:`_format_field` for the ``seed`` column."""
    if text == "" or text is None:
        return None
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


class SweepTable:
    """An immutable sequence of :class:`GridCell` rows with table views."""

    headers = tuple(f.name for f in fields(GridCell))

    def __init__(self, rows: Iterable[GridCell]):
        self.rows: tuple[GridCell, ...] = tuple(rows)

    # -- sequence protocol -------------------------------------------------- #

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[GridCell]:
        return iter(self.rows)

    def __getitem__(self, index):
        picked = self.rows[index]
        return SweepTable(picked) if isinstance(index, slice) else picked

    def __eq__(self, other) -> bool:
        if not isinstance(other, SweepTable):
            return NotImplemented
        return self.rows == other.rows

    def __repr__(self) -> str:
        axes = (
            f"{len(self.schemes())} schemes x {len(self.algorithms())} "
            f"algorithms x {len(self.metrics())} metrics"
        )
        return f"SweepTable({len(self.rows)} rows: {axes})"

    # -- axes --------------------------------------------------------------- #

    def schemes(self) -> list[str]:
        return _unique(c.scheme for c in self.rows)

    def algorithms(self) -> list[str]:
        return _unique(c.algorithm for c in self.rows)

    def metrics(self) -> list[str]:
        return _unique(c.metric for c in self.rows)

    def graphs(self) -> list[str]:
        """Graph names present (harness sweeps span several; may be [''])."""
        return _unique(c.graph for c in self.rows)

    # -- slicing ------------------------------------------------------------ #

    def filter(
        self, *, scheme=None, algorithm=None, metric=None, graph=None, seed=None
    ) -> "SweepTable":
        """Rows matching every given axis value (exact match)."""
        return SweepTable(
            c
            for c in self.rows
            if (scheme is None or c.scheme == scheme)
            and (algorithm is None or c.algorithm == algorithm)
            and (metric is None or c.metric == metric)
            and (graph is None or c.graph == graph)
            and (seed is None or c.seed == seed)
        )

    def pivot(self) -> dict[tuple[str, str, str], float]:
        """``{(scheme, algorithm, metric): value}`` for direct lookups."""
        return {(c.scheme, c.algorithm, c.metric): c.value for c in self.rows}

    # -- transport ---------------------------------------------------------- #

    def to_dict(self) -> list[dict]:
        """JSON-safe list of row dicts; inverse of :meth:`from_dict`."""
        return [c.to_dict() for c in self.rows]

    @classmethod
    def from_dict(cls, rows: Iterable[Mapping]) -> "SweepTable":
        return cls(GridCell.from_dict(r) for r in rows)

    def to_csv(self, path=None) -> str:
        """CSV text (also written to ``path`` when given); inverse of
        :meth:`from_csv`."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        for cell in self.rows:
            d = cell.to_dict()
            writer.writerow([_format_field(d[h]) for h in self.headers])
        text = buf.getvalue()
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return text

    @classmethod
    def from_csv(cls, source) -> "SweepTable":
        """Parse a table back from CSV text or a file path.

        Anything without a newline is treated as a path (CSV text always
        has a header line ending in one), so a missing file raises
        instead of parsing the path string as an empty table.
        """
        text = str(source)
        if "\n" not in text:
            text = Path(text).read_text()
        reader = csv.DictReader(io.StringIO(text))
        rows = []
        for record in reader:
            for key in _FLOAT_FIELDS:
                if key in record and record[key] != "":
                    record[key] = float(record[key])
            if "seed" in record:
                record["seed"] = _parse_seed(record["seed"])
            rows.append(GridCell.from_dict(record))
        return cls(rows)

    # -- rendering ---------------------------------------------------------- #

    def to_markdown(self, *, title: str | None = None, columns=None) -> str:
        """GitHub-flavored markdown table for pasting into issues/PRs.

        Numbers use the same shortest-round-trip ``repr`` format as
        :meth:`to_csv`, so values copied out of a PR comment parse back
        exactly.  ``columns`` selects/orders the rendered columns; by
        default, columns that are empty on every row (``graph``/``seed``
        on single-session grids) are dropped.  Literal ``|`` characters in
        cell text (pipeline scheme specs) are escaped.
        """
        if columns is None:
            columns = [
                h
                for h in self.headers
                if any(_format_field(getattr(c, h)) != "" for c in self.rows)
            ] or list(self.headers)
        else:
            columns = list(columns)
            unknown = [c for c in columns if c not in self.headers]
            if unknown:
                raise ValueError(f"unknown columns {unknown}; known: {self.headers}")

        def md(value) -> str:
            return _format_field(value).replace("|", "\\|")

        lines = []
        if title:
            lines += [f"**{title}**", ""]
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join("---" for _ in columns) + "|")
        for cell in self.rows:
            lines.append(
                "| " + " | ".join(md(getattr(cell, h)) for h in columns) + " |"
            )
        return "\n".join(lines) + "\n"

    def to_table(self, *, title: str | None = None) -> str:
        """Paper-style fixed-width rendering (via the report module)."""
        from repro.analytics.report import format_table

        return format_table(
            [[getattr(c, h) for h in self.headers] for c in self.rows],
            list(self.headers),
            title=title,
        )


def _unique(items) -> list[str]:
    seen: dict[str, None] = {}
    for item in items:
        seen.setdefault(item)
    return list(seen)
