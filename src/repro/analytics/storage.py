"""Storage-reduction accounting (the paper's title claim).

The abstract's headline: distributed compression reduced the Web Data
Commons graph "by 30-70%".  This module measures exactly that quantity
for any compression result, in *bytes of the stored representation*
rather than raw edge counts, because schemes differ in overhead:

- edge-deleting schemes store fewer edges, but spectral/cut sparsifiers
  add an 8-byte weight per surviving edge (the 1/p reweighting);
- summarization stores superedges + corrections + the supervertex
  mapping instead of edges;
- vertex-removing schemes also shrink the offset arrays.

``storage_report`` returns both the byte sizes and the reduction
fraction, so the §7.3 claim can be asserted against the same accounting
the paper's storage numbers use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.base import CompressionResult
from repro.graphs.edgelist import storage_bytes

__all__ = ["StorageReport", "storage_report"]


@dataclass(frozen=True)
class StorageReport:
    """Bytes before/after compression, with scheme-specific overheads."""

    scheme: str
    original_bytes: int
    compressed_bytes: int

    @property
    def reduction(self) -> float:
        """Fraction of storage saved (the abstract's 30–70% number)."""
        if self.original_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_bytes / self.original_bytes

    @property
    def ratio(self) -> float:
        return 1.0 - self.reduction


def storage_report(result: CompressionResult) -> StorageReport:
    """Measure the stored-bytes reduction of a compression result.

    Summaries are charged their own encoding (mapping + superedges +
    corrections) rather than the decompressed graph; everything else is
    charged the CSR representation of the compressed graph, including
    any weights the scheme added.
    """
    original = storage_bytes(result.original)
    summary = result.extras.get("summary")
    if summary is not None:
        # int64 mapping + two int64 endpoints per stored pair.
        compressed = summary.mapping.nbytes + 16 * summary.storage_edges()
    else:
        compressed = storage_bytes(result.graph)
    return StorageReport(
        scheme=result.scheme,
        original_bytes=int(original),
        compressed_bytes=int(compressed),
    )
