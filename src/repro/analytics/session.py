"""The fluent evaluation session — the paper's §5–§6 workflow as one API.

The core Slim Graph loop is "pick a scheme → run an algorithm on original
vs. compressed → score with accuracy metrics".  :class:`Session` holds
everything that loop shares across schemes — the graph, the seed policy,
the execution backend, and most importantly a **baseline cache** so the
original-graph run of each algorithm is computed once per session no
matter how many schemes are scored against it::

    from repro import Session, pagerank

    session = Session(g, seed=0)
    scores = (
        session.compress("spanner(k=8)")
        .run(pagerank)
        .score(["kl"])
    )
    records, compressed = session.evaluate("EO-0.8-1-TR")   # battery reuses baselines
    table = session.grid(
        ["uniform(p=0.5)", "spanner(k=8)", "EO-0.8-1-TR"],
        ["pr", "cc", "tc", "sssp"],
    )

All three axes are declarative and registry-driven: ``compress`` accepts
anything the scheme registry can build (spec strings, TR labels, ``|``
pipelines, :class:`~repro.compress.spec.SchemeSpec` objects, configured
schemes); ``run``/``grid`` accept algorithm registry names and
:class:`~repro.algorithms.spec.AlgorithmSpec` strings
(``"pagerank(iterations=50)"``); metric names resolve through the metric
registry (:mod:`repro.metrics.registry`), with each algorithm's **result
adapter** selecting the compatible set and the §5 default.

When a scheme changes the vertex set (triangle collapse, relabeled
sampling), per-vertex outputs are aligned through the compression's
vertex mapping (:func:`repro.compress.mappings.vertex_alignment`) before
scoring, so KL / reordered-pair numbers compare each original vertex with
the compressed vertex that carries it instead of zero-padding the tail.

The legacy free functions (:func:`repro.analytics.evaluation.
evaluate_scheme`, :func:`repro.analytics.tradeoff.sweep`) are deprecated
shims over this class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.utils.timer import timed_call

from repro.obs.spans import enable_tracing, span as _span, tracer as _tracer

from repro.algorithms.adapters import get_adapter
from repro.algorithms.registry import BoundAlgorithm, build_algorithm
from repro.algorithms.spec import AlgorithmSpec as DeclarativeAlgorithmSpec
from repro.analytics.evaluation import (
    AlgorithmSpec,
    EvaluationRecord,
    default_algorithms,
)
from repro.analytics.grid import GridCell, SweepTable
from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.mappings import vertex_alignment
from repro.compress.registry import build_scheme, get_entry
from repro.graphs.analysis import analysis_cache, stats_delta
from repro.graphs.csr import CSRGraph
from repro.metrics.registry import (
    MetricContext,
    MetricEntry,
    compatible_names,
    resolve_metric,
)

__all__ = ["Session", "CompressedRun", "ScoreReport", "SweepRow", "SweepTable"]

_UNSET = object()

# Shared with the sweep runner through :mod:`repro.utils.timer`; kept
# under the historical local name for the call sites below.
_timed = timed_call


def _spec_label(scheme) -> str:
    """Spec string of a scheme; repr fallback for duck-typed objects."""
    if hasattr(scheme, "spec"):
        return scheme.spec().to_string()
    return repr(scheme)


class _Runner:
    """Uniform execution wrapper over the two algorithm surfaces.

    Normalizes a legacy executable :class:`AlgorithmSpec` (name, fn, kind)
    or a registry-bound :class:`BoundAlgorithm` into the one shape the
    session needs: a cache key, display labels, a callable, a result
    adapter, and the output canonicalizer.
    """

    __slots__ = ("key", "name", "label", "fn", "adapter", "extract", "execute", "root")

    def __init__(self, key, name, label, fn, adapter, extract, execute=True, root=None):
        self.key = key
        self.name = name
        self.label = label
        self.fn = fn
        self.adapter = adapter
        self.extract = extract
        self.execute = execute
        #: Traversal root override (``bfs(source=N)``); None = session root.
        self.root = root

    @classmethod
    def of_legacy(cls, spec: AlgorithmSpec) -> "_Runner":
        try:
            adapter = get_adapter(spec.kind)
        except ValueError:
            raise ValueError(f"unknown algorithm kind {spec.kind!r}") from None
        return cls(
            key=(spec.name, spec.kind),
            name=spec.name,
            label=spec.name,
            fn=spec.fn,
            adapter=adapter,
            extract=adapter.canonicalize,
            # The legacy "bfs" battery entry carries no real computation —
            # its metric runs its own paired traversals at score time.
            execute=spec.kind != "bfs",
        )

    @classmethod
    def of_bound(cls, bound: BoundAlgorithm) -> "_Runner":
        traversal = bound.adapter.name == "traversal"
        return cls(
            key=bound.spec,
            name=bound.spec.name,
            label=bound.spec.to_string(),
            fn=bound,
            adapter=bound.adapter,
            extract=bound.extract,
            # Traversal outputs are never read — the metric runs its own
            # paired traversals — so skip the redundant executions (and
            # the baseline cache entry) exactly as the legacy path does.
            execute=not traversal,
            root=bound.spec.params.get("source") if traversal else None,
        )


class ScoreReport(Mapping):
    """Scores as ``{algorithm: {metric: value}}`` with a flat shortcut.

    When exactly one algorithm was scored, ``report["kl_divergence"]``
    resolves directly; with several, index by algorithm first.  Metric
    aliases (``"kl"``, ``"critical_edges"``) resolve through the metric
    registry.
    """

    def __init__(self, scores: dict[str, dict[str, float]]):
        self._scores = scores

    def __getitem__(self, key: str):
        if key in self._scores:
            return self._scores[key]
        # Runs are keyed by full spec label ("sssp(source=0)"); a bare
        # algorithm name resolves when it is unambiguous.
        matches = [k for k in self._scores if k.split("(", 1)[0] == key]
        if len(matches) == 1:
            return self._scores[matches[0]]
        try:
            key = resolve_metric(key).name
        except ValueError:
            pass
        if len(self._scores) == 1:
            return next(iter(self._scores.values()))[key]
        raise KeyError(key)

    def __iter__(self):
        return iter(self._scores)

    def __len__(self) -> int:
        return len(self._scores)

    def __repr__(self) -> str:
        return f"ScoreReport({self._scores!r})"


class _AlgorithmRun:
    """One algorithm executed on (original, compressed)."""

    __slots__ = ("runner", "out0", "t0", "out1", "t1")

    def __init__(self, runner, out0, t0, out1, t1):
        self.runner = runner
        self.out0 = out0
        self.t0 = t0
        self.out1 = out1
        self.t1 = t1


class CompressedRun:
    """A compressed graph bound to its session; the fluent handle.

    ``seed`` records the compression seed this run was produced with (the
    session default unless :meth:`Session.compress` overrode it), so
    results derived from the run are auditable.
    """

    def __init__(
        self,
        session: "Session",
        scheme: CompressionScheme,
        result: CompressionResult,
        *,
        seed=None,
    ):
        self.session = session
        self.scheme = scheme
        self.result = result
        self.seed = seed
        self._runs: dict[str, _AlgorithmRun] = {}
        self._mapping = _UNSET

    # -- views ------------------------------------------------------------- #

    @property
    def graph(self) -> CSRGraph:
        return self.result.graph

    @property
    def compression_ratio(self) -> float:
        return self.result.compression_ratio

    @property
    def lineage(self):
        return self.result.lineage

    def __repr__(self) -> str:
        return f"CompressedRun({_spec_label(self.scheme)!r}, ratio={self.compression_ratio:.3f})"

    def alignment(self):
        """Original→compressed vertex map (None = identity), cached."""
        if self._mapping is _UNSET:
            self._mapping = vertex_alignment(self.result)
        return self._mapping

    def _context(self) -> MetricContext:
        return MetricContext(
            original=self.session.graph,
            compressed=self.graph,
            bfs_root=self.session.bfs_root,
        )

    def _metric_value(self, entry: MetricEntry, run: _AlgorithmRun, ctx: MetricContext) -> float:
        adapter = run.runner.adapter
        if adapter.name == "traversal":
            if run.runner.root is not None and run.runner.root != ctx.bfs_root:
                ctx = MetricContext(ctx.original, ctx.compressed, run.runner.root)
            return float(entry.fn(ctx, None, None))
        a = run.runner.extract(run.out0)
        b = run.runner.extract(run.out1)
        a, b = adapter.align(a, b, self.alignment())
        return float(entry.fn(ctx, a, b))

    # -- running algorithms ------------------------------------------------ #

    def run(self, algorithm, *more, kind: str | None = None, name: str | None = None) -> "CompressedRun":
        """Execute ``algorithm`` on the compressed graph (and, via the
        session's baseline cache, on the original).  Returns ``self``.

        ``algorithm`` may be a callable (``pagerank``), a registry name or
        spec string (``"pr"``, ``"pagerank(iterations=50)"``,
        ``"sssp(source=0)"``), an :class:`~repro.algorithms.spec.
        AlgorithmSpec`, a :class:`~repro.algorithms.registry.
        BoundAlgorithm`, or a legacy executable :class:`AlgorithmSpec`;
        extra positional algorithms queue in one call:
        ``.run(pagerank, "cc")``.
        """
        for alg in (algorithm, *more):
            runner = self.session._as_runner(alg, kind=kind, name=name)
            # Keyed by the full spec label so two parameterizations of one
            # algorithm ("sssp(source=0)", "sssp(source=5)") coexist.
            if not runner.execute:
                self._runs[runner.label] = _AlgorithmRun(runner, None, 0.0, None, 0.0)
                continue
            out0, t0 = self.session.baseline(runner)
            out1, t1 = _timed(runner.fn, self.graph)
            self._runs[runner.label] = _AlgorithmRun(runner, out0, t0, out1, t1)
        return self

    def outputs(self, algorithm_name: str):
        """(original_output, compressed_output) of a ``.run()`` algorithm.

        The original-graph output comes from the session's baseline cache;
        use this instead of re-running the algorithm for custom metrics.
        """
        run = self._runs.get(algorithm_name)
        if run is None:
            # Bare algorithm name: unambiguous label-prefix match.
            matches = [
                r for r in self._runs.values() if r.runner.name == algorithm_name
            ]
            if len(matches) == 1:
                run = matches[0]
            elif len(matches) > 1:
                raise ValueError(
                    f"algorithm {algorithm_name!r} is ambiguous; "
                    f"use a full label from: {sorted(self._runs)}"
                )
        if run is None:
            raise ValueError(
                f"algorithm {algorithm_name!r} has not been run; "
                f"known: {sorted(self._runs)}"
            )
        return run.out0, run.out1

    # -- scoring ----------------------------------------------------------- #

    def score(self, metrics: Sequence[str] | None = None) -> ScoreReport:
        """Score every run so far; terminal step of the fluent chain.

        ``metrics`` names resolve through the metric registry (``"kl"``,
        ``"reordered_pairs"``, ``"relative_change"``,
        ``"critical_edges"``, or their canonical long forms) and apply to
        every run; ``None`` picks each run's default metric from its
        result adapter (§5 routing).  A metric incompatible with a run's
        adapter is an error naming the compatible set.
        """
        if not self._runs:
            raise ValueError("no algorithms run yet; call .run(...) first")
        ctx = self._context()
        scores: dict[str, dict[str, float]] = {}
        for alg_name, run in self._runs.items():
            adapter = run.runner.adapter
            if metrics is None:
                chosen = [adapter.default_metric]
            else:
                chosen = list(metrics)
            out: dict[str, float] = {}
            for metric in chosen:
                entry = resolve_metric(metric)
                if adapter.name not in entry.adapters:
                    raise ValueError(
                        f"metric {metric!r} does not apply to {alg_name!r} "
                        f"({adapter.name} output); compatible: "
                        f"{', '.join(compatible_names(adapter.name))}"
                    )
                out[entry.name] = self._metric_value(entry, run, ctx)
            scores[alg_name] = out
        return ScoreReport(scores)

    # -- the §5 battery ---------------------------------------------------- #

    def evaluate(self, algorithms: list | None = None) -> list[EvaluationRecord]:
        """Run the metric battery; original runs come from the cache."""
        session = self.session
        runners = (
            [session._as_runner(alg) for alg in algorithms]
            if algorithms is not None
            else session._battery_runners()
        )
        ctx = self._context()
        records: list[EvaluationRecord] = []
        for runner in runners:
            metric = resolve_metric(runner.adapter.default_metric)
            run = None
            if not runner.execute:
                # Legacy battery BFS: the metric is the whole computation;
                # split its cost over the two graph columns.
                start = time.perf_counter()
                value = float(metric.fn(ctx, None, None))
                elapsed = time.perf_counter() - start
                records.append(
                    EvaluationRecord(
                        algorithm=runner.label,
                        kind=runner.adapter.legacy_kind,
                        metric_name=metric.name,
                        metric_value=value,
                        original_seconds=elapsed / 2,
                        compressed_seconds=elapsed / 2,
                    )
                )
                continue
            out0, t0 = session.baseline(runner)
            out1, t1 = _timed(runner.fn, self.graph)
            run = _AlgorithmRun(runner, out0, t0, out1, t1)
            records.append(
                EvaluationRecord(
                    algorithm=runner.label,
                    kind=runner.adapter.legacy_kind,
                    metric_name=metric.name,
                    metric_value=self._metric_value(metric, run, ctx),
                    original_seconds=t0,
                    compressed_seconds=t1,
                    original_value=out0,
                    compressed_value=out1,
                )
            )
        return records


@dataclass(frozen=True)
class SweepRow:
    """One tradeoff data point (a Fig. 5 cell).

    The historical :class:`repro.analytics.tradeoff.SweepRow` plus the
    generating ``scheme_spec``; re-exported from there for back
    compatibility.
    """

    parameter: float
    algorithm: str
    compression_ratio: float
    relative_runtime_difference: float
    metric_name: str
    metric_value: float
    scheme_spec: str = ""
    #: The compression seed this row's cell actually ran with (recorded,
    #: not just applied, so cached and fresh sweeps are auditable).
    seed: object = None


#: The paper's Fig. 5 / Table 5 battery expressed as registry names.
DEFAULT_GRID_ALGORITHMS = ("bfs", "pr", "cc", "tc")


class Session:
    """Shared state for evaluating many schemes against one graph.

    Parameters
    ----------
    graph:
        The original graph every scheme is applied to and compared against.
    seed:
        Default compression seed (overridable per :meth:`compress` call).
    backend, num_chunks:
        Execution backend for kernel-path compression
        (:meth:`compress` with ``via="kernels"``): ``"serial"`` or
        ``"chunked"``, selected here once for the whole session.
    bfs_root, pr_iterations:
        Session defaults injected into registry algorithms that omit them
        (``bfs``/``sssp`` without ``source``, ``pagerank`` without
        ``iterations``) and into the default §5 battery.
    store:
        A :class:`repro.runner.store.ArtifactStore` (or a path to create
        one at) making :meth:`grid`/:meth:`sweep` persistent: cells
        already in the store are replayed instead of recomputed, and
        fresh cells are written back.
    jobs:
        Worker-process count for :meth:`grid`/:meth:`sweep`; ``jobs > 1``
        fans grid cells out over a process pool
        (:mod:`repro.runner.parallel`).  ``None``/``0``/``1`` stay
        in-process.
    graph_load:
        How pooled workers obtain the graph: ``"shm"`` attaches read-only
        views over one shared-memory segment (zero copy), ``"npz"``
        re-loads the classic snapshot into private memory, ``"mmap"``
        memory-maps an exploded (v2) snapshot for out-of-core sweeps, and
        ``"auto"`` (default) tries shared memory and falls back to npz.
    trace:
        Turn on span tracing (:mod:`repro.obs.spans`) for this process.
        ``True`` enables the global tracer; a path additionally makes
        :meth:`write_trace` default to writing the Chrome trace-event
        export there.  Worker processes spawned by parallel grids record
        their own spans and the session stitches them under the
        scheduling span, so one export covers every process.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        seed=0,
        backend: str = "serial",
        num_chunks: int | None = None,
        bfs_root: int = 0,
        pr_iterations: int = 100,
        store=None,
        jobs: int | None = None,
        retry=None,
        trace=None,
        graph_load: str = "auto",
    ):
        self.graph = graph
        self.seed = seed
        self.backend = backend
        self.num_chunks = num_chunks
        self.bfs_root = bfs_root
        self.pr_iterations = pr_iterations
        if store is not None and not hasattr(store, "get_cells"):
            from repro.runner.store import ArtifactStore

            store = ArtifactStore(store)
        self.store = store
        self.jobs = jobs
        from repro.runner.parallel import GRAPH_LOAD_MODES

        if graph_load not in GRAPH_LOAD_MODES:
            raise ValueError(
                f"graph_load must be one of {GRAPH_LOAD_MODES}, got {graph_load!r}"
            )
        self.graph_load = graph_load
        #: Retry/backoff/timeout policy for grid execution — a
        #: :class:`repro.runner.parallel.RetryPolicy`, a dict of its
        #: fields, or None for the defaults (3 attempts, capped
        #: exponential backoff, no per-task timeout).
        if retry is not None:
            from repro.runner.parallel import RetryPolicy

            retry = RetryPolicy.of(retry)
        self.retry = retry
        #: Default export path for :meth:`write_trace` (None = must be
        #: passed explicitly).  Tracing itself is process-global.
        self.trace_path = None
        if trace:
            enable_tracing()
            if not isinstance(trace, bool):
                self.trace_path = trace
        #: Execution statistics of the most recent :meth:`grid` call
        #: ({} until one runs): cache_hits/cache_misses, compress_seconds,
        #: wall_seconds, jobs, and the structural-analysis cache activity
        #: (``analysis_cache``: hits/misses + per-analysis detail).
        self.last_grid_perf: dict = {}
        self._battery: list[AlgorithmSpec] | None = None
        self._battery_runner_cache: list[_Runner] | None = None
        self._baselines: dict = {}
        #: Number of original-graph algorithm executions (cache misses);
        #: the baseline-reuse guarantee is observable through this counter.
        self.baseline_computations = 0

    def __repr__(self) -> str:
        return (
            f"Session(graph={self.graph!r}, seed={self.seed!r}, "
            f"backend={self.backend!r}, cached_baselines={len(self._baselines)})"
        )

    def write_trace(self, path=None, metadata: dict | None = None):
        """Export the global tracer as Chrome trace-event JSON.

        ``path`` defaults to the path passed as ``Session(trace=…)``.
        Load the file in ``chrome://tracing`` or https://ui.perfetto.dev;
        ``python -m repro.obs validate/tree`` checks and pretty-prints it.
        """
        target = self.trace_path if path is None else path
        if target is None:
            raise ValueError(
                "no trace path: pass one or construct Session(trace=path)"
            )
        return _tracer().write_chrome_trace(target, metadata)

    # -- algorithm resolution ---------------------------------------------- #

    def _bind(self, spec_like) -> BoundAlgorithm:
        """Build a registry algorithm, injecting session defaults."""
        bound = build_algorithm(spec_like)
        overrides = {}
        if bound.entry.name == "pagerank" and "max_iterations" not in bound.spec.params:
            overrides["max_iterations"] = self.pr_iterations
        if bound.entry.positional == "source" and "source" not in bound.spec.params:
            overrides["source"] = self.bfs_root
        return build_algorithm(bound, **overrides) if overrides else bound

    def _as_runner(self, algorithm, *, kind: str | None = None, name: str | None = None) -> _Runner:
        if isinstance(algorithm, _Runner):
            return algorithm
        if isinstance(algorithm, AlgorithmSpec):
            return _Runner.of_legacy(algorithm)
        if isinstance(algorithm, BoundAlgorithm):
            return _Runner.of_bound(algorithm)
        if isinstance(algorithm, DeclarativeAlgorithmSpec):
            return _Runner.of_bound(self._bind(algorithm))
        if isinstance(algorithm, str):
            for runner in self._battery_runners():
                if runner.label == algorithm:
                    return runner
            try:
                return _Runner.of_bound(self._bind(algorithm))
            except ValueError as err:
                raise ValueError(
                    f"unknown algorithm {algorithm!r}: {err}"
                ) from None
        if callable(algorithm):
            return _Runner.of_legacy(
                AlgorithmSpec(
                    name or getattr(algorithm, "__name__", "algorithm"),
                    algorithm,
                    kind or "distribution",
                )
            )
        raise TypeError(f"cannot interpret algorithm {algorithm!r}")

    # -- baseline cache ---------------------------------------------------- #

    def default_battery(self) -> list[AlgorithmSpec]:
        """The §5 battery as legacy executable specs (back-compat shim;
        internally the session uses :meth:`_battery_runners`, which binds
        the same algorithms through the registry)."""
        if self._battery is None:
            self._battery = default_algorithms(
                bfs_root=self.bfs_root, pr_iterations=self.pr_iterations
            )
        return self._battery

    def _battery_runners(self) -> list[_Runner]:
        """The §5 battery bound through the registry, under the paper's
        short labels.

        Because each runner's cache key is its canonical bound spec, a
        battery entry and the equivalent registry spelling (``"pr"`` vs
        ``"pagerank"``) share one baseline cache slot and deduplicate in
        grids.
        """
        if self._battery_runner_cache is None:
            runners = []
            for short in ("bfs", "pr", "cc", "tc", "tc_per_vertex"):
                runner = _Runner.of_bound(self._bind(short))
                runner.name = short
                runner.label = short
                runners.append(runner)
            self._battery_runner_cache = runners
        return self._battery_runner_cache

    def baseline(self, spec):
        """(output, seconds) of an algorithm on the original graph, cached.

        ``spec`` may be a legacy :class:`AlgorithmSpec` (keyed by
        ``(name, kind)``), a :class:`BoundAlgorithm` / spec string (keyed
        by its canonical declarative spec), or an internal runner.
        """
        runner = self._as_runner(spec)
        cached = self._baselines.get(runner.key)
        if cached is None:
            self.baseline_computations += 1
            with _span("baseline", algorithm=runner.label):
                cached = _timed(runner.fn, self.graph)
            self._baselines[runner.key] = cached
        return cached

    # -- compression ------------------------------------------------------- #

    def compress(self, scheme, *, seed=_UNSET, via: str = "fast") -> CompressedRun:
        """Compress the session graph; returns the fluent handle.

        ``scheme`` is anything :func:`repro.compress.registry.build_scheme`
        accepts.  ``via="kernels"`` executes the scheme's compression-kernel
        program on the session's backend instead of the vectorized path.
        """
        scheme = build_scheme(scheme)
        seed = self.seed if seed is _UNSET else seed
        with _span("compress", scheme=_spec_label(scheme), seed=seed, via=via) as sp:
            if via == "fast":
                result = scheme.compress(self.graph, seed=seed)
            elif via == "kernels":
                result = scheme.compress_via_kernels(
                    self.graph,
                    seed=seed,
                    backend=self.backend,
                    num_chunks=self.num_chunks,
                )
            else:
                raise ValueError(f"via must be 'fast' or 'kernels', got {via!r}")
            sp.set(compression_ratio=result.compression_ratio)
        return CompressedRun(self, scheme, result, seed=seed)

    # -- battery + sweeps -------------------------------------------------- #

    def evaluate(
        self,
        scheme,
        algorithms: list | None = None,
        *,
        seed=_UNSET,
        via: str = "fast",
    ) -> tuple[list[EvaluationRecord], CSRGraph]:
        """Compress and run the metric battery; (records, compressed)."""
        run = self.compress(scheme, seed=seed, via=via)
        return run.evaluate(algorithms), run.graph

    def grid(
        self,
        schemes: Iterable,
        algorithms: Iterable | None = None,
        metrics: Sequence[str] | None = None,
        *,
        seed=_UNSET,
        via: str = "fast",
    ) -> SweepTable:
        """Evaluate the full scheme × algorithm × metric grid.

        Every scheme is compressed once, every algorithm's original-graph
        baseline is computed once for the whole grid (the session cache),
        and every (scheme, algorithm) execution is scored with each
        selected metric — one tidy long-format row per triple.

        Parameters
        ----------
        schemes:
            Scheme spec surfaces (strings, TR labels, ``|`` pipelines,
            :class:`~repro.compress.spec.SchemeSpec`, configured schemes);
            duplicates (by scheme equality) are evaluated once.
        algorithms:
            Algorithm surfaces (registry names/aliases, spec strings,
            :class:`~repro.algorithms.spec.AlgorithmSpec`,
            :class:`~repro.algorithms.registry.BoundAlgorithm`, legacy
            executable specs); duplicates are executed once.  ``None``
            runs the paper battery ``("bfs", "pr", "cc", "tc")``.
        metrics:
            Metric names applied to every algorithm they are compatible
            with (by result adapter); ``None`` scores each algorithm with
            its adapter's §5 default.  A requested metric compatible with
            no algorithm in the grid is an error.

        Returns
        -------
        SweepTable
            Long-format rows; ``.to_csv()`` / ``.to_dict()`` round-trip.
        """
        built, runners, plans = self._grid_plan(schemes, algorithms, metrics)
        seed = self.seed if seed is _UNSET else seed

        if self.store is not None or (self.jobs or 1) > 1:
            if via != "fast":
                raise ValueError(
                    "store-backed / parallel grids support via='fast' only"
                )
            from repro.runner.parallel import run_grid

            with _span(
                "grid",
                schemes=len(built),
                algorithms=len(runners),
                jobs=self.jobs or 1,
                seed=seed,
            ):
                cells, perf = run_grid(self, built, runners, plans, seed=seed)
            self.last_grid_perf = perf
            return SweepTable(cells)

        from repro.utils.timer import stopwatch

        cells: list[GridCell] = []
        groups = 0
        compress_seconds = 0.0
        analysis_before = analysis_cache().stats()
        with stopwatch() as wall, _span(
            "grid", schemes=len(built), algorithms=len(runners), jobs=1, seed=seed
        ):
            for scheme in built:
                run, elapsed = _timed(self.compress, scheme, seed=seed, via=via)
                compress_seconds += elapsed
                for runner, plan in zip(runners, plans):
                    if plan:
                        groups += 1
                    cells.extend(self._score_cells(run, runner, plan, seed=seed))
        self.last_grid_perf = {
            "jobs": 1,
            "cells_scheduled": groups,
            "cache_hits": 0,
            "cache_misses": groups,
            "compress_seconds": compress_seconds,
            "wall_seconds": wall.seconds,
            # Structural-analysis reuse during this grid (triangle lists
            # etc.): see repro.graphs.analysis.
            "analysis_cache": stats_delta(analysis_before, analysis_cache().stats()),
        }
        return SweepTable(cells)

    def _grid_plan(self, schemes, algorithms, metrics):
        """Resolve and deduplicate the three grid axes.

        Returns ``(built_schemes, runners, plans)`` where ``plans[i]`` is
        the (possibly empty) metric list for ``runners[i]``; shared by the
        in-memory loop above and the store/parallel executor in
        :mod:`repro.runner.parallel` so both paths evaluate the identical
        cell set.
        """
        built: list[CompressionScheme] = []
        for s in schemes:
            scheme = build_scheme(s)
            if scheme not in built:
                built.append(scheme)
        if not built:
            raise ValueError("grid needs at least one scheme")

        runners: list[_Runner] = []
        seen_keys: set = set()
        for alg in algorithms if algorithms is not None else DEFAULT_GRID_ALGORITHMS:
            runner = self._as_runner(alg)
            if runner.key in seen_keys:
                continue
            seen_keys.add(runner.key)
            runners.append(runner)
        if not runners:
            raise ValueError("grid needs at least one algorithm")

        requested = None
        if metrics is not None:
            # Dedupe by canonical entry ("kl" and "kl_divergence" are one
            # metric), keeping first-occurrence order for the cell rows.
            requested = []
            for m in metrics:
                entry = resolve_metric(m)
                if entry not in requested:
                    requested.append(entry)
        plans: list[list[MetricEntry]] = []
        for runner in runners:
            if requested is None:
                plans.append([resolve_metric(runner.adapter.default_metric)])
            else:
                plans.append(
                    [e for e in requested if runner.adapter.name in e.adapters]
                )
        if requested is not None:
            unmatched = [
                e.name
                for e in requested
                if not any(e in plan for plan in plans)
            ]
            if unmatched:
                raise ValueError(
                    f"metrics {unmatched} apply to no algorithm in this grid"
                )
        return built, runners, plans

    def score_cells(
        self, run: CompressedRun, algorithm, metrics: Sequence[str] | None = None
    ) -> list[GridCell]:
        """Score one algorithm on an existing compressed run as grid cells.

        The unit of work behind :meth:`grid` — one compressed graph, one
        algorithm (any :meth:`run` surface), one cell per metric
        (``None`` = the adapter's §5 default).  Baselines come from the
        session cache; the runner workers execute exactly this method, so
        parallel/store-backed grids are cell-for-cell identical to
        in-memory ones.
        """
        runner = self._as_runner(algorithm)
        if metrics is None:
            plan = [resolve_metric(runner.adapter.default_metric)]
        else:
            plan = [resolve_metric(m) for m in metrics]
            for entry in plan:
                if runner.adapter.name not in entry.adapters:
                    raise ValueError(
                        f"metric {entry.name!r} does not apply to "
                        f"{runner.label!r} ({runner.adapter.name} output); "
                        f"compatible: "
                        f"{', '.join(compatible_names(runner.adapter.name))}"
                    )
        return self._score_cells(run, runner, plan, seed=run.seed)

    def _score_cells(
        self, run: CompressedRun, runner: _Runner, plan, *, seed=None
    ) -> list[GridCell]:
        """One grid row group: execute ``runner`` on ``run``, score ``plan``."""
        if not plan:
            return []
        ctx = run._context()
        scheme_label = _spec_label(run.scheme)
        with _span("algorithm", algorithm=runner.label, scheme=scheme_label) as sp:
            if runner.execute:
                out0, t0 = self.baseline(runner)
                out1, t1 = _timed(runner.fn, run.graph)
            else:
                out0 = out1 = None
                t0 = t1 = 0.0
            arun = _AlgorithmRun(runner, out0, t0, out1, t1)
            cells = [
                GridCell(
                    scheme=scheme_label,
                    algorithm=runner.label,
                    metric=entry.name,
                    value=run._metric_value(entry, arun, ctx),
                    compression_ratio=run.compression_ratio,
                    original_seconds=t0,
                    compressed_seconds=t1,
                    adapter=runner.adapter.name,
                    seed=seed,
                )
                for entry in plan
            ]
            sp.inc("cells", len(cells))
        return cells

    def sweep(
        self,
        schemes: Iterable,
        *,
        parameters: Sequence | None = None,
        algorithms: list | None = None,
        seed=_UNSET,
        repeats: int = 1,
    ) -> list[SweepRow]:
        """Run the battery for every scheme in ``schemes``.

        ``schemes`` may mix spec strings, :class:`SchemeSpec` objects, and
        configured schemes; duplicates (by scheme equality) are evaluated
        once.  ``parameters`` labels the rows; when omitted, each scheme's
        registered positional parameter is used (falling back to the list
        index).  ``repeats`` keeps the best (minimum) compressed timing
        per cell, damping scheduler noise.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        built = [build_scheme(s) for s in schemes]
        if parameters is not None:
            parameters = list(parameters)
            if len(parameters) != len(built):
                raise ValueError("parameters must align with schemes")
        else:
            parameters = [
                self._default_parameter(scheme, index)
                for index, scheme in enumerate(built)
            ]
        base_seed = self.seed if seed is _UNSET else seed
        if self.store is not None or (self.jobs or 1) > 1:
            return self._sweep_via_grid(
                built, parameters, algorithms, base_seed, repeats
            )
        rows: list[SweepRow] = []
        # Cache evaluation outcomes per scheme (params-driven eq/hash), so
        # duplicate schemes are executed once but every (scheme, parameter)
        # pair still gets its own correctly-labeled rows.
        seen: dict[CompressionScheme, tuple[float, list]] = {}
        for scheme, parameter in zip(built, parameters):
            cached = seen.get(scheme)
            if cached is None:
                best: dict[str, tuple[EvaluationRecord, object]] = {}
                ratio = 1.0
                for r in range(repeats):
                    cell_seed = base_seed + r if isinstance(base_seed, int) else base_seed
                    records, compressed = self.evaluate(
                        scheme, algorithms, seed=cell_seed
                    )
                    ratio = (
                        compressed.num_edges / self.graph.num_edges
                        if self.graph.num_edges
                        else 1.0
                    )
                    for rec in records:
                        prev = best.get(rec.algorithm)
                        if prev is None or rec.compressed_seconds < prev[0].compressed_seconds:
                            best[rec.algorithm] = (rec, cell_seed)
                cached = (ratio, list(best.values()))
                seen[scheme] = cached
            ratio, best_records = cached
            rows.extend(
                SweepRow(
                    parameter=parameter,
                    algorithm=rec.algorithm,
                    compression_ratio=ratio,
                    relative_runtime_difference=rec.relative_runtime_difference,
                    metric_name=rec.metric_name,
                    metric_value=rec.metric_value,
                    scheme_spec=_spec_label(scheme),
                    seed=rec_seed,
                )
                for rec, rec_seed in best_records
            )
        return rows

    #: The §5 battery as the sweep's registry spellings (the grid default
    #: plus the per-vertex triangle vector the battery also scores).
    _SWEEP_BATTERY = ("bfs", "pr", "cc", "tc", "tc_per_vertex")

    def _sweep_via_grid(
        self, built, parameters, algorithms, base_seed, repeats: int
    ) -> list[SweepRow]:
        """Store/parallel-backed :meth:`sweep`: battery rows via the runner.

        Each repeat is one runner-backed grid over the (deduplicated)
        schemes; per (scheme, algorithm) the best-timed repeat wins,
        mirroring the in-memory path.  Rows carry the seed of the winning
        repeat, so a warm store replays them byte-identically.
        """
        unique: list[CompressionScheme] = []
        for scheme in built:
            if scheme not in unique:
                unique.append(scheme)
        surfaces = (
            list(algorithms) if algorithms is not None else list(self._SWEEP_BATTERY)
        )
        by_label = {_spec_label(s): s for s in unique}
        best: dict[CompressionScheme, dict[str, GridCell]] = {s: {} for s in unique}
        ratios: dict[CompressionScheme, float] = {}
        for r in range(repeats):
            cell_seed = base_seed + r if isinstance(base_seed, int) else base_seed
            for cell in self.grid(unique, surfaces, seed=cell_seed):
                scheme = by_label[cell.scheme]
                prev = best[scheme].get(cell.algorithm)
                if prev is None or cell.compressed_seconds < prev.compressed_seconds:
                    best[scheme][cell.algorithm] = cell
                ratios[scheme] = cell.compression_ratio
        rows: list[SweepRow] = []
        for scheme, parameter in zip(built, parameters):
            rows.extend(
                SweepRow(
                    parameter=parameter,
                    algorithm=cell.algorithm,
                    compression_ratio=ratios[scheme],
                    relative_runtime_difference=cell.relative_runtime_difference,
                    metric_name=cell.metric,
                    metric_value=cell.value,
                    scheme_spec=_spec_label(scheme),
                    seed=cell.seed,
                )
                for cell in best[scheme].values()
            )
        return rows

    @staticmethod
    def _default_parameter(scheme, index: int):
        name = getattr(scheme, "name", None)
        if not isinstance(name, str):
            return float(index)
        try:
            entry = get_entry(name)
        except ValueError:
            return float(index)
        if entry.positional:
            value = scheme.params().get(entry.positional)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return value
        return float(index)
