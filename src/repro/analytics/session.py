"""The fluent evaluation session — the paper's §5–§6 workflow as one API.

The core Slim Graph loop is "pick a scheme → run an algorithm on original
vs. compressed → score with accuracy metrics".  :class:`Session` holds
everything that loop shares across schemes — the graph, the seed policy,
the execution backend, and most importantly a **baseline cache** so the
original-graph run of each algorithm is computed once per session no
matter how many schemes are scored against it::

    from repro import Session, pagerank

    session = Session(g, seed=0)
    scores = (
        session.compress("spanner(k=8)")
        .run(pagerank)
        .score(["kl"])
    )
    records, compressed = session.evaluate("EO-0.8-1-TR")   # battery reuses baselines
    rows = session.sweep(["uniform(p=0.2)", "uniform(p=0.5)", "uniform(p=0.9)"])

``Session.compress`` accepts anything the registry can build — spec
strings (including TR labels and ``|`` pipelines), :class:`SchemeSpec`
objects, or configured schemes — and returns a :class:`CompressedRun`
whose ``run``/``score``/``evaluate`` methods chain fluently.

The legacy free functions (:func:`repro.analytics.evaluation.
evaluate_scheme`, :func:`repro.analytics.tradeoff.sweep`) are deprecated
shims over this class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.analytics.evaluation import (
    AlgorithmSpec,
    EvaluationRecord,
    _pad,
    default_algorithms,
)
from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.registry import build_scheme, get_entry
from repro.graphs.csr import CSRGraph
from repro.metrics.bfs_quality import critical_edge_preservation
from repro.metrics.divergences import kl_divergence
from repro.metrics.ordering import reordered_neighbor_pairs
from repro.metrics.scalars import relative_change

__all__ = ["Session", "CompressedRun", "ScoreReport", "SweepRow"]

_UNSET = object()


def _timed(fn, g):
    start = time.perf_counter()
    out = fn(g)
    return out, time.perf_counter() - start


def _spec_label(scheme) -> str:
    """Spec string of a scheme; repr fallback for duck-typed objects."""
    if hasattr(scheme, "spec"):
        return scheme.spec().to_string()
    return repr(scheme)


def _as_distribution(value) -> np.ndarray:
    """Coerce an algorithm output to a 1-D float array (``.ranks`` aware)."""
    if hasattr(value, "ranks"):
        value = value.ranks
    return np.asarray(value, dtype=float)


# Canonical metric name -> implementation.  Each takes the session graph
# pair plus the algorithm outputs on (original, compressed).
def _metric_kl(session, run, out0, out1) -> float:
    a = _as_distribution(out0)
    b = _pad(_as_distribution(out1), len(a))
    return float(kl_divergence(a, b))


def _metric_reordered_pairs(session, run, out0, out1) -> float:
    a = np.asarray(_as_distribution(out0), dtype=float)
    b = _pad(np.asarray(_as_distribution(out1), dtype=float), len(a))
    return float(reordered_neighbor_pairs(session.graph, a, b))


def _metric_relative_change(session, run, out0, out1) -> float:
    return float(relative_change(float(out0), float(out1)))


def _metric_critical_edges(session, run, out0, out1) -> float:
    return float(
        critical_edge_preservation(session.graph, run.graph, session.bfs_root)
    )


_METRICS: dict[str, Callable] = {
    "kl_divergence": _metric_kl,
    "reordered_neighbor_pairs": _metric_reordered_pairs,
    "relative_change": _metric_relative_change,
    "critical_edge_preservation": _metric_critical_edges,
}

_METRIC_ALIASES = {
    "kl": "kl_divergence",
    "kl_divergence": "kl_divergence",
    "reordered_pairs": "reordered_neighbor_pairs",
    "reordered_neighbor_pairs": "reordered_neighbor_pairs",
    "relative_change": "relative_change",
    "rel_change": "relative_change",
    "critical_edges": "critical_edge_preservation",
    "critical_edge_preservation": "critical_edge_preservation",
}

# kind -> default metric, mirroring the §5 routing of evaluate_scheme.
_DEFAULT_METRIC_BY_KIND = {
    "scalar": "relative_change",
    "distribution": "kl_divergence",
    "vector": "reordered_neighbor_pairs",
    "bfs": "critical_edge_preservation",
}


def _resolve_metric(name: str) -> tuple[str, Callable]:
    key = _METRIC_ALIASES.get(name.lower())
    if key is None:
        raise ValueError(
            f"unknown metric {name!r}; known: {sorted(set(_METRIC_ALIASES))}"
        )
    return key, _METRICS[key]


class ScoreReport(Mapping):
    """Scores as ``{algorithm: {metric: value}}`` with a flat shortcut.

    When exactly one algorithm was scored, ``report["kl_divergence"]``
    resolves directly; with several, index by algorithm first.
    """

    def __init__(self, scores: dict[str, dict[str, float]]):
        self._scores = scores

    def __getitem__(self, key: str):
        if key in self._scores:
            return self._scores[key]
        key = _METRIC_ALIASES.get(key, key)
        if len(self._scores) == 1:
            return next(iter(self._scores.values()))[key]
        raise KeyError(key)

    def __iter__(self):
        return iter(self._scores)

    def __len__(self) -> int:
        return len(self._scores)

    def __repr__(self) -> str:
        return f"ScoreReport({self._scores!r})"


class _AlgorithmRun:
    """One algorithm executed on (original, compressed)."""

    __slots__ = ("spec", "out0", "t0", "out1", "t1")

    def __init__(self, spec, out0, t0, out1, t1):
        self.spec = spec
        self.out0 = out0
        self.t0 = t0
        self.out1 = out1
        self.t1 = t1


class CompressedRun:
    """A compressed graph bound to its session; the fluent handle."""

    def __init__(self, session: "Session", scheme: CompressionScheme, result: CompressionResult):
        self.session = session
        self.scheme = scheme
        self.result = result
        self._runs: dict[str, _AlgorithmRun] = {}

    # -- views ------------------------------------------------------------- #

    @property
    def graph(self) -> CSRGraph:
        return self.result.graph

    @property
    def compression_ratio(self) -> float:
        return self.result.compression_ratio

    @property
    def lineage(self):
        return self.result.lineage

    def __repr__(self) -> str:
        return f"CompressedRun({_spec_label(self.scheme)!r}, ratio={self.compression_ratio:.3f})"

    # -- running algorithms ------------------------------------------------ #

    def _as_algorithm_spec(self, algorithm, kind, name) -> AlgorithmSpec:
        if isinstance(algorithm, AlgorithmSpec):
            return algorithm
        if isinstance(algorithm, str):
            battery = {s.name: s for s in self.session.default_battery()}
            if algorithm not in battery:
                raise ValueError(
                    f"unknown algorithm {algorithm!r}; known: {sorted(battery)}"
                )
            return battery[algorithm]
        if callable(algorithm):
            return AlgorithmSpec(
                name or getattr(algorithm, "__name__", "algorithm"),
                algorithm,
                kind or "distribution",
            )
        raise TypeError(f"cannot interpret algorithm {algorithm!r}")

    def run(self, algorithm, *more, kind: str | None = None, name: str | None = None) -> "CompressedRun":
        """Execute ``algorithm`` on the compressed graph (and, via the
        session's baseline cache, on the original).  Returns ``self``.

        ``algorithm`` may be a callable (``pagerank``), a battery name
        (``"pr"``, ``"cc"``, ``"tc"``, ``"tc_per_vertex"``, ``"bfs"``), or
        an :class:`AlgorithmSpec`; extra positional algorithms queue in
        one call: ``.run(pagerank, "cc")``.
        """
        for alg in (algorithm, *more):
            spec = self._as_algorithm_spec(alg, kind, name)
            if spec.kind == "bfs":
                # The BFS metric runs its own paired traversal lazily at
                # score time; nothing to execute here.
                self._runs[spec.name] = _AlgorithmRun(spec, None, 0.0, None, 0.0)
                continue
            out0, t0 = self.session.baseline(spec)
            out1, t1 = _timed(spec.fn, self.graph)
            self._runs[spec.name] = _AlgorithmRun(spec, out0, t0, out1, t1)
        return self

    def outputs(self, algorithm_name: str):
        """(original_output, compressed_output) of a ``.run()`` algorithm.

        The original-graph output comes from the session's baseline cache;
        use this instead of re-running the algorithm for custom metrics.
        """
        run = self._runs.get(algorithm_name)
        if run is None:
            raise ValueError(
                f"algorithm {algorithm_name!r} has not been run; "
                f"known: {sorted(self._runs)}"
            )
        return run.out0, run.out1

    # -- scoring ----------------------------------------------------------- #

    def score(self, metrics: Sequence[str] | None = None) -> ScoreReport:
        """Score every run so far; terminal step of the fluent chain.

        ``metrics`` names (``"kl"``, ``"reordered_pairs"``,
        ``"relative_change"``, ``"critical_edges"``, or their canonical
        long forms) apply to every run; ``None`` picks each run's default
        metric from its algorithm kind (§5 routing).
        """
        if not self._runs:
            raise ValueError("no algorithms run yet; call .run(...) first")
        scores: dict[str, dict[str, float]] = {}
        for alg_name, run in self._runs.items():
            if metrics is None:
                chosen = [_DEFAULT_METRIC_BY_KIND[run.spec.kind]]
            else:
                chosen = list(metrics)
            out: dict[str, float] = {}
            for metric in chosen:
                key, fn = _resolve_metric(metric)
                if run.spec.kind == "bfs" and key != "critical_edge_preservation":
                    raise ValueError(
                        f"bfs runs produce no algorithm output; only "
                        f"'critical_edges' can score {alg_name!r}, not {metric!r}"
                    )
                out[key] = fn(self.session, self, run.out0, run.out1)
            scores[alg_name] = out
        return ScoreReport(scores)

    # -- the §5 battery ---------------------------------------------------- #

    def evaluate(self, algorithms: list[AlgorithmSpec] | None = None) -> list[EvaluationRecord]:
        """Run the metric battery; original runs come from the cache."""
        session = self.session
        algorithms = (
            algorithms if algorithms is not None else session.default_battery()
        )
        records: list[EvaluationRecord] = []
        for spec in algorithms:
            if spec.kind == "bfs":
                start = time.perf_counter()
                value = critical_edge_preservation(
                    session.graph, self.graph, session.bfs_root
                )
                elapsed = time.perf_counter() - start
                records.append(
                    EvaluationRecord(
                        algorithm=spec.name,
                        kind=spec.kind,
                        metric_name="critical_edge_preservation",
                        metric_value=float(value),
                        original_seconds=elapsed / 2,
                        compressed_seconds=elapsed / 2,
                    )
                )
                continue
            metric_name = _DEFAULT_METRIC_BY_KIND.get(spec.kind)
            if metric_name is None:
                raise ValueError(f"unknown algorithm kind {spec.kind!r}")
            out0, t0 = session.baseline(spec)
            out1, t1 = _timed(spec.fn, self.graph)
            metric_value = _METRICS[metric_name](session, self, out0, out1)
            records.append(
                EvaluationRecord(
                    algorithm=spec.name,
                    kind=spec.kind,
                    metric_name=metric_name,
                    metric_value=float(metric_value),
                    original_seconds=t0,
                    compressed_seconds=t1,
                    original_value=out0,
                    compressed_value=out1,
                )
            )
        return records


@dataclass(frozen=True)
class SweepRow:
    """One tradeoff data point (a Fig. 5 cell).

    The historical :class:`repro.analytics.tradeoff.SweepRow` plus the
    generating ``scheme_spec``; re-exported from there for back
    compatibility.
    """

    parameter: float
    algorithm: str
    compression_ratio: float
    relative_runtime_difference: float
    metric_name: str
    metric_value: float
    scheme_spec: str = ""


class Session:
    """Shared state for evaluating many schemes against one graph.

    Parameters
    ----------
    graph:
        The original graph every scheme is applied to and compared against.
    seed:
        Default compression seed (overridable per :meth:`compress` call).
    backend, num_chunks:
        Execution backend for kernel-path compression
        (:meth:`compress` with ``via="kernels"``): ``"serial"`` or
        ``"chunked"``, selected here once for the whole session.
    bfs_root, pr_iterations:
        Parameters of the default §5 algorithm battery.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        seed=0,
        backend: str = "serial",
        num_chunks: int | None = None,
        bfs_root: int = 0,
        pr_iterations: int = 100,
    ):
        self.graph = graph
        self.seed = seed
        self.backend = backend
        self.num_chunks = num_chunks
        self.bfs_root = bfs_root
        self.pr_iterations = pr_iterations
        self._battery: list[AlgorithmSpec] | None = None
        self._baselines: dict = {}
        #: Number of original-graph algorithm executions (cache misses);
        #: the baseline-reuse guarantee is observable through this counter.
        self.baseline_computations = 0

    def __repr__(self) -> str:
        return (
            f"Session(graph={self.graph!r}, seed={self.seed!r}, "
            f"backend={self.backend!r}, cached_baselines={len(self._baselines)})"
        )

    # -- baseline cache ---------------------------------------------------- #

    def default_battery(self) -> list[AlgorithmSpec]:
        """The §5 battery, created once so its specs key the cache."""
        if self._battery is None:
            self._battery = default_algorithms(
                bfs_root=self.bfs_root, pr_iterations=self.pr_iterations
            )
        return self._battery

    def baseline(self, spec: AlgorithmSpec):
        """(output, seconds) of ``spec`` on the original graph, cached.

        Algorithms are identified by ``(name, kind)`` within a session:
        register distinct names for distinct computations.
        """
        key = (spec.name, spec.kind)
        cached = self._baselines.get(key)
        if cached is None:
            self.baseline_computations += 1
            cached = _timed(spec.fn, self.graph)
            self._baselines[key] = cached
        return cached

    # -- compression ------------------------------------------------------- #

    def compress(self, scheme, *, seed=_UNSET, via: str = "fast") -> CompressedRun:
        """Compress the session graph; returns the fluent handle.

        ``scheme`` is anything :func:`repro.compress.registry.build_scheme`
        accepts.  ``via="kernels"`` executes the scheme's compression-kernel
        program on the session's backend instead of the vectorized path.
        """
        scheme = build_scheme(scheme)
        seed = self.seed if seed is _UNSET else seed
        if via == "fast":
            result = scheme.compress(self.graph, seed=seed)
        elif via == "kernels":
            result = scheme.compress_via_kernels(
                self.graph,
                seed=seed,
                backend=self.backend,
                num_chunks=self.num_chunks,
            )
        else:
            raise ValueError(f"via must be 'fast' or 'kernels', got {via!r}")
        return CompressedRun(self, scheme, result)

    # -- battery + sweeps -------------------------------------------------- #

    def evaluate(
        self,
        scheme,
        algorithms: list[AlgorithmSpec] | None = None,
        *,
        seed=_UNSET,
        via: str = "fast",
    ) -> tuple[list[EvaluationRecord], CSRGraph]:
        """Compress and run the metric battery; (records, compressed)."""
        run = self.compress(scheme, seed=seed, via=via)
        return run.evaluate(algorithms), run.graph

    def sweep(
        self,
        schemes: Iterable,
        *,
        parameters: Sequence | None = None,
        algorithms: list[AlgorithmSpec] | None = None,
        seed=_UNSET,
        repeats: int = 1,
    ) -> list[SweepRow]:
        """Run the battery for every scheme in ``schemes``.

        ``schemes`` may mix spec strings, :class:`SchemeSpec` objects, and
        configured schemes; duplicates (by scheme equality) are evaluated
        once.  ``parameters`` labels the rows; when omitted, each scheme's
        registered positional parameter is used (falling back to the list
        index).  ``repeats`` keeps the best (minimum) compressed timing
        per cell, damping scheduler noise.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        built = [build_scheme(s) for s in schemes]
        if parameters is not None:
            parameters = list(parameters)
            if len(parameters) != len(built):
                raise ValueError("parameters must align with schemes")
        else:
            parameters = [
                self._default_parameter(scheme, index)
                for index, scheme in enumerate(built)
            ]
        base_seed = self.seed if seed is _UNSET else seed
        rows: list[SweepRow] = []
        # Cache evaluation outcomes per scheme (params-driven eq/hash), so
        # duplicate schemes are executed once but every (scheme, parameter)
        # pair still gets its own correctly-labeled rows.
        seen: dict[CompressionScheme, tuple[float, list[EvaluationRecord]]] = {}
        for scheme, parameter in zip(built, parameters):
            cached = seen.get(scheme)
            if cached is None:
                best: dict[str, EvaluationRecord] = {}
                ratio = 1.0
                for r in range(repeats):
                    cell_seed = base_seed + r if isinstance(base_seed, int) else base_seed
                    records, compressed = self.evaluate(
                        scheme, algorithms, seed=cell_seed
                    )
                    ratio = (
                        compressed.num_edges / self.graph.num_edges
                        if self.graph.num_edges
                        else 1.0
                    )
                    for rec in records:
                        prev = best.get(rec.algorithm)
                        if prev is None or rec.compressed_seconds < prev.compressed_seconds:
                            best[rec.algorithm] = rec
                cached = (ratio, list(best.values()))
                seen[scheme] = cached
            ratio, best_records = cached
            rows.extend(
                SweepRow(
                    parameter=parameter,
                    algorithm=rec.algorithm,
                    compression_ratio=ratio,
                    relative_runtime_difference=rec.relative_runtime_difference,
                    metric_name=rec.metric_name,
                    metric_value=rec.metric_value,
                    scheme_spec=_spec_label(scheme),
                )
                for rec in best_records
            )
        return rows

    @staticmethod
    def _default_parameter(scheme, index: int):
        name = getattr(scheme, "name", None)
        if not isinstance(name, str):
            return float(index)
        try:
            entry = get_entry(name)
        except ValueError:
            return float(index)
        if entry.positional:
            value = scheme.params().get(entry.positional)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return value
        return float(index)
