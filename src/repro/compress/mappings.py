"""Vertex→subgraph mappings (§4.5.2).

Subgraph compression schemes first decompose the graph into disjoint
clusters; the paper singles out two mappings:

- :func:`low_diameter_decomposition` — Miller–Peng–Xu exponential-shift
  decomposition (O(n + m) work): every vertex draws a shift δ_v ~ Exp(β)
  and joins the cluster of the center u minimizing dist(u, v) − δ_u.
  Cluster (strong) diameter is O(log n / β) w.h.p. and only a β fraction of
  edges cross clusters in expectation.  Used for spanners: β = ln(n)/k
  gives the O(k)-spanner of §4.5.3.
- :func:`jaccard_minhash_clustering` — SWeG-style grouping: vertices with
  equal minhash signatures of their neighborhoods are candidates, then
  groups are refined with exact generalized-Jaccard similarity.  Used for
  lossy summarization (§4.5.4).

Both return an ``int64`` array of cluster ids, compacted to ``0..C-1``.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = [
    "low_diameter_decomposition",
    "jaccard_minhash_clustering",
    "LDDResult",
    "jaccard_similarity",
]

from dataclasses import dataclass


@dataclass(frozen=True)
class LDDResult:
    """Clusters plus the shortest-path-tree edges that realize them.

    ``parent_edge_ids`` holds, for every non-center vertex, the canonical
    edge id linking it to its BFS parent inside the cluster — exactly the
    intra-cluster spanning trees the spanner kernel needs.
    """

    mapping: np.ndarray
    centers: np.ndarray
    parent_edge_ids: np.ndarray  # -1 for centers / isolated vertices
    num_clusters: int


def low_diameter_decomposition(
    g: CSRGraph, beta: float, *, seed=None, weighted: bool = False
) -> LDDResult:
    """Exponential-shift LDD (Miller, Peng, Xu [111]).

    Implemented as one Dijkstra pass from a virtual super-source where
    every vertex v is seeded at start time ``δ_max − δ_v``: the first
    settled "wave" to reach a vertex claims it, which realizes
    argmin_u (dist(u, v) − δ_u) without n BFS runs.

    ``weighted=True`` grows the waves along edge *weights* instead of hop
    counts; the per-cluster trees then become weighted shortest-path
    trees, which is what lets spanners preserve weighted SSSP lengths
    (§7.2's "spanners best preserve lengths of shortest paths").  The
    shift scale is multiplied by the mean edge weight so β keeps its
    hop-space meaning.
    """
    if beta <= 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    rng = as_generator(seed)
    n = g.n
    use_weights = weighted and g.is_weighted
    scale = (
        float(g.edge_weights.mean()) if use_weights and g.num_edges else 1.0
    )
    shifts = rng.exponential(scale / beta, size=n)
    start = shifts.max() - shifts if n else shifts
    mapping = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    dist = np.full(n, np.inf)
    heap: list[tuple[float, int, int, int]] = []
    for v in range(n):
        heapq.heappush(heap, (float(start[v]), v, v, -1))
    while heap:
        d, v, center, via_edge = heapq.heappop(heap)
        if mapping[v] != -1:
            continue
        mapping[v] = center
        parent_edge[v] = via_edge
        dist[v] = d
        row = g.neighbors(v)
        eids = g.incident_edge_ids(v)
        if use_weights:
            wts = g.edge_weights[eids]
        for i, (u, e) in enumerate(zip(row, eids)):
            if mapping[u] == -1:
                step = float(wts[i]) if use_weights else 1.0
                heapq.heappush(heap, (d + step, int(u), center, int(e)))
    # Centers are vertices whose own wave claimed them.
    centers_mask = mapping == np.arange(n)
    parent_edge[centers_mask] = -1
    # Compact cluster ids.
    uniq, compact = np.unique(mapping, return_inverse=True)
    return LDDResult(
        mapping=compact.astype(np.int64),
        centers=uniq,
        parent_edge_ids=parent_edge,
        num_clusters=len(uniq),
    )


def beta_for_spanner(g: CSRGraph, k: float) -> float:
    """The β that turns LDD into the O(k)-spanner of §4.5.3: β = ln(n)/k."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return math.log(max(g.n, 2)) / k


def jaccard_similarity(g: CSRGraph, u: int, v: int) -> float:
    """Jaccard similarity of the closed neighborhoods of u and v.

    Closed (vertex included) so that adjacent similar vertices — the
    common case in communities — score high, as in SWeG's generalized
    Jaccard.
    """
    nu = np.union1d(g.neighbors(u), [u])
    nv = np.union1d(g.neighbors(v), [v])
    inter = len(np.intersect1d(nu, nv, assume_unique=True))
    union = len(nu) + len(nv) - inter
    return inter / union if union else 1.0


def jaccard_minhash_clustering(
    g: CSRGraph,
    *,
    threshold: float = 0.3,
    max_cluster_size: int = 32,
    num_hashes: int = 2,
    seed=None,
) -> np.ndarray:
    """SWeG-style clustering: minhash candidate groups + exact refinement.

    1. Each vertex gets a signature: the minimum of ``num_hashes`` random
       permutations over its closed neighborhood (shingle step of SWeG).
    2. Vertices sharing a signature form a candidate group.
    3. Inside each group, vertices greedily join a supervertex if their
       Jaccard similarity to the supervertex's seed is ≥ ``threshold``
       and the supervertex stays under ``max_cluster_size``.

    Returns compact cluster ids; unmerged vertices are singleton clusters.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    rng = as_generator(seed)
    n = g.n
    cluster = np.arange(n, dtype=np.int64)
    if n == 0:
        return cluster
    perms = [rng.permutation(n) for _ in range(num_hashes)]
    sig_parts = np.empty((num_hashes, n), dtype=np.int64)
    heads = np.repeat(np.arange(n), np.diff(g.indptr))
    for h, perm in enumerate(perms):
        # Open-neighborhood minhash (SWeG's shingle): vertices with equal
        # neighborhoods — twins — get equal signatures by construction.
        # Isolated vertices fall back to their own value.
        sig = perm.copy()
        has_nbr = g.degrees > 0
        sig[has_nbr] = np.iinfo(np.int64).max
        np.minimum.at(sig, heads, perm[g.indices])
        sig_parts[h] = sig
    # Combine hash parts into one group key.
    signature = sig_parts[0]
    for h in range(1, num_hashes):
        signature = signature * np.int64(n) + sig_parts[h]
    order = np.argsort(signature, kind="stable")
    sig_sorted = signature[order]
    boundaries = np.flatnonzero(np.diff(sig_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [n]])
    for s, e in zip(starts, ends):
        group = order[s:e]
        if len(group) < 2:
            continue
        seeds: list[int] = []
        sizes: dict[int, int] = {}
        for v in group:
            v = int(v)
            joined = False
            for sd in seeds:
                if sizes[sd] >= max_cluster_size:
                    continue
                if jaccard_similarity(g, sd, v) >= threshold:
                    cluster[v] = sd
                    sizes[sd] += 1
                    joined = True
                    break
            if not joined:
                seeds.append(v)
                sizes[v] = 1
    uniq, compact = np.unique(cluster, return_inverse=True)
    return compact.astype(np.int64)
