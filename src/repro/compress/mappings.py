"""Vertex→subgraph mappings (§4.5.2).

Subgraph compression schemes first decompose the graph into disjoint
clusters; the paper singles out two mappings:

- :func:`low_diameter_decomposition` — Miller–Peng–Xu exponential-shift
  decomposition (O(n + m) work): every vertex draws a shift δ_v ~ Exp(β)
  and joins the cluster of the center u minimizing dist(u, v) − δ_u.
  Cluster (strong) diameter is O(log n / β) w.h.p. and only a β fraction of
  edges cross clusters in expectation.  Used for spanners: β = ln(n)/k
  gives the O(k)-spanner of §4.5.3.
- :func:`jaccard_minhash_clustering` — SWeG-style grouping: vertices with
  equal minhash signatures of their neighborhoods are candidates, then
  groups are refined with exact generalized-Jaccard similarity.  Used for
  lossy summarization (§4.5.4).

Both return an ``int64`` array of cluster ids, compacted to ``0..C-1``.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = [
    "low_diameter_decomposition",
    "jaccard_minhash_clustering",
    "LDDResult",
    "jaccard_similarity",
    "relabel_mapping",
    "vertex_alignment",
]

from dataclasses import dataclass


@dataclass(frozen=True)
class LDDResult:
    """Clusters plus the shortest-path-tree edges that realize them.

    ``parent_edge_ids`` holds, for every non-center vertex, the canonical
    edge id linking it to its BFS parent inside the cluster — exactly the
    intra-cluster spanning trees the spanner kernel needs.
    """

    mapping: np.ndarray
    centers: np.ndarray
    parent_edge_ids: np.ndarray  # -1 for centers / isolated vertices
    num_clusters: int


def low_diameter_decomposition(
    g: CSRGraph, beta: float, *, seed=None, weighted: bool = False
) -> LDDResult:
    """Exponential-shift LDD (Miller, Peng, Xu [111]).

    Implemented as one Dijkstra pass from a virtual super-source where
    every vertex v is seeded at start time ``δ_max − δ_v``: the first
    settled "wave" to reach a vertex claims it, which realizes
    argmin_u (dist(u, v) − δ_u) without n BFS runs.

    ``weighted=True`` grows the waves along edge *weights* instead of hop
    counts; the per-cluster trees then become weighted shortest-path
    trees, which is what lets spanners preserve weighted SSSP lengths
    (§7.2's "spanners best preserve lengths of shortest paths").  The
    shift scale is multiplied by the mean edge weight so β keeps its
    hop-space meaning.
    """
    if beta <= 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    rng = as_generator(seed)
    n = g.n
    use_weights = weighted and g.is_weighted
    scale = (
        float(g.edge_weights.mean()) if use_weights and g.num_edges else 1.0
    )
    shifts = rng.exponential(scale / beta, size=n)
    start = shifts.max() - shifts if n else shifts
    mapping = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    dist = np.full(n, np.inf)
    heap: list[tuple[float, int, int, int]] = []
    for v in range(n):
        heapq.heappush(heap, (float(start[v]), v, v, -1))
    while heap:
        d, v, center, via_edge = heapq.heappop(heap)
        if mapping[v] != -1:
            continue
        mapping[v] = center
        parent_edge[v] = via_edge
        dist[v] = d
        row = g.neighbors(v)
        eids = g.incident_edge_ids(v)
        if use_weights:
            wts = g.edge_weights[eids]
        for i, (u, e) in enumerate(zip(row, eids)):
            if mapping[u] == -1:
                step = float(wts[i]) if use_weights else 1.0
                heapq.heappush(heap, (d + step, int(u), center, int(e)))
    # Centers are vertices whose own wave claimed them.
    centers_mask = mapping == np.arange(n)
    parent_edge[centers_mask] = -1
    # Compact cluster ids.
    uniq, compact = np.unique(mapping, return_inverse=True)
    return LDDResult(
        mapping=compact.astype(np.int64),
        centers=uniq,
        parent_edge_ids=parent_edge,
        num_clusters=len(uniq),
    )


def beta_for_spanner(g: CSRGraph, k: float) -> float:
    """The β that turns LDD into the O(k)-spanner of §4.5.3: β = ln(n)/k."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return math.log(max(g.n, 2)) / k


def relabel_mapping(n: int, dropped) -> np.ndarray:
    """Original id → compacted survivor id (-1 for dropped vertices).

    The provenance record a vertex-dropping scheme stores in
    ``extras["mapping"]`` so :func:`vertex_alignment` can align
    per-vertex outputs after compaction.
    """
    gone = np.zeros(n, dtype=bool)
    gone[np.asarray(dropped, dtype=np.int64)] = True
    mapping = np.cumsum(~gone, dtype=np.int64) - 1
    mapping[gone] = -1
    return mapping


def vertex_alignment(result) -> np.ndarray | None:
    """Original-vertex → compressed-vertex index map of a compression.

    When a scheme genuinely changes the vertex set (triangle collapse,
    relabeled sampling), per-vertex algorithm outputs on the compressed
    graph are not positionally comparable with the original's; the
    accuracy metrics must read each original vertex's value at the
    compressed vertex that *carries* it.  This function recovers that map
    from a :class:`~repro.compress.base.CompressionResult`'s provenance:

    - ``None`` means the vertex set is preserved (identity alignment) —
      the common case, since schemes keep removed vertices as isolated
      ids by default;
    - otherwise an ``int64`` array of length ``original.n`` whose entry v
      is the compressed vertex holding original vertex v, or ``-1`` when
      v was dropped with no surviving counterpart.

    Chains compose their per-stage ``extras["mapping"]`` records stage by
    stage.  If any vertex-changing stage recorded no mapping, ``None`` is
    returned and callers fall back to positional padding (the legacy —
    and score-skewing — behavior this map exists to avoid).
    """
    n0, n1 = result.original.n, result.graph.n
    if n1 == n0:
        return None
    stage_extras = result.extras.get("stage_extras")
    if stage_extras is None:
        stage_extras = [result.extras]
    records = list(result.lineage)
    if len(records) != len(stage_extras):
        records = [None] * len(stage_extras)
    current = np.arange(n0, dtype=np.int64)
    for record, extras in zip(records, stage_extras):
        if record is not None and record.vertices_out == record.vertices_in:
            continue
        stage_map = extras.get("mapping")
        if stage_map is None:
            return None
        stage_map = np.asarray(stage_map, dtype=np.int64)
        if record is not None and len(stage_map) != record.vertices_in:
            return None
        if current.size and current.max() >= len(stage_map):
            return None
        alive = current >= 0
        nxt = np.full(n0, -1, dtype=np.int64)
        nxt[alive] = stage_map[current[alive]]
        current = nxt
    if current.size and current.max() >= n1:
        return None
    return current


def jaccard_similarity(g: CSRGraph, u: int, v: int) -> float:
    """Jaccard similarity of the closed neighborhoods of u and v.

    Closed (vertex included) so that adjacent similar vertices — the
    common case in communities — score high, as in SWeG's generalized
    Jaccard.
    """
    nu = np.union1d(g.neighbors(u), [u])
    nv = np.union1d(g.neighbors(v), [v])
    inter = len(np.intersect1d(nu, nv, assume_unique=True))
    union = len(nu) + len(nv) - inter
    return inter / union if union else 1.0


def jaccard_minhash_clustering(
    g: CSRGraph,
    *,
    threshold: float = 0.3,
    max_cluster_size: int = 32,
    num_hashes: int = 2,
    seed=None,
) -> np.ndarray:
    """SWeG-style clustering: minhash candidate groups + exact refinement.

    1. Each vertex gets a signature: the minimum of ``num_hashes`` random
       permutations over its closed neighborhood (shingle step of SWeG).
    2. Vertices sharing a signature form a candidate group.
    3. Inside each group, vertices greedily join a supervertex if their
       Jaccard similarity to the supervertex's seed is ≥ ``threshold``
       and the supervertex stays under ``max_cluster_size``.

    Returns compact cluster ids; unmerged vertices are singleton clusters.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    rng = as_generator(seed)
    n = g.n
    cluster = np.arange(n, dtype=np.int64)
    if n == 0:
        return cluster
    perms = [rng.permutation(n) for _ in range(num_hashes)]
    sig_parts = np.empty((num_hashes, n), dtype=np.int64)
    heads = np.repeat(np.arange(n), np.diff(g.indptr))
    for h, perm in enumerate(perms):
        # Open-neighborhood minhash (SWeG's shingle): vertices with equal
        # neighborhoods — twins — get equal signatures by construction.
        # Isolated vertices fall back to their own value.
        sig = perm.copy()
        has_nbr = g.degrees > 0
        sig[has_nbr] = np.iinfo(np.int64).max
        np.minimum.at(sig, heads, perm[g.indices])
        sig_parts[h] = sig
    # Combine hash parts into one group key.
    signature = sig_parts[0]
    for h in range(1, num_hashes):
        signature = signature * np.int64(n) + sig_parts[h]
    order = np.argsort(signature, kind="stable")
    sig_sorted = signature[order]
    boundaries = np.flatnonzero(np.diff(sig_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [n]])
    for s, e in zip(starts, ends):
        group = order[s:e]
        if len(group) < 2:
            continue
        seeds: list[int] = []
        sizes: dict[int, int] = {}
        for v in group:
            v = int(v)
            joined = False
            for sd in seeds:
                if sizes[sd] >= max_cluster_size:
                    continue
                if jaccard_similarity(g, sd, v) >= threshold:
                    cluster[v] = sd
                    sizes[sd] += 1
                    joined = True
                    break
            if not joined:
                seeds.append(v)
                sizes[v] = 1
    uniq, compact = np.unique(cluster, return_inverse=True)
    return compact.astype(np.int64)
