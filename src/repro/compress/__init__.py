"""Lossy compression schemes (Table 2) and the scheme registry."""

from repro.compress.base import CompressionResult, CompressionScheme, StageRecord
from repro.compress.chain import Chain
from repro.compress.spec import SchemeSpec
from repro.compress.uniform import RandomUniformSampling, RandomUniformKernel
from repro.compress.spectral import (
    SpectralSparsifier,
    SpectralSparsifyKernel,
    edge_keep_probabilities,
)
from repro.compress.triangle_reduction import (
    TriangleReduction,
    BasicTRKernel,
    EdgeOnceTRKernel,
    CountTrianglesTRKernel,
    MaxWeightTRKernel,
)
from repro.compress.vertex_filters import LowDegreeVertexRemoval, LowDegreeKernel
from repro.compress.spanner import Spanner, DeriveSpannerKernel
from repro.compress.summarization import (
    LossySummarization,
    GraphSummary,
    DeriveSummaryKernel,
)
from repro.compress.mappings import (
    low_diameter_decomposition,
    jaccard_minhash_clustering,
    LDDResult,
    jaccard_similarity,
)
from repro.compress.cut_sparsifier import CutSparsifier, ni_forest_indices
from repro.compress.lowrank import ClusteredLowRankApproximation
from repro.compress.sampling import (
    RandomVertexSampling,
    RandomWalkSampling,
    VertexSamplingKernel,
)
from repro.compress.registry import (
    SCHEME_FACTORIES,
    SchemeEntry,
    build_scheme,
    get_entry,
    make_scheme,
    register_scheme,
    registered_schemes,
    unregister_scheme,
)

__all__ = [
    "CompressionResult",
    "CompressionScheme",
    "StageRecord",
    "Chain",
    "SchemeSpec",
    "SchemeEntry",
    "register_scheme",
    "unregister_scheme",
    "registered_schemes",
    "get_entry",
    "build_scheme",
    "RandomUniformSampling",
    "RandomUniformKernel",
    "SpectralSparsifier",
    "SpectralSparsifyKernel",
    "edge_keep_probabilities",
    "TriangleReduction",
    "BasicTRKernel",
    "EdgeOnceTRKernel",
    "CountTrianglesTRKernel",
    "MaxWeightTRKernel",
    "LowDegreeVertexRemoval",
    "LowDegreeKernel",
    "Spanner",
    "DeriveSpannerKernel",
    "LossySummarization",
    "GraphSummary",
    "DeriveSummaryKernel",
    "low_diameter_decomposition",
    "jaccard_minhash_clustering",
    "LDDResult",
    "jaccard_similarity",
    "CutSparsifier",
    "ni_forest_indices",
    "ClusteredLowRankApproximation",
    "RandomVertexSampling",
    "RandomWalkSampling",
    "VertexSamplingKernel",
    "make_scheme",
    "SCHEME_FACTORIES",
]
