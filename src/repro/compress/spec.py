"""Declarative scheme specifications.

A :class:`SchemeSpec` is the serializable description of a compression
scheme configuration: a canonical scheme name plus a parameter mapping
(and, for composed pipelines, an ordered tuple of stage specs).  It is the
transport format of the public API — every string the benchmark harness,
the examples, or a remote caller uses to name a scheme parses into a
``SchemeSpec``, and every configured :class:`~repro.compress.base.
CompressionScheme` can describe itself as one via ``scheme.spec()``.

Three surface syntaxes round-trip losslessly through ``parse``/
``to_string``:

- the named form ``"spanner(k=8)"`` / ``"spectral(p=0.5, variant=avgdeg)"``;
- the paper's Triangle-Reduction figure labels ``"0.5-1-TR"``,
  ``"EO-0.8-1-TR"``, ``"CT-0.5-2-TR"`` (§4.3 / Fig. 6);
- pipelines joined with ``|``: ``"low_degree(max_degree=1) | spanner(k=4)"``.

Values are type-preserving: ``k=8`` stays ``int``, ``p=0.5`` stays
``float``, ``reweight=false`` becomes ``bool``, ``rounds=none`` becomes
``None``.  ``to_dict``/``from_dict`` give the equivalent JSON-safe form
for storage and network transport.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["SchemeSpec"]

# Paper-style TR labels: "0.5-1-TR", "EO-0.8-1-TR", "CT-0.5-2-TR".
_TR_LABEL = re.compile(r"^(?:(EO|CT)-)?([0-9]*\.?[0-9]+)-([12])-TR$", re.IGNORECASE)
_TR_VARIANT_BY_PREFIX = {None: "basic", "EO": "edge_once", "CT": "count_triangles"}
_TR_PREFIX_BY_VARIANT = {v: k for k, v in _TR_VARIANT_BY_PREFIX.items()}

_NAMED_FORM = re.compile(r"^([A-Za-z_]\w*)\s*(?:\((.*)\))?$", re.DOTALL)


def _parse_value(text: str) -> Any:
    """Inverse of :func:`_format_value`; type-preserving."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, (int, float)):
        return repr(value)
    return str(value)


def _parse_params(
    name: str,
    args: str,
    text: str,
    *,
    positional,
    canonical=None,
    label: str = "scheme",
) -> dict:
    """Parse a ``key=value, …`` argument list (shared spec grammar).

    One optional bare leading value binds to ``positional(name)``;
    ``canonical(name, key)`` (when given) normalizes parameter
    spellings.  ``label`` names the spec family in error messages.
    Used by both :class:`SchemeSpec` and
    :class:`repro.algorithms.spec.AlgorithmSpec` so the grammar cannot
    drift between the two axes.
    """
    params: dict[str, Any] = {}
    for i, part in enumerate(args.split(",")):
        part = part.strip()
        if not part:
            raise ValueError(f"empty parameter in {label} spec {text!r}")
        key, sep, value = part.partition("=")
        if not sep:
            # Bare positional value: resolvable only through the
            # registry's declared positional parameter.
            if i != 0:
                raise ValueError(f"positional value must come first in {text!r}")
            key = positional(name)
            if key is None:
                raise ValueError(
                    f"{label} {name!r} takes no positional value "
                    f"(in spec {text!r})"
                )
            value = part
        else:
            key = key.strip()
            if not value.strip():
                raise ValueError(
                    f"missing value for {key!r} in {label} spec {text!r}"
                )
        if canonical is not None:
            key = canonical(name, key)
        params[key] = _parse_value(value.strip())
    return params


def _split_pipeline(text: str) -> list[str]:
    """Split on top-level ``|`` (pipes inside parentheses are preserved)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "|" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts]


def _freeze(value: Any):
    """Recursively convert mappings/sequences into hashable tuples."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True, eq=False)
class SchemeSpec:
    """A scheme name + parameters (+ stages, for ``chain`` pipelines)."""

    name: str
    params: dict = field(default_factory=dict)
    stages: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "stages", tuple(self.stages))
        if self.stages and self.name != "chain":
            raise ValueError("only 'chain' specs carry stages")

    # -- identity ---------------------------------------------------------- #

    def __eq__(self, other) -> bool:
        if not isinstance(other, SchemeSpec):
            return NotImplemented
        return (
            self.name == other.name
            and self.params == other.params
            and self.stages == other.stages
        )

    def __hash__(self) -> int:
        return hash((self.name, _freeze(self.params), self.stages))

    def __repr__(self) -> str:
        return f"SchemeSpec({self.to_string()!r})"

    # -- parsing ----------------------------------------------------------- #

    @classmethod
    def parse(cls, text: str) -> "SchemeSpec":
        """Parse a spec string (named form, TR label, or ``|`` pipeline)."""
        text = text.strip()
        if not text:
            raise ValueError("empty scheme spec")
        parts = _split_pipeline(text)
        if len(parts) > 1:
            return cls("chain", {}, tuple(cls.parse(p) for p in parts))

        tr = _TR_LABEL.match(text)
        if tr:
            prefix, p, x = tr.groups()
            variant = _TR_VARIANT_BY_PREFIX[prefix.upper() if prefix else None]
            return cls(
                "triangle_reduction",
                {"p": float(p), "x": int(x), "variant": variant},
            )

        m = _NAMED_FORM.match(text)
        if not m:
            raise ValueError(f"cannot parse scheme spec {text!r}")
        name, args = m.groups()
        name = _canonical_name(name)
        params: dict[str, Any] = {}
        if args and args.strip():
            params = _parse_params(
                name, args, text, positional=_positional_name, label="scheme"
            )
        return cls(name, params)

    # -- formatting -------------------------------------------------------- #

    def to_string(self) -> str:
        """The canonical spec string; ``parse(s).to_string()`` is stable."""
        if self.stages:
            return " | ".join(stage.to_string() for stage in self.stages)
        label = self._tr_label()
        if label is not None:
            return label
        if not self.params:
            return self.name
        inner = ", ".join(
            f"{k}={_format_value(v)}" for k, v in self.params.items()
        )
        return f"{self.name}({inner})"

    def _tr_label(self) -> str | None:
        """Paper-style TR label, when this spec is expressible as one."""
        if self.name != "triangle_reduction":
            return None
        if set(self.params) != {"p", "x", "variant"}:
            return None
        variant = self.params["variant"]
        x = self.params["x"]
        if variant not in _TR_PREFIX_BY_VARIANT or x not in (1, 2):
            return None
        prefix = _TR_PREFIX_BY_VARIANT[variant]
        head = f"{prefix}-" if prefix else ""
        return f"{head}{_format_value(self.params['p'])}-{x}-TR"

    # -- JSON transport ---------------------------------------------------- #

    def to_dict(self) -> dict:
        if self.stages:
            return {
                "name": self.name,
                "stages": [stage.to_dict() for stage in self.stages],
            }
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SchemeSpec":
        stages = tuple(cls.from_dict(s) for s in data.get("stages", ()))
        return cls(data["name"], dict(data.get("params", {})), stages)

    # -- construction ------------------------------------------------------ #

    def build(self, **overrides):
        """Instantiate the configured scheme through the registry."""
        from repro.compress.registry import build_scheme

        return build_scheme(self, **overrides)


def _canonical_name(name: str) -> str:
    """Resolve registry aliases; unknown names pass through lowercased
    (validation happens at build time, not parse time)."""
    from repro.compress.registry import resolve_name

    return resolve_name(name) or name.lower()


def _positional_name(name: str) -> str | None:
    from repro.compress.registry import positional_param

    return positional_param(name)
