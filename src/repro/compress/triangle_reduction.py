"""Triangle Reduction (TR) — the paper's novel compression class (§4.3).

A fraction ``p`` of all triangles is sampled u.a.r.; from each sampled
triangle a prescribed part is removed.  Variants (all selectable through
:class:`TriangleReduction`):

``basic``  (Triangle p-x-Reduction)
    Remove ``x`` ∈ {1, 2} uniformly-random edges from each sampled
    triangle.  Idempotent overlapping deletes.
``edge_once``  (EO p-x-TR)
    Every edge gets *at most one removal lottery*: when a sampled triangle
    is reduced, its drawn edge is deleted only if no earlier instance
    considered it, and **all three** triangle edges become considered —
    the two survivors are protected from every later instance.  This is
    what makes §6.1's bounds work ("we consider each triangle for
    deletion at most once; the probability of deleting an edge along the
    shortest path is at most 1/3") and caps removals at ~m/3 even when
    T ≫ m (§6.3: "the scheme can eliminate up to a third of the number
    of edges").
``count_triangles``  (CT p-x-TR, Fig. 6 right)
    Like ``edge_once`` but deterministic edge choice: remove the triangle
    edge contained in the *fewest* triangles (precomputed globally), so
    structurally important multi-triangle edges are removed last.
``max_weight``
    Remove the maximum-weight edge, and only from triangles whose three
    edges are all still present (checked against the deletion buffer).
    Every removed edge is then the heaviest edge of an intact cycle, so by
    the cycle property the MST weight is preserved *exactly* — the §4.3
    claim the weighted experiments verify.
``collapse``  (Triangle p-Reduction by Collapse)
    Sampled vertex-disjoint triangles are contracted into a single vertex
    (the minimum id), shrinking the vertex set as well.

Paper-text note: Listing 1 names the sampling parameter ``tr_stays`` while
§4.3, Table 2 (m − pT) and the evaluation axes all define ``p`` as the
probability of *reducing* a triangle (e.g. 0.9-1-TR removes far more than
0.2-1-TR in Table 6).  We follow the text: a triangle is reduced with
probability ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.registry import register_scheme
from repro.core.kernels import TriangleKernel
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = [
    "TriangleReduction",
    "BasicTRKernel",
    "EdgeOnceTRKernel",
    "CountTrianglesTRKernel",
    "MaxWeightTRKernel",
]

_VARIANTS = ("basic", "edge_once", "count_triangles", "max_weight", "collapse")


def _edge_once_delete_mask(
    num_edges: int, touched: np.ndarray, drawn: np.ndarray
) -> np.ndarray:
    """Vectorized edge-once semantics.

    ``touched[i]`` are the 3 edges of the i-th reduction event (in event
    order) and ``drawn[i]`` the x edges it tries to delete.  Sequentially,
    an edge is deleted iff it is drawn by the event that *first touches*
    it — later events see it considered.  That fixed point is computable
    without the sequential loop: one min-scatter finds each edge's first
    touching event, then drawn edges matching their own first-touch index
    are the deletions.
    """
    delete = np.zeros(num_edges, dtype=bool)
    if len(touched) == 0:
        return delete
    num_events = len(touched)
    first_touch = np.full(num_edges, num_events, dtype=np.int64)
    event_of = np.repeat(np.arange(num_events, dtype=np.int64), touched.shape[1])
    np.minimum.at(first_touch, touched.ravel(), event_of)
    drawn_event = np.repeat(np.arange(num_events, dtype=np.int64), drawn.shape[1])
    flat_drawn = drawn.ravel()
    wins = first_touch[flat_drawn] == drawn_event
    delete[flat_drawn[wins]] = True
    return delete


# --------------------------------------------------------------------- #
# kernel programs (the Listing-1 forms)
# --------------------------------------------------------------------- #


class BasicTRKernel(TriangleKernel):
    """p-x-reduction: sampled triangles lose x random edges."""

    name = "p_x_reduction"

    def __call__(self, triangle, sg) -> None:
        if sg.rand() < sg.p:
            x = int(sg.param("x", 1))
            edges = list(triangle.edge_ids)
            for _ in range(x):
                e = sg.rand_choice(edges)
                edges.remove(e)
                sg.delete_edge_id(e)


class EdgeOnceTRKernel(TriangleKernel):
    """EO p-x-reduction: one removal lottery per edge (§4.3).

    A sampled triangle draws x edges; each is deleted only on its *first*
    consideration, and every edge of the triangle is marked considered —
    survivors are protected from all later kernel instances.
    """

    name = "p_x_reduction_EO"

    def __call__(self, triangle, sg) -> None:
        if sg.rand() < sg.p:
            x = int(sg.param("x", 1))
            edges = list(triangle.edge_ids)
            for _ in range(x):
                e = sg.rand_choice(edges)
                edges.remove(e)
                if sg.considered_once(e):
                    sg.delete_edge_id(e)
            for e in edges:  # protect the survivors
                sg.considered_once(e)


class CountTrianglesTRKernel(TriangleKernel):
    """CT variant: remove the edge in the fewest triangles, edge-once.

    Requires ``sg.params["edge_triangle_counts"]`` (precomputed by the
    scheme; kernels only see local state plus SG parameters, matching the
    paper's model where global data lives in SG).
    """

    name = "p_x_reduction_CT"

    def __call__(self, triangle, sg) -> None:
        if sg.rand() < sg.p:
            counts = sg.param("edge_triangle_counts")
            x = int(sg.param("x", 1))
            edges = sorted(triangle.edge_ids, key=lambda e: (counts[e], e))
            for e in edges[:x]:
                if sg.considered_once(e):
                    sg.delete_edge_id(e)
            for e in edges[x:]:  # protect the survivors
                sg.considered_once(e)


class MaxWeightTRKernel(TriangleKernel):
    """Max-weight variant: delete the heaviest edge of intact triangles."""

    name = "p_1_reduction_max_weight"

    def __call__(self, triangle, sg) -> None:
        if sg.rand() < sg.p:
            # Only reduce triangles whose cycle is still intact, so the
            # removed edge is the max of a real cycle (exact MST weight).
            if any(sg.buffer.edge_deleted[e] for e in triangle.edge_ids):
                return
            sg.delete_edge_id(triangle.max_weight_edge())


# --------------------------------------------------------------------- #
# the scheme
# --------------------------------------------------------------------- #


@register_scheme(
    "triangle_reduction",
    positional="p",
    aliases=("tr",),
    summary="sample triangles w.p. p, remove x edges each; EO/CT/max-weight/collapse variants (§4.3)",
    example="EO-0.8-1-TR",
)
class TriangleReduction(CompressionScheme):
    """Triangle p-x-Reduction and its variants."""

    def __init__(
        self,
        p: float,
        *,
        x: int = 1,
        variant: str = "basic",
        approx_listing_p: float | None = None,
    ):
        self.p = check_probability(p, "p")
        if x not in (1, 2):
            raise ValueError(f"x must be 1 or 2, got {x}")
        if variant not in _VARIANTS:
            raise ValueError(f"variant must be one of {_VARIANTS}, got {variant!r}")
        if variant == "max_weight" and x != 1:
            raise ValueError("max_weight removes exactly one edge (x=1)")
        if approx_listing_p is not None:
            check_probability(approx_listing_p, "approx_listing_p")
            if approx_listing_p == 0.0:
                raise ValueError("approx_listing_p must be > 0 (or None for exact)")
        self.x = x
        self.variant = variant
        # §4.3: "numerous approximate schemes find fractions of all
        # triangles in a graph much faster than O(m^{3/2}) ... further
        # reducing the cost of lossy compression based on TR".  When set,
        # triangles are discovered on a DOULION-style edge subsample
        # (probability approx_listing_p), trading reduction scope for
        # listing speed; discovered triangles still reference original
        # edge ids, so deletion semantics are unchanged.
        self.approx_listing_p = approx_listing_p

    def params(self) -> dict:
        out = {"p": self.p, "x": self.x, "variant": self.variant}
        if self.approx_listing_p is not None:
            out["approx_listing_p"] = self.approx_listing_p
        return out

    def kernel_params(self) -> dict:
        return {"p": self.p, "x": self.x}

    # -- fast path -------------------------------------------------------- #

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        from repro.algorithms.triangles import edge_triangle_counts, list_triangles

        rng = as_generator(seed)
        tl = self._discover_triangles(g, rng)
        t = tl.count
        if t == 0:
            return CompressionResult(
                graph=g, original=g, scheme=self.name, params=self.params(),
                extras={"triangles": 0, "triangles_reduced": 0},
            )
        sampled = rng.random(t) < self.p
        idx = np.flatnonzero(sampled)

        if self.variant == "collapse":
            return self._collapse(g, tl, idx, rng)

        delete = np.zeros(g.num_edges, dtype=bool)
        if self.variant == "basic":
            # Choose x distinct of the 3 edge slots per sampled triangle via
            # one random per-row permutation.
            slots = np.argsort(rng.random((len(idx), 3)), axis=1)[:, : self.x]
            chosen = np.take_along_axis(tl.edge_ids[idx], slots, axis=1)
            delete[chosen.ravel()] = True
        elif self.variant == "edge_once":
            slots = np.argsort(rng.random((len(idx), 3)), axis=1)[:, : self.x]
            chosen = np.take_along_axis(tl.edge_ids[idx], slots, axis=1)
            delete = _edge_once_delete_mask(g.num_edges, tl.edge_ids[idx], chosen)
        elif self.variant == "count_triangles":
            counts = edge_triangle_counts(g)
            eids = tl.edge_ids[idx]
            order = np.argsort(counts[eids] * np.int64(g.num_edges) + eids, axis=1)
            ranked = np.take_along_axis(eids, order[:, : self.x], axis=1)
            delete = _edge_once_delete_mask(g.num_edges, eids, ranked)
        elif self.variant == "max_weight":
            w = (
                g.edge_weights
                if g.is_weighted
                else np.ones(g.num_edges, dtype=np.float64)
            )
            for row in tl.edge_ids[idx]:
                if delete[row].any():
                    continue
                weights = w[row]
                delete[row[int(np.argmax(weights))]] = True
        compressed = g.keep_edges(~delete)
        return CompressionResult(
            graph=compressed,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras={"triangles": t, "triangles_reduced": int(len(idx))},
        )

    def _collapse(self, g: CSRGraph, tl, idx: np.ndarray, rng) -> CompressionResult:
        """Contract sampled, vertex-disjoint triangles to single vertices."""
        used = np.zeros(g.n, dtype=bool)
        mapping = np.arange(g.n, dtype=np.int64)
        collapsed = 0
        for i in idx:
            u, v, w = tl.vertices[i]
            if used[u] or used[v] or used[w]:
                continue
            used[[u, v, w]] = True
            target = min(u, v, w)
            mapping[[u, v, w]] = target
            collapsed += 1
        # Compact ids: survivors keep order.
        survivors = np.unique(mapping)
        compact = np.zeros(g.n, dtype=np.int64)
        compact[survivors] = np.arange(len(survivors))
        final = compact[mapping]
        compressed = g.relabeled(final, len(survivors), dedup="min")
        return CompressionResult(
            graph=compressed,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras={
                "triangles": tl.count,
                "triangles_collapsed": collapsed,
                "mapping": final,
            },
        )

    def _discover_triangles(self, g: CSRGraph, rng):
        """Exact listing, or approximate discovery on an edge subsample."""
        from repro.algorithms.triangles import TriangleList, list_triangles

        if self.approx_listing_p is None:
            return list_triangles(g)
        keep = rng.random(g.num_edges) <= self.approx_listing_p
        sub = g.keep_edges(keep)
        # Map the subsample's edge ids back to originals.
        original_ids = np.flatnonzero(keep)
        tl = list_triangles(sub)
        return TriangleList(
            vertices=tl.vertices, edge_ids=original_ids[tl.edge_ids]
        )

    # -- kernel path ------------------------------------------------------ #

    def make_kernel(self):
        if self.variant == "basic":
            return BasicTRKernel()
        if self.variant == "edge_once":
            return EdgeOnceTRKernel()
        if self.variant == "count_triangles":
            return CountTrianglesTRKernel()
        if self.variant == "max_weight":
            return MaxWeightTRKernel()
        return None  # collapse changes the vertex set; not a pure del-kernel

    def compress_via_kernels(self, g: CSRGraph, *, seed=None, backend="serial", num_chunks=None):
        if self.variant == "count_triangles":
            from repro.algorithms.triangles import edge_triangle_counts
            from repro.core.runtime import SlimGraphRuntime

            params = self.kernel_params()
            params["edge_triangle_counts"] = edge_triangle_counts(g)
            runtime = SlimGraphRuntime(
                self.make_kernel(), params=params, backend=backend, num_chunks=num_chunks
            )
            result = runtime.run(g, seed=seed)
            return CompressionResult(
                graph=result.graph, original=g, scheme=self.name + "+kernels",
                params=self.params(), extras={"rounds": result.rounds},
            )
        return super().compress_via_kernels(
            g, seed=seed, backend=backend, num_chunks=num_chunks
        )
