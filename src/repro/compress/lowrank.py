"""Clustered low-rank (SVD) approximation — the negative baseline (§4.6).

The paper reports that clustered-SVD graph approximation "yields very high
error rates" with Θ(n_c³) time and Θ(n_c²) storage, and §7.4 confirms it
empirically.  We implement it faithfully so the comparison can be rerun:
cluster the vertices, compute a rank-r SVD of each intra-cluster adjacency
block (plus the inter-cluster remainder handled exactly or dropped), and
re-binarize the reconstruction by thresholding.

``CompressionResult.extras`` carries the dense-factor storage in floats so
the storage-blowup claim of Table 2 is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.registry import register_scheme
from repro.graphs.csr import CSRGraph
from repro.graphs.views import cluster_subgraphs
from repro.utils.rng import as_generator

__all__ = ["ClusteredLowRankApproximation"]


@register_scheme(
    "lowrank",
    positional="rank",
    summary="per-cluster rank-r SVD of the adjacency matrix (baseline, §2)",
    example="lowrank(rank=4)",
)
class ClusteredLowRankApproximation(CompressionScheme):
    """Rank-``r`` clustered SVD of the adjacency matrix.

    Parameters
    ----------
    rank:
        Per-cluster SVD rank.
    num_clusters:
        Number of vertex clusters (contiguous-id hashing by default; a
        custom mapping can be supplied to ``compress``).  Clustering only
    	 bounds the dense-block size; the approximation quality claim is
        about the SVD itself.
    threshold:
        Reconstructed entries ≥ threshold become edges.
    keep_intercluster:
        Keep inter-cluster edges exactly (True) or drop them (False, the
        harsher variant).
    """

    def __init__(
        self,
        rank: int,
        *,
        num_clusters: int = 8,
        threshold: float = 0.5,
        keep_intercluster: bool = True,
    ):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        self.rank = rank
        self.num_clusters = num_clusters
        self.threshold = float(threshold)
        self.keep_intercluster = keep_intercluster

    def params(self) -> dict:
        return {
            "rank": self.rank,
            "num_clusters": self.num_clusters,
            "threshold": self.threshold,
            "keep_intercluster": self.keep_intercluster,
        }

    def _default_mapping(self, g: CSRGraph, rng) -> np.ndarray:
        """Random balanced clustering (locality-free; documented baseline)."""
        mapping = np.arange(g.n, dtype=np.int64) % self.num_clusters
        rng.shuffle(mapping)
        return mapping

    def compress(self, g: CSRGraph, *, seed=None, mapping=None) -> CompressionResult:
        if g.directed:
            raise ValueError("low-rank baseline expects an undirected graph")
        rng = as_generator(seed)
        mapping = (
            np.asarray(mapping, dtype=np.int64)
            if mapping is not None
            else self._default_mapping(g, rng)
        )
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        dense_floats = 0
        for _, vertices in cluster_subgraphs(g, mapping):
            if len(vertices) < 2:
                continue
            local = {int(v): i for i, v in enumerate(vertices)}
            block = np.zeros((len(vertices), len(vertices)))
            for v in vertices:
                for u in g.neighbors(int(v)):
                    j = local.get(int(u))
                    if j is not None:
                        block[local[int(v)], j] = 1.0
            r = min(self.rank, len(vertices) - 1)
            u_, s, vt = np.linalg.svd(block, full_matrices=False)
            approx = (u_[:, :r] * s[:r]) @ vt[:r]
            dense_floats += u_[:, :r].size + r + vt[:r].size
            iu, iv = np.nonzero(np.triu(approx >= self.threshold, k=1))
            src_parts.append(vertices[iu])
            dst_parts.append(vertices[iv])
        if self.keep_intercluster:
            cross = mapping[g.edge_src] != mapping[g.edge_dst]
            src_parts.append(g.edge_src[cross])
            dst_parts.append(g.edge_dst[cross])
        if src_parts:
            approx_graph = CSRGraph.from_edges(
                g.n, np.concatenate(src_parts), np.concatenate(dst_parts)
            )
        else:
            approx_graph = CSRGraph.empty(g.n)
        return CompressionResult(
            graph=approx_graph,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras={
                "dense_storage_floats": int(dense_floats),
                "mapping": mapping,
            },
        )
