"""Spectral sparsification (§4.2.1).

Degree-aware edge sampling in the Spielman–Teng style the paper selected
after surveying the sparsifier literature: the only family with O(m + n)
storage and O(m) time.  Each edge (u, v) stays with

    p_uv = min(1, Υ / min(d_u, d_v)),

so every vertex keeps edges attached to it w.h.p. — the property that makes
spectral sparsifiers "designed to minimize graph disconnectedness" (§7.2).
Two Υ variants (Fig. 6 left):

- ``"logn"``  : Υ = p · log n   (Spielman–Teng [148]),
- ``"avgdeg"``: Υ = p · m / n   (average degree [82]).

Kept edges are reweighted w = w₀/p_uv so the Laplacian quadratic form is
preserved in expectation (``reweight=False`` disables this when the
consumer needs an unweighted graph).
"""

from __future__ import annotations

import math

import numpy as np

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.registry import register_scheme
from repro.core.kernels import EdgeKernel
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["SpectralSparsifier", "SpectralSparsifyKernel", "edge_keep_probabilities"]


def edge_keep_probabilities(g: CSRGraph, p: float, variant: str = "logn") -> np.ndarray:
    """The per-edge keep probability p_uv = min(1, Υ/min(d_u, d_v))."""
    if variant == "logn":
        upsilon = p * math.log(max(g.n, 2))
    elif variant == "avgdeg":
        upsilon = p * (g.num_edges / max(g.n, 1))
    else:
        raise ValueError(f"unknown variant {variant!r}")
    deg = g.degrees
    dmin = np.minimum(deg[g.edge_src], deg[g.edge_dst]).astype(np.float64)
    # Isolated endpoints cannot occur for a real edge; guard anyway.
    dmin = np.maximum(dmin, 1.0)
    return np.minimum(1.0, upsilon / dmin)


class SpectralSparsifyKernel(EdgeKernel):
    """Listing 1, lines 2–6: degree-aware sampling + 1/p reweighting."""

    name = "spectral_sparsify"

    def __call__(self, e, sg) -> None:
        upsilon = sg.connectivity_spectral_parameter()
        edge_stays = min(1.0, upsilon / min(e.u.deg, e.v.deg))
        if edge_stays < sg.rand():
            sg.delete(e)
        elif sg.param("reweight", True):
            sg.set_weight(e, e.weight / edge_stays)


@register_scheme(
    "spectral",
    positional="p",
    summary="degree-aware sampling + 1/p reweighting (spectral sparsifier, §4.2.1)",
    example="spectral(p=0.5)",
)
class SpectralSparsifier(CompressionScheme):
    """Spectral sparsification with selectable Υ variant."""

    def __init__(self, p: float, *, variant: str = "logn", reweight: bool = True):
        self.p = check_probability(p, "p")
        if variant not in ("logn", "avgdeg"):
            raise ValueError(f"unknown variant {variant!r}")
        self.variant = variant
        self.reweight = reweight

    def params(self) -> dict:
        return {"p": self.p, "variant": self.variant, "reweight": self.reweight}

    def kernel_params(self) -> dict:
        # The SG container keys the Υ selector as "spectral_variant" (§4.2.1).
        return {"p": self.p, "spectral_variant": self.variant, "reweight": self.reweight}

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        rng = as_generator(seed)
        keep_prob = edge_keep_probabilities(g, self.p, self.variant)
        r = rng.random(g.num_edges)
        keep = r <= keep_prob  # delete iff p_uv < r: matches the kernel
        compressed = g.keep_edges(keep)
        if self.reweight:
            base = (
                g.edge_weights[keep]
                if g.is_weighted
                else np.ones(int(keep.sum()), dtype=np.float64)
            )
            compressed = compressed.with_weights(base / keep_prob[keep])
        return CompressionResult(
            graph=compressed,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras={"keep_probabilities": keep_prob},
        )

    def make_kernel(self):
        return SpectralSparsifyKernel()
