"""Graph sampling schemes (the "sampling" class of §2).

The paper's taxonomy of lossy compression (§2) includes sampling
[Hu & Lau; Leskovec & Faloutsos; Wang et al.] alongside sparsifiers and
summaries, and §3.1's kernel taxonomy maps it to *vertex* kernels.  Two
representative members:

- :class:`RandomVertexSampling` — keep each vertex independently with
  probability p; the induced subgraph is the sample.  Expressible as a
  single vertex kernel (the Listing-1 style program ships alongside).
- :class:`RandomWalkSampling` — run restarts of a random walk and keep
  the visited vertices' induced subgraph; the classic
  topology-preserving sampler (Leskovec–Faloutsos), used when the sample
  must stay connected around seeds.  This one is inherently sequential,
  so it has no kernel form — a documented example of the model's §4.7
  expressiveness boundary.

Both preserve vertex identities (non-members become isolated) unless
``relabel=True``, mirroring the rest of the library.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.mappings import relabel_mapping
from repro.compress.registry import register_scheme
from repro.core.kernels import VertexKernel
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["RandomVertexSampling", "RandomWalkSampling", "VertexSamplingKernel"]


class VertexSamplingKernel(VertexKernel):
    """Vertex kernel: delete the vertex (and its edges) w.p. 1 - p."""

    name = "vertex_sampling"

    def __call__(self, v, sg) -> None:
        if sg.p < sg.rand():
            sg.delete(v)


@register_scheme(
    "vertex_sampling",
    positional="p",
    summary="induced-subgraph sampling: keep each vertex w.p. p (§2 sampling class)",
    example="vertex_sampling(p=0.7)",
)
class RandomVertexSampling(CompressionScheme):
    """Induced-subgraph sampling: keep each vertex w.p. ``p``.

    Edge survival probability is p² (both endpoints must survive), so the
    expected edge reduction is steeper than uniform edge sampling at the
    same p — the classic bias of vertex sampling the survey literature
    warns about.
    """

    def __init__(self, p: float, *, relabel: bool = False):
        self.p = check_probability(p, "p")
        self.relabel = relabel

    def params(self) -> dict:
        return {"p": self.p, "relabel": self.relabel}

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        rng = as_generator(seed)
        # One uniform per vertex in id order: bit-compatible with the
        # serial kernel program.
        r = rng.random(g.n)
        drop = np.flatnonzero(r > self.p)
        sub = g.remove_vertices(drop, relabel=self.relabel)
        extras = {"vertices_removed": int(len(drop))}
        if self.relabel:
            extras["mapping"] = relabel_mapping(g.n, drop)
        return CompressionResult(
            graph=sub,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras=extras,
        )

    def make_kernel(self):
        return VertexSamplingKernel()


@register_scheme(
    "random_walk_sampling",
    positional="target_fraction",
    summary="random-walk-with-restart sampling; induced subgraph of visited vertices",
    example="random_walk_sampling(target_fraction=0.5)",
)
class RandomWalkSampling(CompressionScheme):
    """Random-walk-with-restart sampling (Leskovec–Faloutsos "RW" family).

    Walk from a random seed, restarting with probability ``restart_p``
    (back to the seed) and re-seeding on dead ends, until
    ``target_fraction`` of the vertices are visited; keep the induced
    subgraph.  Preserves local structure around hubs far better than
    independent vertex sampling, at the price of bias toward
    high-degree regions.
    """

    def __init__(
        self,
        target_fraction: float,
        *,
        restart_p: float = 0.15,
        max_steps_factor: int = 100,
        relabel: bool = False,
    ):
        self.target_fraction = check_probability(target_fraction, "target_fraction")
        self.restart_p = check_probability(restart_p, "restart_p")
        check_positive(max_steps_factor, "max_steps_factor")
        self.max_steps_factor = max_steps_factor
        self.relabel = relabel

    def params(self) -> dict:
        return {
            "target_fraction": self.target_fraction,
            "restart_p": self.restart_p,
            "max_steps_factor": self.max_steps_factor,
            "relabel": self.relabel,
        }

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        rng = as_generator(seed)
        target = int(np.ceil(self.target_fraction * g.n))
        visited = np.zeros(g.n, dtype=bool)
        num_visited = 0
        steps = 0
        budget = self.max_steps_factor * max(g.n, 1)
        current = seed_vertex = int(rng.integers(0, g.n)) if g.n else 0
        while num_visited < target and steps < budget and g.n:
            steps += 1
            if not visited[current]:
                visited[current] = True
                num_visited += 1
            nbrs = g.neighbors(current)
            if len(nbrs) == 0 or rng.random() < self.restart_p:
                # Restart; re-seed to an unvisited vertex occasionally so
                # disconnected graphs still reach the target.
                if rng.random() < 0.5 and num_visited < g.n:
                    unvisited = np.flatnonzero(~visited)
                    seed_vertex = int(unvisited[rng.integers(0, len(unvisited))])
                current = seed_vertex
            else:
                current = int(nbrs[rng.integers(0, len(nbrs))])
        drop = np.flatnonzero(~visited)
        sub = g.remove_vertices(drop, relabel=self.relabel)
        extras = {"vertices_kept": int(num_visited), "walk_steps": steps}
        if self.relabel:
            extras["mapping"] = relabel_mapping(g.n, drop)
        return CompressionResult(
            graph=sub,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras=extras,
        )
