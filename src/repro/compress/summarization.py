"""Lossy ε-summarization in the SWeG style (§4.5.4).

A summary consists of

- **supervertices** — clusters of Jaccard-similar vertices (the §4.5.2
  minhash mapping),
- **superedges** — a superedge (A, B) encodes *all* pairs between the
  member sets of A and B (a clique for A = B),
- **corrections⁺** — real edges not covered by any superedge (must be
  added back on decompression),
- **corrections⁻** — non-edges covered by a superedge (must be removed on
  decompression).

The encoder creates a superedge exactly when it shrinks the encoding
(|present pairs| > 1 + |missing pairs|, the SWeG/MDL rule), so the
*lossless* summary decompresses to the input graph exactly — a property
the test suite checks.  The **lossy** step then drops corrections under a
per-vertex error budget of ε·d(v) (each dropped correction charges both
endpoints), which yields SWeG's guarantee that every decompressed
neighborhood differs from the original by at most ε·d(v) — and Table 3's
"m ± 2εm" row, since Σ_v ε·d(v) = 2εm.  Dropping a ⁺ correction loses a
real edge; dropping a ⁻ correction *inserts a fake edge* — summarization
is the one scheme that can add edges and disconnect anything (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.registry import register_scheme
from repro.compress.mappings import jaccard_minhash_clustering
from repro.core.kernels import SubgraphKernel
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["LossySummarization", "GraphSummary", "DeriveSummaryKernel", "save_summary", "load_summary"]


@dataclass
class GraphSummary:
    """The summary representation S = (P, C⁺, C⁻) over supervertices."""

    num_vertices: int
    mapping: np.ndarray  # vertex -> supervertex id
    superedges: list[tuple[int, int]] = field(default_factory=list)
    corrections_plus: list[tuple[int, int]] = field(default_factory=list)
    corrections_minus: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_supervertices(self) -> int:
        return int(self.mapping.max()) + 1 if len(self.mapping) else 0

    def storage_edges(self) -> int:
        """Summary size in edge-equivalents: |P| + |C⁺| + |C⁻|.

        The quantity SWeG minimizes; the compression ratio of a summary is
        storage_edges / m.
        """
        return len(self.superedges) + len(self.corrections_plus) + len(self.corrections_minus)

    def members(self) -> list[np.ndarray]:
        """Member vertex arrays per supervertex."""
        order = np.argsort(self.mapping, kind="stable")
        svs = self.mapping[order]
        bounds = np.flatnonzero(np.diff(svs)) + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [len(order)]])
        out = [np.empty(0, dtype=np.int64)] * self.num_supervertices
        for s, e in zip(starts, ends):
            out[int(svs[s])] = order[s:e]
        return out

    def decompress(self) -> CSRGraph:
        """Expand superedges, add C⁺, remove C⁻."""
        members = self.members()
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        for a, b in self.superedges:
            ma, mb = members[a], members[b]
            if a == b:
                if len(ma) >= 2:
                    iu, iv = np.triu_indices(len(ma), k=1)
                    src_parts.append(ma[iu])
                    dst_parts.append(ma[iv])
            else:
                uu = np.repeat(ma, len(mb))
                vv = np.tile(mb, len(ma))
                src_parts.append(uu)
                dst_parts.append(vv)
        if self.corrections_plus:
            cp = np.array(self.corrections_plus, dtype=np.int64)
            src_parts.append(cp[:, 0])
            dst_parts.append(cp[:, 1])
        if not src_parts:
            return CSRGraph.empty(self.num_vertices)
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        g = CSRGraph.from_edges(self.num_vertices, src, dst)
        if self.corrections_minus:
            cm = np.array(self.corrections_minus, dtype=np.int64)
            lo = np.minimum(cm[:, 0], cm[:, 1])
            hi = np.maximum(cm[:, 0], cm[:, 1])
            keys = g.edge_src * np.int64(self.num_vertices) + g.edge_dst
            drop_keys = lo * np.int64(self.num_vertices) + hi
            keep = ~np.isin(keys, drop_keys)
            g = g.keep_edges(keep)
        return g


class DeriveSummaryKernel(SubgraphKernel):
    """Listing 1, lines 35–48: per-cluster supervertex + superedges.

    Each kernel instance owns one cluster: it registers the supervertex,
    encodes intra-cluster pairs (self-superedge vs corrections⁺), and —
    for each *higher-id* neighbor cluster, so every pair is encoded by
    exactly one instance — decides superedge vs corrections.
    """

    name = "derive_summary"

    def __call__(self, subgraph, sg) -> None:
        g = subgraph.graph
        mine = subgraph.vertices
        sv = int(mine.min()) if len(mine) else -1
        sg.summary_insert_supervertex(sv)
        # --- intra-cluster encoding.
        intra = subgraph.internal_edge_ids()
        pairs_total = len(mine) * (len(mine) - 1) // 2
        if pairs_total and len(intra) > (pairs_total + 1) // 2 + 1:
            sg.summary_insert_superedge(subgraph.id, subgraph.id)
            present = {
                (min(int(g.edge_src[e]), int(g.edge_dst[e])),
                 max(int(g.edge_src[e]), int(g.edge_dst[e])))
                for e in intra
            }
            for i in range(len(mine)):
                for j in range(i + 1, len(mine)):
                    pair = (min(int(mine[i]), int(mine[j])), max(int(mine[i]), int(mine[j])))
                    if pair not in present:
                        sg.add_corrections_minus([pair])
        else:
            sg.add_corrections_plus(
                (int(g.edge_src[e]), int(g.edge_dst[e])) for e in intra
            )
        # --- inter-cluster encoding (only toward higher cluster ids).
        out_eids, neighbor_clusters = subgraph.out_edges()
        mapping = subgraph.mapping
        for c in np.unique(neighbor_clusters):
            if c <= subgraph.id:
                continue
            eids = out_eids[neighbor_clusters == c]
            other = np.flatnonzero(mapping == c)
            possible = len(mine) * len(other)
            if len(eids) > (possible + 1) // 2 + 1:
                sg.summary_insert_superedge(subgraph.id, int(c))
                present = {
                    (min(int(g.edge_src[e]), int(g.edge_dst[e])),
                     max(int(g.edge_src[e]), int(g.edge_dst[e])))
                    for e in eids
                }
                for u in mine:
                    for v in other:
                        pair = (min(int(u), int(v)), max(int(u), int(v)))
                        if pair not in present:
                            sg.add_corrections_minus([pair])
            else:
                sg.add_corrections_plus(
                    (int(g.edge_src[e]), int(g.edge_dst[e])) for e in eids
                )
        sg.update_convergence(True)


@register_scheme(
    "summarization",
    positional="epsilon",
    summary="SWeG-style ε-summarization: supervertices + correction sets (§4.5.4)",
    example="summarization(epsilon=0.3)",
)
class LossySummarization(CompressionScheme):
    """SWeG-style ε-summarization.

    Parameters
    ----------
    epsilon:
        Per-vertex error budget: the decompressed neighborhood of v may
        differ from the original by at most ε·d(v) edges.  ε = 0 is a
        lossless summary.
    threshold, max_cluster_size, num_hashes:
        Forwarded to the Jaccard/minhash clustering (§4.5.2).
    """

    def __init__(
        self,
        epsilon: float,
        *,
        threshold: float = 0.3,
        max_cluster_size: int = 32,
        num_hashes: int = 2,
    ):
        self.epsilon = check_probability(epsilon, "epsilon")
        self.threshold = threshold
        self.max_cluster_size = max_cluster_size
        self.num_hashes = num_hashes

    def params(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "threshold": self.threshold,
            "max_cluster_size": self.max_cluster_size,
            "num_hashes": self.num_hashes,
        }

    # -- encoding (vectorized over supervertex pairs) ---------------------- #

    def _encode(self, g: CSRGraph, mapping: np.ndarray) -> GraphSummary:
        summary = GraphSummary(num_vertices=g.n, mapping=mapping)
        sizes = np.bincount(mapping, minlength=int(mapping.max()) + 1 if len(mapping) else 0)
        cs, cd = mapping[g.edge_src], mapping[g.edge_dst]
        lo = np.minimum(cs, cd)
        hi = np.maximum(cs, cd)
        C = np.int64(len(sizes))
        keys = lo * C + hi
        order = np.argsort(keys, kind="stable")
        members = summary.members()
        boundaries = np.flatnonzero(np.diff(keys[order])) + 1
        starts = np.concatenate([[0], boundaries]) if len(order) else []
        ends = np.concatenate([boundaries, [len(order)]]) if len(order) else []
        for s, e in zip(starts, ends):
            eids = order[s:e]
            a = int(lo[eids[0]])
            b = int(hi[eids[0]])
            if a == b:
                possible = int(sizes[a]) * (int(sizes[a]) - 1) // 2
            else:
                possible = int(sizes[a]) * int(sizes[b])
            present_count = len(eids)
            if possible and present_count > (possible + 1) // 2 + 1:
                summary.superedges.append((a, b))
                present = set(
                    zip(g.edge_src[eids].tolist(), g.edge_dst[eids].tolist())
                )
                ma, mb = members[a], members[b]
                if a == b:
                    iu, iv = np.triu_indices(len(ma), k=1)
                    cand_u, cand_v = ma[iu], ma[iv]
                else:
                    cand_u = np.repeat(ma, len(mb))
                    cand_v = np.tile(mb, len(ma))
                for u, v in zip(cand_u.tolist(), cand_v.tolist()):
                    pair = (u, v) if u < v else (v, u)
                    if pair not in present:
                        summary.corrections_minus.append(pair)
            else:
                summary.corrections_plus.extend(
                    zip(g.edge_src[eids].tolist(), g.edge_dst[eids].tolist())
                )
        return summary

    def _drop_corrections(self, g: CSRGraph, summary: GraphSummary, rng) -> GraphSummary:
        """Lossy step: drop corrections within per-vertex ε·d(v) budgets."""
        if self.epsilon == 0.0:
            return summary
        budget = np.floor(self.epsilon * g.degrees).astype(np.int64)
        def filter_pairs(pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
            if not pairs:
                return pairs
            kept = []
            order = rng.permutation(len(pairs))
            for i in order:
                u, v = pairs[i]
                if budget[u] > 0 and budget[v] > 0:
                    budget[u] -= 1
                    budget[v] -= 1
                else:
                    kept.append((u, v))
            return kept

        summary.corrections_minus = filter_pairs(summary.corrections_minus)
        summary.corrections_plus = filter_pairs(summary.corrections_plus)
        return summary

    def summarize(self, g: CSRGraph, *, seed=None) -> GraphSummary:
        """Produce the (lossy) summary object itself."""
        rng = as_generator(seed)
        mapping = jaccard_minhash_clustering(
            g,
            threshold=self.threshold,
            max_cluster_size=self.max_cluster_size,
            num_hashes=self.num_hashes,
            seed=rng,
        )
        summary = self._encode(g, mapping)
        return self._drop_corrections(g, summary, rng)

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        """Summarize then decompress: the graph algorithms of the paper's
        evaluation run on the decompressed approximation."""
        if g.directed:
            raise ValueError("summarization expects an undirected graph")
        summary = self.summarize(g, seed=seed)
        approx = summary.decompress()
        return CompressionResult(
            graph=approx,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras={
                "summary": summary,
                "storage_edges": summary.storage_edges(),
                "storage_ratio": summary.storage_edges() / g.num_edges if g.num_edges else 1.0,
            },
        )

    # -- kernel path ------------------------------------------------------ #

    def make_kernel(self):
        return DeriveSummaryKernel()

    def mapping_fn(self):
        scheme = self

        def build(g: CSRGraph, sg, rng) -> np.ndarray:
            return jaccard_minhash_clustering(
                g,
                threshold=scheme.threshold,
                max_cluster_size=scheme.max_cluster_size,
                num_hashes=scheme.num_hashes,
                seed=rng,
            )

        return build

    def compress_via_kernels(self, g: CSRGraph, *, seed=None, backend="serial", num_chunks=None):
        """Kernel-path summarization: run the subgraph kernel, assemble the
        summary from SG's containers, then decompress."""
        from repro.core.runtime import SlimGraphRuntime

        rng = as_generator(seed)
        runtime = SlimGraphRuntime(
            self.make_kernel(),
            mapping_fn=self.mapping_fn(),
            params=self.kernel_params(),
            backend=backend,
            num_chunks=num_chunks,
            max_rounds=1,
        )
        result = runtime.run(g, seed=rng)
        sg = result.sg
        summary = GraphSummary(num_vertices=g.n, mapping=sg.mapping)
        # Kernel superedges are cluster-id pairs already.
        summary.superedges = [(int(a), int(b)) for a, b, _ in sg.summary_edges]
        summary.corrections_plus = list(sg.corrections_plus)
        summary.corrections_minus = list(sg.corrections_minus)
        summary = self._drop_corrections(g, summary, rng)
        return CompressionResult(
            graph=summary.decompress(),
            original=g,
            scheme=self.name + "+kernels",
            params=self.params(),
            extras={"summary": summary, "storage_edges": summary.storage_edges()},
        )


def save_summary(summary: GraphSummary, path) -> None:
    """Persist a summary to ``.npz`` — the *storage* use case of the title.

    The on-disk size is proportional to ``storage_edges()`` + n (the
    supervertex mapping), which is how lossy summarization turns into
    storage reduction.
    """
    from pathlib import Path

    def pairs(lst):
        return (
            np.array(lst, dtype=np.int64).reshape(-1, 2)
            if lst
            else np.empty((0, 2), dtype=np.int64)
        )

    np.savez_compressed(
        Path(path),
        num_vertices=np.array([summary.num_vertices], dtype=np.int64),
        mapping=summary.mapping,
        superedges=pairs(summary.superedges),
        corrections_plus=pairs(summary.corrections_plus),
        corrections_minus=pairs(summary.corrections_minus),
    )


def load_summary(path) -> GraphSummary:
    """Load a summary written by :func:`save_summary`."""
    from pathlib import Path

    with np.load(Path(path)) as z:
        return GraphSummary(
            num_vertices=int(z["num_vertices"][0]),
            mapping=z["mapping"],
            superedges=[tuple(row) for row in z["superedges"].tolist()],
            corrections_plus=[tuple(row) for row in z["corrections_plus"].tolist()],
            corrections_minus=[tuple(row) for row in z["corrections_minus"].tolist()],
        )
