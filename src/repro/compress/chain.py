"""Sequential composition of compression schemes.

The paper evaluates schemes one at a time, but its programming model
explicitly allows stacking kernels (§4.1: compression kernels are closed
under composition — the output of one is a valid input of the next).
:class:`Chain` makes that first-class in the scheme API::

    pipeline = LowDegreeVertexRemoval(max_degree=1) | Spanner(4)
    result = pipeline.compress(g, seed=0)
    [stage.scheme for stage in result.lineage]
    # ['low_degree', 'spanner']

Each stage compresses the previous stage's output; the final
:class:`~repro.compress.base.CompressionResult` keeps the *first* graph as
``original`` (so ``compression_ratio`` measures the whole pipeline) and
threads per-stage provenance through ``result.lineage``.

Chains parse from and format to the ``|`` spec syntax
(``"low_degree(max_degree=1) | spanner(k=4)"``), so they travel through
the same registry/spec machinery as single schemes.
"""

from __future__ import annotations

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.spec import SchemeSpec
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["Chain"]


class Chain(CompressionScheme):
    """Apply ``stages`` left to right; provenance lands in ``lineage``."""

    name = "chain"

    def __init__(self, stages):
        from repro.compress.registry import build_scheme

        flat: list[CompressionScheme] = []
        for stage in stages:
            scheme = build_scheme(stage)
            if isinstance(scheme, Chain):
                flat.extend(scheme.stages)
            else:
                flat.append(scheme)
        if not flat:
            raise ValueError("chain needs at least one stage")
        self.stages = tuple(flat)

    def params(self) -> dict:
        return {"stages": tuple(stage.spec() for stage in self.stages)}

    def spec(self) -> SchemeSpec:
        return SchemeSpec(
            "chain", {}, tuple(stage.spec() for stage in self.stages)
        )

    def __or__(self, other) -> "Chain":
        return Chain([*self.stages, other])

    def __repr__(self) -> str:
        return " | ".join(repr(stage) for stage in self.stages)

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        # One shared stream: stage i+1's draws follow stage i's, so the
        # whole pipeline is reproducible from a single seed.
        rng = as_generator(seed)
        current = g
        lineage: list = []
        stage_extras: list[dict] = []
        for stage in self.stages:
            result = stage.compress(current, seed=rng)
            lineage.extend(result.lineage)
            stage_extras.append(result.extras)
            current = result.graph
        return CompressionResult(
            graph=current,
            original=g,
            scheme=self.name,
            params={"stages": [stage.spec().to_string() for stage in self.stages]},
            extras={"stage_extras": stage_extras},
            lineage=tuple(lineage),
        )
