"""Random uniform edge sampling (§4.2.2).

Every edge independently stays with probability ``p``.  The simplest and
fastest scheme (Θ(m) with a trivial constant); preserves the triangle count
in expectation up to the (1 - p³) factor of Table 3 and is the scheme the
paper uses for the first distributed compression of the largest graphs
(Fig. 8).  It can disconnect graphs — Table 3's unbounded-path rows.
"""

from __future__ import annotations

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.registry import register_scheme
from repro.core.kernels import EdgeKernel
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["RandomUniformSampling", "RandomUniformKernel"]


class RandomUniformKernel(EdgeKernel):
    """Listing 1, lines 8–10: ``if (edge_stays < SG.rand()) SG.del(e)``."""

    name = "random_uniform"

    def __call__(self, e, sg) -> None:
        edge_stays = sg.p
        if edge_stays < sg.rand():
            sg.delete(e)


@register_scheme(
    "uniform",
    positional="p",
    summary="keep each edge independently with probability p (§4.2.2)",
    example="uniform(p=0.5)",
)
class RandomUniformSampling(CompressionScheme):
    """Keep each edge independently with probability ``p``."""

    def __init__(self, p: float):
        self.p = check_probability(p, "p")

    def params(self) -> dict:
        return {"p": self.p}

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        rng = as_generator(seed)
        # Match the kernel's decision per edge: delete iff p < r, i.e. keep
        # iff r <= p.  Drawing one uniform per edge in id order makes the
        # fast path *bit-identical* to the serial kernel execution.
        r = rng.random(g.num_edges)
        keep = r <= self.p
        return CompressionResult(
            graph=g.keep_edges(keep),
            original=g,
            scheme=self.name,
            params=self.params(),
        )

    def make_kernel(self):
        return RandomUniformKernel()
