"""O(k)-spanners via low-diameter decomposition (§4.5.3).

The scheme the paper selected after surveying spanner constructions:
Miller–Peng–Xu.  Stage 1 decomposes the graph with exponential-shift LDD
(β = ln(n)/k); stage 2 keeps, per cluster, the shortest-path tree realizing
the decomposition, plus — per (cluster, neighboring cluster) — one
crossing edge.  The result is a subgraph with O(n^{1+1/k}) edges
(in expectation) and stretch O(k).

Fig. 5's spanner panel (mild gains for small k, a large jump past a
threshold), Table 5 (KL vs k), Table 6 (spanners destroy triangles), and
§7.2 (critical-edge preservation) all run through this class.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.registry import register_scheme
from repro.compress.mappings import LDDResult, beta_for_spanner, low_diameter_decomposition
from repro.core.kernels import SubgraphKernel
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["Spanner", "DeriveSpannerKernel"]


class DeriveSpannerKernel(SubgraphKernel):
    """Listing 1, lines 27–33: keep a spanning tree + one edge per
    neighboring subgraph, delete the rest.

    The intra-cluster spanning tree comes from ``sg.params
    ["ldd_parent_edges"]`` (the SSSP tree the mapping construction already
    built — recomputing it per kernel would duplicate stage-1 work).
    """

    name = "derive_spanner"

    def __call__(self, subgraph, sg) -> None:
        parent_edges = sg.param("ldd_parent_edges")
        keep = set()
        for v in subgraph.vertices:
            e = parent_edges[v]
            if e >= 0:
                keep.add(int(e))
        # Delete intra-cluster non-tree edges.
        for e in subgraph.internal_edge_ids():
            if int(e) not in keep:
                sg.delete_edge_id(int(e))
        # Keep only the first out-edge per neighboring subgraph.
        out_eids, neighbor_clusters = subgraph.out_edges()
        seen: set[int] = set()
        for e, c in zip(out_eids, neighbor_clusters):
            if int(c) in seen:
                sg.delete_edge_id(int(e))
            else:
                seen.add(int(c))


@register_scheme(
    "spanner",
    positional="k",
    summary="LDD cluster trees + one crossing edge per cluster pair; O(k) stretch (§4.5.3)",
    example="spanner(k=8)",
)
class Spanner(CompressionScheme):
    """O(k)-spanner: larger k → smaller (sparser) spanner, larger stretch."""

    def __init__(self, k: float, *, weighted: bool = False):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        # Integer-valued k stays int through the spec round trip.
        self.k = int(k) if isinstance(k, int) and not isinstance(k, bool) else float(k)
        # Grow LDD waves along edge weights: per-cluster trees become
        # weighted shortest-path trees, improving weighted SSSP stretch.
        self.weighted = weighted

    def params(self) -> dict:
        return {"k": self.k, "weighted": self.weighted}

    def _decompose(self, g: CSRGraph, seed) -> LDDResult:
        return low_diameter_decomposition(
            g, beta_for_spanner(g, self.k), seed=seed, weighted=self.weighted
        )

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        rng = as_generator(seed)
        ldd = self._decompose(g, rng)
        keep = np.zeros(g.num_edges, dtype=bool)
        # 1. Intra-cluster SSSP-tree edges.
        tree_edges = ldd.parent_edge_ids[ldd.parent_edge_ids >= 0]
        keep[tree_edges] = True
        # 2. One crossing edge per unordered cluster pair, chosen as the
        #    smallest edge id — identical to the kernel, where both clusters
        #    of a pair scan the same crossing-edge set in ascending id order
        #    and therefore keep the same single edge.
        mp = ldd.mapping
        cs, cd = mp[g.edge_src], mp[g.edge_dst]
        crossing = np.flatnonzero(cs != cd)
        if len(crossing):
            C = np.int64(ldd.num_clusters)
            lo = np.minimum(cs[crossing], cd[crossing])
            hi = np.maximum(cs[crossing], cd[crossing])
            key = lo * C + hi
            order = np.lexsort((crossing, key))
            uniq, first = np.unique(key[order], return_index=True)
            keep[crossing[order][first]] = True
        compressed = g.keep_edges(keep)
        return CompressionResult(
            graph=compressed,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras={"mapping": ldd.mapping, "num_clusters": ldd.num_clusters},
        )

    # -- kernel path ------------------------------------------------------ #

    def make_kernel(self):
        return DeriveSpannerKernel()

    def mapping_fn(self):
        scheme = self

        def build(g: CSRGraph, sg, rng) -> np.ndarray:
            ldd = scheme._decompose(g, rng)
            sg.params["ldd_parent_edges"] = ldd.parent_edge_ids
            return ldd.mapping

        return build
