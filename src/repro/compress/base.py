"""Compression-scheme interface.

Every lossy compression scheme in the library is a
:class:`CompressionScheme` with **two interchangeable implementations**:

- ``compress`` — a vectorized fast path (NumPy over the whole edge /
  triangle set at once), used by benchmarks;
- ``make_kernel`` (+ optional ``mapping_fn``) — the compression-kernel
  program exactly as the paper's programming model expresses it, executed
  by :class:`~repro.core.runtime.SlimGraphRuntime`.

``compress_via_kernels`` runs the kernel path; the test suite checks that
both paths agree (exactly where the random-draw order matches, otherwise
distributionally), which is the strongest evidence that the programming
model of §4 really expresses these schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.csr import CSRGraph

__all__ = ["CompressionResult", "CompressionScheme"]


@dataclass(frozen=True)
class CompressionResult:
    """A compressed graph plus provenance.

    ``extras`` carries scheme-specific artifacts (spanner cluster mapping,
    summarization corrections, low-rank factors, …).
    """

    graph: CSRGraph
    original: CSRGraph
    scheme: str
    params: dict
    extras: dict = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        """Edges remaining / edges original — the paper's ratio axis."""
        m = self.original.num_edges
        return self.graph.num_edges / m if m else 1.0

    @property
    def edge_reduction(self) -> float:
        """Fraction of edges removed (Fig. 6 y-axis)."""
        return 1.0 - self.compression_ratio

    @property
    def edges_removed(self) -> int:
        return self.original.num_edges - self.graph.num_edges


class CompressionScheme:
    """Base class for lossy compression schemes (Table 2 rows)."""

    name: str = "scheme"

    # -- fast path ------------------------------------------------------- #

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        """Vectorized compression; subclasses must implement."""
        raise NotImplementedError

    # -- kernel path ------------------------------------------------------ #

    def make_kernel(self):
        """The compression-kernel program for this scheme (or None if the
        scheme is not expressible as a single kernel, e.g. low-rank)."""
        return None

    def mapping_fn(self):
        """Vertex→cluster mapping builder for subgraph kernels (§4.5.2)."""
        return None

    def kernel_params(self) -> dict:
        """Parameters stored into SG for the kernel path."""
        return dict(self.params())

    def params(self) -> dict:
        """The scheme's parameter dictionary (for reports)."""
        return {}

    def compress_via_kernels(
        self,
        g: CSRGraph,
        *,
        seed=None,
        backend: str = "serial",
        num_chunks: int | None = None,
    ) -> CompressionResult:
        """Compress by actually executing the kernel program."""
        kernel = self.make_kernel()
        if kernel is None:
            raise NotImplementedError(f"{self.name} has no kernel program")
        from repro.core.runtime import SlimGraphRuntime

        runtime = SlimGraphRuntime(
            kernel,
            mapping_fn=self.mapping_fn(),
            params=self.kernel_params(),
            backend=backend,
            num_chunks=num_chunks,
        )
        result = runtime.run(g, seed=seed)
        return CompressionResult(
            graph=result.graph,
            original=g,
            scheme=self.name + "+kernels",
            params=self.params(),
            extras={"rounds": result.rounds},
        )

    def __call__(self, g: CSRGraph, *, seed=None) -> CSRGraph:
        """Convenience: scheme(graph) -> compressed graph."""
        return self.compress(g, seed=seed).graph

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"
