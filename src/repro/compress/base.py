"""Compression-scheme interface.

Every lossy compression scheme in the library is a
:class:`CompressionScheme` with **two interchangeable implementations**:

- ``compress`` — a vectorized fast path (NumPy over the whole edge /
  triangle set at once), used by benchmarks;
- ``make_kernel`` (+ optional ``mapping_fn``) — the compression-kernel
  program exactly as the paper's programming model expresses it, executed
  by :class:`~repro.core.runtime.SlimGraphRuntime`.

``compress_via_kernels`` runs the kernel path; the test suite checks that
both paths agree (exactly where the random-draw order matches, otherwise
distributionally), which is the strongest evidence that the programming
model of §4 really expresses these schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.compress.spec import SchemeSpec, _freeze
from repro.graphs.csr import CSRGraph

__all__ = ["CompressionResult", "CompressionScheme", "StageRecord"]


@dataclass(frozen=True)
class StageRecord:
    """Provenance of one compression stage, kept in result lineages."""

    scheme: str
    params: dict
    vertices_in: int
    vertices_out: int
    edges_in: int
    edges_out: int

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "params": dict(self.params),
            "vertices_in": self.vertices_in,
            "vertices_out": self.vertices_out,
            "edges_in": self.edges_in,
            "edges_out": self.edges_out,
        }


@dataclass(frozen=True)
class CompressionResult:
    """A compressed graph plus provenance.

    ``extras`` carries scheme-specific artifacts (spanner cluster mapping,
    summarization corrections, low-rank factors, …).  ``lineage`` records
    the stage-by-stage provenance: one :class:`StageRecord` per applied
    scheme (auto-populated for single-scheme results; ``Chain`` results
    concatenate the records of every stage).
    """

    graph: CSRGraph
    original: CSRGraph
    scheme: str
    params: dict
    extras: dict = field(default_factory=dict)
    lineage: tuple = ()

    def __post_init__(self):
        if not self.lineage:
            record = StageRecord(
                scheme=self.scheme,
                params=dict(self.params),
                vertices_in=self.original.n,
                vertices_out=self.graph.n,
                edges_in=self.original.num_edges,
                edges_out=self.graph.num_edges,
            )
            object.__setattr__(self, "lineage", (record,))
        else:
            object.__setattr__(self, "lineage", tuple(self.lineage))

    @property
    def compression_ratio(self) -> float:
        """Edges remaining / edges original — the paper's ratio axis."""
        m = self.original.num_edges
        return self.graph.num_edges / m if m else 1.0

    @property
    def edge_reduction(self) -> float:
        """Fraction of edges removed (Fig. 6 y-axis)."""
        return 1.0 - self.compression_ratio

    @property
    def edges_removed(self) -> int:
        return self.original.num_edges - self.graph.num_edges


class CompressionScheme:
    """Base class for lossy compression schemes (Table 2 rows)."""

    name: str = "scheme"

    # -- fast path ------------------------------------------------------- #

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        """Vectorized compression; subclasses must implement."""
        raise NotImplementedError

    # -- kernel path ------------------------------------------------------ #

    def make_kernel(self):
        """The compression-kernel program for this scheme (or None if the
        scheme is not expressible as a single kernel, e.g. low-rank)."""
        return None

    def mapping_fn(self):
        """Vertex→cluster mapping builder for subgraph kernels (§4.5.2)."""
        return None

    def kernel_params(self) -> dict:
        """Parameters stored into SG for the kernel path."""
        return dict(self.params())

    def params(self) -> dict:
        """The scheme's parameter dictionary.

        This is the scheme's *identity*: it drives ``__repr__``,
        ``__eq__``, ``__hash__``, and :meth:`spec`, so two schemes with
        equal class and params are interchangeable (deduplicatable in
        sweeps, usable as cache keys).
        """
        return {}

    def spec(self) -> SchemeSpec:
        """This scheme's declarative, serializable description.

        Round trip: ``build_scheme(scheme.spec()) == scheme``.
        """
        return SchemeSpec(self.name, self.params())

    def compress_via_kernels(
        self,
        g: CSRGraph,
        *,
        seed=None,
        backend: str = "serial",
        num_chunks: int | None = None,
    ) -> CompressionResult:
        """Compress by actually executing the kernel program."""
        kernel = self.make_kernel()
        if kernel is None:
            raise NotImplementedError(f"{self.name} has no kernel program")
        from repro.core.runtime import SlimGraphRuntime

        runtime = SlimGraphRuntime(
            kernel,
            mapping_fn=self.mapping_fn(),
            params=self.kernel_params(),
            backend=backend,
            num_chunks=num_chunks,
        )
        result = runtime.run(g, seed=seed)
        return CompressionResult(
            graph=result.graph,
            original=g,
            scheme=self.name + "+kernels",
            params=self.params(),
            extras={"rounds": result.rounds},
        )

    def __call__(self, g: CSRGraph, *, seed=None) -> CSRGraph:
        """Convenience: scheme(graph) -> compressed graph."""
        return self.compress(g, seed=seed).graph

    # -- composition ------------------------------------------------------- #

    def __or__(self, other) -> "CompressionScheme":
        """``s1 | s2``: compose schemes into a sequential pipeline."""
        from repro.compress.chain import Chain

        return Chain([self, other])

    # -- identity (driven by params()) ------------------------------------- #

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(other) is not type(self):
            return NotImplemented
        return self.params() == other.params()

    def __hash__(self) -> int:
        return hash((type(self), _freeze(self.params())))
