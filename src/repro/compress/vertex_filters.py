"""Single-vertex kernels: low-degree vertex removal (§4.4).

Removing degree-0 and degree-1 vertices preserves betweenness centrality
exactly for the surviving vertices (degree-1 vertices contribute no
shortest paths between higher-degree vertices) and never changes the MST
weight by more than the removed pendant edges.  Applied iteratively it
prunes whole pendant trees (``max_rounds > 1``).
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.mappings import relabel_mapping
from repro.compress.registry import register_scheme
from repro.core.kernels import VertexKernel
from repro.graphs.csr import CSRGraph

__all__ = ["LowDegreeVertexRemoval", "LowDegreeKernel"]


class LowDegreeKernel(VertexKernel):
    """Listing 1, lines 24–25: drop vertices with degree 0 or 1."""

    name = "low_degree"

    def __call__(self, v, sg) -> None:
        if v.deg in (0, 1):
            sg.delete(v)


@register_scheme(
    "low_degree",
    summary="remove degree ≤ max_degree vertices, optionally to a fixpoint (§4.4)",
    example="low_degree(max_degree=1)",
)
class LowDegreeVertexRemoval(CompressionScheme):
    """Remove degree ≤ ``max_degree`` vertices, optionally to a fixpoint.

    ``rounds=1`` is the paper's kernel; ``rounds=None`` iterates until no
    low-degree vertex remains (pendant-tree peeling).
    """

    def __init__(self, *, max_degree: int = 1, rounds: int | None = 1, relabel: bool = False):
        if max_degree < 0:
            raise ValueError("max_degree must be >= 0")
        self.max_degree = max_degree
        self.rounds = rounds
        self.relabel = relabel

    def params(self) -> dict:
        return {"max_degree": self.max_degree, "rounds": self.rounds, "relabel": self.relabel}

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        current = g
        removed_total = 0
        done_rounds = 0
        # Original id -> current compacted id (-1 once dropped), composed
        # round by round; the alignment provenance for relabel=True.
        mapping = np.arange(g.n, dtype=np.int64)
        limit = self.rounds if self.rounds is not None else 1 << 30
        while done_rounds < limit:
            done_rounds += 1
            victims = np.flatnonzero(current.degrees <= self.max_degree)
            # Degree-0 vertices are only "removed" when relabeling; without
            # relabeling they are already isolated and stay put.
            if not self.relabel:
                victims = victims[current.degrees[victims] > 0]
            if len(victims) == 0:
                break
            removed_total += len(victims)
            if self.relabel:
                round_map = relabel_mapping(current.n, victims)
                alive = mapping >= 0
                mapping[alive] = round_map[mapping[alive]]
            current = current.remove_vertices(victims, relabel=self.relabel)
            if self.relabel is False and self.max_degree == 0:
                break
        extras = {"vertices_removed": removed_total, "rounds": done_rounds}
        if self.relabel:
            extras["mapping"] = mapping
        return CompressionResult(
            graph=current,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras=extras,
        )

    def make_kernel(self):
        return LowDegreeKernel()
