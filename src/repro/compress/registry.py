"""Name-based scheme construction.

The benchmark harness and examples refer to schemes by the labels the
paper's figures use (``"uniform(p=0.5)"``, ``"EO-0.8-1-TR"``,
``"spanner(k=32)"``); this registry turns those strings into configured
scheme objects.
"""

from __future__ import annotations

import re

from repro.compress.base import CompressionScheme
from repro.compress.cut_sparsifier import CutSparsifier
from repro.compress.lowrank import ClusteredLowRankApproximation
from repro.compress.sampling import RandomVertexSampling, RandomWalkSampling
from repro.compress.spanner import Spanner
from repro.compress.spectral import SpectralSparsifier
from repro.compress.summarization import LossySummarization
from repro.compress.triangle_reduction import TriangleReduction
from repro.compress.uniform import RandomUniformSampling
from repro.compress.vertex_filters import LowDegreeVertexRemoval

__all__ = ["make_scheme", "SCHEME_FACTORIES"]

SCHEME_FACTORIES = {
    "uniform": RandomUniformSampling,
    "spectral": SpectralSparsifier,
    "tr": TriangleReduction,
    "triangle_reduction": TriangleReduction,
    "spanner": Spanner,
    "summarization": LossySummarization,
    "low_degree": LowDegreeVertexRemoval,
    "cut_sparsifier": CutSparsifier,
    "lowrank": ClusteredLowRankApproximation,
    "vertex_sampling": RandomVertexSampling,
    "random_walk_sampling": RandomWalkSampling,
}

# Paper-style TR labels: "0.5-1-TR", "EO-0.8-1-TR", "CT-0.5-1-TR".
_TR_LABEL = re.compile(r"^(?:(EO|CT)-)?([0-9.]+)-([12])-TR$", re.IGNORECASE)


def make_scheme(spec: str, **overrides) -> CompressionScheme:
    """Construct a scheme from a paper-style label or ``name(key=value,…)``.

    Examples
    --------
    >>> make_scheme("uniform(p=0.5)").p
    0.5
    >>> make_scheme("EO-0.8-1-TR").variant
    'edge_once'
    >>> make_scheme("spanner(k=32)").k
    32.0
    """
    spec = spec.strip()
    tr = _TR_LABEL.match(spec)
    if tr:
        prefix, p, x = tr.groups()
        variant = {"EO": "edge_once", "CT": "count_triangles", None: "basic"}[
            prefix.upper() if prefix else None
        ]
        return TriangleReduction(float(p), x=int(x), variant=variant, **overrides)
    m = re.match(r"^(\w+)\s*(?:\((.*)\))?$", spec)
    if not m:
        raise ValueError(f"cannot parse scheme spec {spec!r}")
    name, args = m.groups()
    name = name.lower()
    if name not in SCHEME_FACTORIES:
        raise ValueError(f"unknown scheme {name!r}; known: {sorted(SCHEME_FACTORIES)}")
    kwargs = dict(overrides)
    if args:
        for part in args.split(","):
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                parsed = int(value)
            except ValueError:
                try:
                    parsed = float(value)
                except ValueError:
                    parsed = {"true": True, "false": False}.get(value.lower(), value)
            kwargs[key] = parsed
    factory = SCHEME_FACTORIES[name]
    # First positional parameter by convention (p / epsilon / k / rank).
    positional = {"uniform": "p", "spectral": "p", "tr": "p", "triangle_reduction": "p",
                  "spanner": "k", "summarization": "epsilon", "cut_sparsifier": "epsilon",
                  "lowrank": "rank", "vertex_sampling": "p",
                  "random_walk_sampling": "target_fraction"}.get(name)
    if positional and positional in kwargs:
        first = kwargs.pop(positional)
        return factory(first, **kwargs)
    return factory(**kwargs)
