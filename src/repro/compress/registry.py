"""The open compression-scheme registry.

Schemes declare themselves with the :func:`register_scheme` class
decorator::

    @register_scheme("spanner", positional="k",
                     summary="LDD spanning trees + one crossing edge",
                     example="spanner(k=8)")
    class Spanner(CompressionScheme):
        ...

Registration makes a scheme constructible from any spec surface —
``make_scheme("spanner(k=8)")``, ``SchemeSpec.parse(...)``, a JSON dict —
without the registry having to know about the class up front, so external
code can add schemes the same way the ~11 built-ins do.

:func:`make_scheme` is kept as the historical entry point; it is now a
thin shim over :func:`build_scheme`, which accepts spec strings (including
the paper's TR labels and ``|`` pipelines), :class:`SchemeSpec` objects,
or an already-configured scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.compress.base import CompressionScheme
from repro.compress.spec import SchemeSpec
from repro.utils.registry import AliasNamespace

__all__ = [
    "SchemeEntry",
    "register_scheme",
    "unregister_scheme",
    "registered_schemes",
    "get_entry",
    "resolve_name",
    "positional_param",
    "build_scheme",
    "make_scheme",
    "SCHEME_FACTORIES",
]


@dataclass(frozen=True)
class SchemeEntry:
    """Everything the registry knows about one scheme."""

    name: str
    factory: type
    positional: str | None = None
    aliases: tuple[str, ...] = ()
    summary: str = ""
    example: str = ""


_NAMESPACE = AliasNamespace(
    "scheme",
    describe=lambda entry: entry.factory.__qualname__,
    # Re-decorating the same class (module reload) is idempotent.
    same=lambda old, new: old.factory.__qualname__ == new.factory.__qualname__,
)
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in scheme modules so their decorators run.

    Lazy so ``repro.compress.registry`` can be imported by the scheme
    modules themselves without a cycle; triggered by every lookup.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.compress.chain  # noqa: F401
    import repro.compress.cut_sparsifier  # noqa: F401
    import repro.compress.lowrank  # noqa: F401
    import repro.compress.sampling  # noqa: F401
    import repro.compress.spanner  # noqa: F401
    import repro.compress.spectral  # noqa: F401
    import repro.compress.summarization  # noqa: F401
    import repro.compress.triangle_reduction  # noqa: F401
    import repro.compress.uniform  # noqa: F401
    import repro.compress.vertex_filters  # noqa: F401


def register_scheme(
    name: str,
    *,
    positional: str | None = None,
    aliases: tuple[str, ...] | list[str] = (),
    summary: str = "",
    example: str = "",
):
    """Class decorator adding a :class:`CompressionScheme` to the registry.

    Parameters
    ----------
    name:
        Canonical registry name; also assigned to ``cls.name``.
    positional:
        The conventional first parameter (``p`` / ``k`` / ``epsilon`` /
        ``rank``): bare values in specs (``"spanner(8)"``) bind to it, and
        it is passed positionally at construction.
    aliases:
        Additional names resolving to this scheme (e.g. ``"tr"``).
    summary, example:
        One-line description and a representative spec string, used by
        docs, tests, and the README scheme table.
    """

    def decorator(cls):
        key = name.lower()
        entry = SchemeEntry(
            name=key,
            factory=cls,
            positional=positional,
            aliases=tuple(a.lower() for a in aliases),
            summary=summary,
            example=example or key,
        )
        _NAMESPACE.register(name, entry.aliases, entry)
        cls.name = key
        return cls

    return decorator


def unregister_scheme(name: str) -> None:
    """Remove a scheme (and its aliases) from the registry."""
    _ensure_builtins()
    _NAMESPACE.unregister(name)


def resolve_name(name: str) -> str | None:
    """Canonical name for ``name`` (alias-aware), or None if unknown."""
    _ensure_builtins()
    return _NAMESPACE.resolve(name)


def positional_param(name: str) -> str | None:
    """The registered positional parameter of ``name``, if any."""
    key = resolve_name(name)
    return _NAMESPACE.entry_of(key).positional if key else None


def get_entry(name: str) -> SchemeEntry:
    _ensure_builtins()
    return _NAMESPACE.get_known(name)


def registered_schemes() -> dict[str, SchemeEntry]:
    """Canonical name -> entry, for iteration (docs, round-trip tests)."""
    _ensure_builtins()
    return _NAMESPACE.items()


def build_scheme(spec, **overrides) -> CompressionScheme:
    """Construct a configured scheme from any spec surface.

    ``spec`` may be a spec string (named form, paper-style TR label, or a
    ``|`` pipeline), a :class:`SchemeSpec`, or an existing scheme (returned
    unchanged, for idempotent call sites).
    """
    _ensure_builtins()
    if isinstance(spec, CompressionScheme) or (
        not isinstance(spec, (str, SchemeSpec)) and hasattr(spec, "compress")
    ):
        # Configured scheme (or duck-typed object): pass through unchanged.
        if overrides:
            raise ValueError("cannot apply overrides to an existing scheme")
        return spec
    if isinstance(spec, str):
        spec = SchemeSpec.parse(spec)
    if not isinstance(spec, SchemeSpec):
        raise TypeError(f"expected spec string, SchemeSpec, or scheme; got {spec!r}")
    if spec.stages:
        from repro.compress.chain import Chain

        if overrides:
            raise ValueError("overrides are not supported for chain specs")
        return Chain([build_scheme(stage) for stage in spec.stages])
    entry = get_entry(spec.name)
    kwargs = {**spec.params, **overrides}
    if entry.positional and entry.positional in kwargs:
        first = kwargs.pop(entry.positional)
        return entry.factory(first, **kwargs)
    return entry.factory(**kwargs)


def make_scheme(spec, **overrides) -> CompressionScheme:
    """Construct a scheme from a paper-style label or ``name(key=value,…)``.

    Back-compat shim over :func:`build_scheme` (the registry is the source
    of truth; this name predates it and remains the documented entry).

    Examples
    --------
    >>> make_scheme("uniform(p=0.5)").p
    0.5
    >>> make_scheme("EO-0.8-1-TR").variant
    'edge_once'
    >>> make_scheme("spanner(k=32)").k
    32
    """
    return build_scheme(spec, **overrides)


class _FactoriesView(Mapping):
    """Live alias->factory mapping, kept for back compatibility with the
    historical ``SCHEME_FACTORIES`` dict (reflects late registrations)."""

    def __getitem__(self, key: str) -> type:
        canonical = resolve_name(key)
        if canonical is None:
            raise KeyError(key)
        return _NAMESPACE.entry_of(canonical).factory

    def __iter__(self):
        _ensure_builtins()
        return iter(_NAMESPACE.known_names())

    def __len__(self) -> int:
        _ensure_builtins()
        return len(_NAMESPACE)

    def __repr__(self) -> str:
        _ensure_builtins()
        return f"SCHEME_FACTORIES({_NAMESPACE.known_names()})"


SCHEME_FACTORIES = _FactoriesView()
