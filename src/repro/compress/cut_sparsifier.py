"""Cut sparsification à la Benczúr–Karger (§4.6 baseline).

The paper classifies cut sparsifiers as "a specific case of spectral
sparsification" and keeps them outside the core kernel set; we implement
them as the comparison baseline.  Edges are sampled with probability
inversely proportional to their *strength*; we estimate strengths with
Nagamochi–Ibaraki forest decompositions (edge e in the i-th maximal
spanning forest has connectivity ≥ i), the standard practical surrogate
for exact strengths.  Sampled edges are reweighted 1/p_e so cut values are
preserved in expectation.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.mst import UnionFind
from repro.compress.base import CompressionResult, CompressionScheme
from repro.compress.registry import register_scheme
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["CutSparsifier", "ni_forest_indices"]


def ni_forest_indices(g: CSRGraph, max_forests: int | None = None) -> np.ndarray:
    """Nagamochi–Ibaraki forest index per edge (1-based).

    Forest i is a maximal spanning forest of the edges not used by forests
    1..i-1; the index of the forest containing e lower-bounds the edge
    connectivity between its endpoints.
    """
    if g.directed:
        raise ValueError("cut sparsification expects an undirected graph")
    m = g.num_edges
    index = np.zeros(m, dtype=np.int64)
    remaining = np.arange(m, dtype=np.int64)
    level = 0
    limit = max_forests if max_forests is not None else m
    while len(remaining) and level < limit:
        level += 1
        uf = UnionFind(g.n)
        leftover = []
        for e in remaining:
            if uf.union(int(g.edge_src[e]), int(g.edge_dst[e])):
                index[e] = level
            else:
                leftover.append(e)
        remaining = np.array(leftover, dtype=np.int64)
    # Anything past the limit inherits the deepest level + 1.
    if len(remaining):
        index[remaining] = level + 1
    return index


@register_scheme(
    "cut_sparsifier",
    positional="epsilon",
    summary="Benczúr–Karger sampling by NI edge strength; cuts within 1±ε (§4.6)",
    example="cut_sparsifier(epsilon=0.5)",
)
class CutSparsifier(CompressionScheme):
    """Keep edge e with p_e = min(1, c/(ε²·k_e)); reweight kept edges.

    ``k_e`` is the NI strength estimate; ``c`` absorbs the O(log n) factor
    of the Benczúr–Karger theorem and is exposed for experiments.
    """

    def __init__(self, epsilon: float, *, c: float = 1.0, max_forests: int = 64):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        self.epsilon = float(epsilon)
        self.c = float(c)
        self.max_forests = max_forests

    def params(self) -> dict:
        return {"epsilon": self.epsilon, "c": self.c, "max_forests": self.max_forests}

    def compress(self, g: CSRGraph, *, seed=None) -> CompressionResult:
        rng = as_generator(seed)
        strength = ni_forest_indices(g, self.max_forests).astype(np.float64)
        import math

        keep_prob = np.minimum(
            1.0, self.c * math.log(max(g.n, 2)) / (self.epsilon**2 * strength)
        )
        keep = rng.random(g.num_edges) <= keep_prob
        compressed = g.keep_edges(keep)
        base = (
            g.edge_weights[keep]
            if g.is_weighted
            else np.ones(int(keep.sum()), dtype=np.float64)
        )
        compressed = compressed.with_weights(base / keep_prob[keep])
        return CompressionResult(
            graph=compressed,
            original=g,
            scheme=self.name,
            params=self.params(),
            extras={"strengths": strength},
        )
