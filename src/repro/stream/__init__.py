"""Streaming & temporal graphs: deltas, CSR generations, incremental
recompression.

The subsystem has three tiers:

- :mod:`repro.stream.delta` — the validated, canonicalized
  :class:`EdgeDelta` batch model with stable content-addressed ids and
  JSON/NPZ/text round trips;
- :mod:`repro.stream.ingest` — :class:`GraphStream`, which applies delta
  batches through the sort-free CSR fast paths to produce immutable
  generations plus a fingerprint-linked ledger;
- :mod:`repro.stream.incremental` — maintainers that repair compressed
  outputs (spanner, EO triangle reduction, low-degree removal) in the
  delta-touched neighborhood instead of recompressing from scratch.

``python -m repro.stream replay <stream-file>`` drives all three.
"""

from repro.stream.delta import EdgeDelta, read_stream, write_stream
from repro.stream.incremental import (
    IncrementalLowDegree,
    IncrementalMaintainer,
    IncrementalSpanner,
    IncrementalTriangleReduction,
    maintainer_for,
)
from repro.stream.ingest import GenerationRecord, GraphStream, apply_delta

__all__ = [
    "EdgeDelta",
    "read_stream",
    "write_stream",
    "GenerationRecord",
    "GraphStream",
    "apply_delta",
    "IncrementalMaintainer",
    "IncrementalSpanner",
    "IncrementalTriangleReduction",
    "IncrementalLowDegree",
    "maintainer_for",
]
