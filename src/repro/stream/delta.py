"""The validated, canonicalized edge-delta batch model.

A temporal graph is a base graph plus a sequence of **delta batches**;
each batch groups edge *inserts*, edge *deletes*, and *weight updates*
that commit together into one new CSR generation
(:mod:`repro.stream.ingest`).  :class:`EdgeDelta` is that batch as a
value object:

- **canonical** — endpoints are ordered ``lo < hi`` for undirected
  deltas, every op set is sorted lexicographically, and arrays are
  ``int64``/``float64``, so two batches describing the same edit compare
  (and hash) equal regardless of input order;
- **validated** — self-loops, negative endpoints, duplicate entries
  within an op set, and edges appearing in more than one op set are all
  rejected at construction with the offender named.  Batch semantics are
  therefore unambiguous: deletes apply first, then weight updates, then
  inserts, and no edge can be touched twice in one batch;
- **identified** — :attr:`EdgeDelta.delta_id` is a SHA-256 of the
  canonical content (same construction as
  :func:`repro.runner.fingerprint.graph_fingerprint`), giving the
  generation ledger a stable content-addressed link between parent and
  child fingerprints;
- **portable** — lossless JSON (:meth:`to_dict` / :meth:`from_dict`) and
  binary NPZ (:meth:`save_npz` / :meth:`load_npz`) round trips.

The text **stream file** format (:func:`read_stream`, :func:`write_stream`)
rides the hardened edge-list dialect of :mod:`repro.graphs.edgelist`
(blank lines, CRLF, ``#``/``%`` comments, named-offender row errors):

.. code-block:: text

    # repro edge stream: directed=0
    + u v [w]        inserts
    - u v            deletes
    = u v w          weight updates
    commit [n=N]     end of batch (optionally grow the vertex set to N)

A trailing batch without ``commit`` is committed implicitly.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graphs.edgelist import iter_edge_rows, parse_edge_row

__all__ = ["EdgeDelta", "read_stream", "write_stream"]

#: Bumps when the delta-id formula or the NPZ layout changes.
DELTA_SCHEMA_VERSION = 1
_DELTA_ID_TAG = b"repro-edge-delta-v1"

_OP_NAMES = ("insert", "delete", "update")


def _as_endpoints(pairs, op: str) -> tuple[np.ndarray, np.ndarray]:
    pairs = list(pairs) if pairs is not None else []
    if not pairs:
        z = np.empty(0, dtype=np.int64)
        return z, z.copy()
    src = np.asarray([p[0] for p in pairs], dtype=np.int64)
    dst = np.asarray([p[1] for p in pairs], dtype=np.int64)
    return src, dst


@dataclass(frozen=True, eq=False)
class EdgeDelta:
    """One canonical batch of edge edits (inserts, deletes, weight updates).

    Build through :meth:`build` (which accepts pair lists and
    canonicalizes) or the constructor with endpoint arrays; both validate.
    ``num_vertices`` optionally grows the vertex set of the graph the
    batch applies to (it can never shrink it — see
    :meth:`repro.graphs.csr.CSRGraph.insert_edges`).
    """

    insert_src: np.ndarray
    insert_dst: np.ndarray
    insert_weights: np.ndarray | None
    delete_src: np.ndarray
    delete_dst: np.ndarray
    update_src: np.ndarray
    update_dst: np.ndarray
    update_weights: np.ndarray
    directed: bool = False
    num_vertices: int | None = None
    _delta_id: str = field(default="", compare=False, repr=False)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        *,
        inserts=None,
        deletes=None,
        updates=None,
        directed: bool = False,
        num_vertices: int | None = None,
    ) -> "EdgeDelta":
        """Build a delta from edit lists.

        ``inserts`` is a list of ``(u, v)`` or ``(u, v, w)`` tuples (all
        weighted or none), ``deletes`` a list of ``(u, v)``, ``updates``
        a list of ``(u, v, w)``.
        """
        inserts = list(inserts) if inserts is not None else []
        iw = None
        if inserts:
            widths = {len(t) for t in inserts}
            if widths == {3}:
                iw = np.asarray([t[2] for t in inserts], dtype=np.float64)
            elif widths != {2}:
                raise ValueError(
                    "inserts must be all (u, v) or all (u, v, w) tuples"
                )
        isrc, idst = _as_endpoints(inserts, "insert")
        dsrc, ddst = _as_endpoints(deletes, "delete")
        updates = list(updates) if updates is not None else []
        if updates and {len(t) for t in updates} != {3}:
            raise ValueError("updates must be (u, v, w) tuples")
        usrc, udst = _as_endpoints(updates, "update")
        uw = np.asarray([t[2] for t in updates], dtype=np.float64)
        return cls(
            insert_src=isrc,
            insert_dst=idst,
            insert_weights=iw,
            delete_src=dsrc,
            delete_dst=ddst,
            update_src=usrc,
            update_dst=udst,
            update_weights=uw,
            directed=directed,
            num_vertices=num_vertices,
        )

    @classmethod
    def empty(cls, *, directed: bool = False, num_vertices: int | None = None):
        return cls.build(directed=directed, num_vertices=num_vertices)

    def __post_init__(self):
        set_ = object.__setattr__
        ops = {}
        for op in _OP_NAMES:
            src = np.ascontiguousarray(
                getattr(self, f"{op}_src"), dtype=np.int64
            ).ravel()
            dst = np.ascontiguousarray(
                getattr(self, f"{op}_dst"), dtype=np.int64
            ).ravel()
            if src.shape != dst.shape:
                raise ValueError(f"{op} endpoint arrays differ in length")
            ops[op] = (src, dst)
        iw = self.insert_weights
        if iw is not None:
            iw = np.ascontiguousarray(iw, dtype=np.float64).ravel()
            if iw.shape != ops["insert"][0].shape:
                raise ValueError("insert_weights must match the insert count")
        uw = np.ascontiguousarray(self.update_weights, dtype=np.float64).ravel()
        if uw.shape != ops["update"][0].shape:
            raise ValueError("update_weights must match the update count")
        if self.num_vertices is not None and self.num_vertices < 0:
            raise ValueError(
                f"num_vertices must be >= 0, got {self.num_vertices}"
            )

        # Canonicalize: undirected endpoints lo < hi, each op set sorted.
        seen: dict[tuple[int, int], str] = {}
        for op in _OP_NAMES:
            src, dst = ops[op]
            loops = src == dst
            if loops.any():
                v = int(src[np.argmax(loops)])
                raise ValueError(f"{op} of self-loop ({v}, {v}) is not allowed")
            neg = (src < 0) | (dst < 0)
            if neg.any():
                i = int(np.argmax(neg))
                raise ValueError(
                    f"{op} endpoint of edge ({int(src[i])}, {int(dst[i])}) "
                    "is negative"
                )
            if self.num_vertices is not None and len(src):
                over = (src >= self.num_vertices) | (dst >= self.num_vertices)
                if over.any():
                    i = int(np.argmax(over))
                    raise ValueError(
                        f"{op} edge ({int(src[i])}, {int(dst[i])}) out of "
                        f"range for num_vertices={self.num_vertices}"
                    )
            if not self.directed and len(src):
                lo = np.minimum(src, dst)
                hi = np.maximum(src, dst)
                src, dst = lo, hi
            order = np.lexsort((dst, src)) if len(src) else np.empty(0, np.int64)
            src, dst = src[order], dst[order]
            if op == "insert" and iw is not None:
                iw = iw[order]
            if op == "update":
                uw = uw[order]
            dup = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
            if dup.any():
                i = int(np.argmax(dup)) + 1
                raise ValueError(
                    f"duplicate {op} of edge ({int(src[i])}, {int(dst[i])})"
                )
            for u, v in zip(src.tolist(), dst.tolist()):
                other = seen.get((u, v))
                if other is not None:
                    raise ValueError(
                        f"edge ({u}, {v}) appears in both {other}s and "
                        f"{op}s; an edge may be touched by at most one op "
                        "per batch"
                    )
                seen[(u, v)] = op
            src.flags.writeable = False
            dst.flags.writeable = False
            set_(self, f"{op}_src", src)
            set_(self, f"{op}_dst", dst)
        if iw is not None:
            iw.flags.writeable = False
        uw.flags.writeable = False
        set_(self, "insert_weights", iw)
        set_(self, "update_weights", uw)
        set_(self, "_delta_id", self._compute_id())

    def _compute_id(self) -> str:
        h = hashlib.sha256()
        h.update(_DELTA_ID_TAG)
        h.update(
            struct.pack(
                "<?q", self.directed,
                -1 if self.num_vertices is None else int(self.num_vertices),
            )
        )
        for op in _OP_NAMES:
            src = getattr(self, f"{op}_src")
            dst = getattr(self, f"{op}_dst")
            h.update(struct.pack("<q", len(src)))
            h.update(src)
            h.update(dst)
        if self.insert_weights is not None:
            h.update(b"iw")
            h.update(self.insert_weights)
        h.update(b"uw")
        h.update(self.update_weights)
        return h.hexdigest()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def delta_id(self) -> str:
        """Stable content hash of the canonical batch."""
        return self._delta_id

    @property
    def num_inserts(self) -> int:
        return len(self.insert_src)

    @property
    def num_deletes(self) -> int:
        return len(self.delete_src)

    @property
    def num_updates(self) -> int:
        return len(self.update_src)

    @property
    def size(self) -> int:
        """Total touched edges — the churn numerator."""
        return self.num_inserts + self.num_deletes + self.num_updates

    @property
    def is_empty(self) -> bool:
        return self.size == 0 and self.num_vertices is None

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique endpoints of every op — the repair frontier."""
        return np.unique(
            np.concatenate(
                [
                    self.insert_src, self.insert_dst,
                    self.delete_src, self.delete_dst,
                    self.update_src, self.update_dst,
                ]
            )
        )

    def __eq__(self, other) -> bool:
        # The delta id hashes every canonical field, so two deltas are
        # equal exactly when their ids match (a dataclass-generated eq
        # would trip over elementwise ndarray comparison).
        if not isinstance(other, EdgeDelta):
            return NotImplemented
        return self._delta_id == other._delta_id

    def __hash__(self) -> int:
        return hash(self._delta_id)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"EdgeDelta(+{self.num_inserts} -{self.num_deletes} "
            f"={self.num_updates}, {kind}, id={self.delta_id[:12]})"
        )

    # ------------------------------------------------------------------ #
    # round trips
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-safe lossless representation."""
        out = {
            "schema_version": DELTA_SCHEMA_VERSION,
            "directed": self.directed,
            "num_vertices": self.num_vertices,
            "inserts": [
                list(t)
                for t in zip(self.insert_src.tolist(), self.insert_dst.tolist())
            ],
            "deletes": [
                list(t)
                for t in zip(self.delete_src.tolist(), self.delete_dst.tolist())
            ],
            "updates": [
                [u, v, w]
                for u, v, w in zip(
                    self.update_src.tolist(),
                    self.update_dst.tolist(),
                    self.update_weights.tolist(),
                )
            ],
        }
        if self.insert_weights is not None:
            out["insert_weights"] = self.insert_weights.tolist()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "EdgeDelta":
        version = data.get("schema_version", DELTA_SCHEMA_VERSION)
        if version != DELTA_SCHEMA_VERSION:
            raise ValueError(
                f"delta schema version {version} unsupported "
                f"(this build reads {DELTA_SCHEMA_VERSION})"
            )
        known = {
            "schema_version", "directed", "num_vertices",
            "inserts", "deletes", "updates", "insert_weights",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown delta fields: {sorted(unknown)}")
        inserts = [tuple(t) for t in data.get("inserts", [])]
        iw = data.get("insert_weights")
        if iw is not None:
            if len(iw) != len(inserts):
                raise ValueError("insert_weights must match the insert count")
            inserts = [(u, v, w) for (u, v), w in zip(inserts, iw)]
        return cls.build(
            inserts=inserts,
            deletes=[tuple(t) for t in data.get("deletes", [])],
            updates=[tuple(t) for t in data.get("updates", [])],
            directed=bool(data.get("directed", False)),
            num_vertices=data.get("num_vertices"),
        )

    def save_npz(self, path) -> Path:
        """Binary round trip (atomic write, like graph snapshots)."""
        from repro.utils.fileio import atomic_write

        arrays = {
            "version": np.int64(DELTA_SCHEMA_VERSION),
            "directed": np.bool_(self.directed),
            "num_vertices": np.int64(
                -1 if self.num_vertices is None else self.num_vertices
            ),
            "insert_src": self.insert_src,
            "insert_dst": self.insert_dst,
            "delete_src": self.delete_src,
            "delete_dst": self.delete_dst,
            "update_src": self.update_src,
            "update_dst": self.update_dst,
            "update_weights": self.update_weights,
        }
        if self.insert_weights is not None:
            arrays["insert_weights"] = self.insert_weights
        return atomic_write(path, lambda fh: np.savez(fh, **arrays))

    @classmethod
    def load_npz(cls, path) -> "EdgeDelta":
        with np.load(Path(path)) as data:
            try:
                version = int(data["version"])
            except KeyError:
                raise ValueError(f"{path} is not an edge-delta file") from None
            if version != DELTA_SCHEMA_VERSION:
                raise ValueError(
                    f"{path} has delta version {version}; "
                    f"this build reads {DELTA_SCHEMA_VERSION}"
                )
            nv = int(data["num_vertices"])
            return cls(
                insert_src=data["insert_src"],
                insert_dst=data["insert_dst"],
                insert_weights=(
                    data["insert_weights"] if "insert_weights" in data else None
                ),
                delete_src=data["delete_src"],
                delete_dst=data["delete_dst"],
                update_src=data["update_src"],
                update_dst=data["update_dst"],
                update_weights=data["update_weights"],
                directed=bool(data["directed"]),
                num_vertices=None if nv < 0 else nv,
            )


# --------------------------------------------------------------------- #
# the text stream-file format
# --------------------------------------------------------------------- #


def read_stream(path, *, directed: bool | None = None) -> list[EdgeDelta]:
    """Parse a text stream file into a list of delta batches.

    The dialect is the edge-list dialect plus one leading op token per
    row (``+`` insert / ``-`` delete / ``=`` weight update) and a
    ``commit`` row ending each batch; a bare ``u v [w]`` row is an
    insert, so a plain edge list is a valid one-batch stream.  The
    header comment may carry ``directed=``; an explicit ``directed``
    argument overrides it.
    """
    path = Path(path)
    header_directed = None
    with path.open() as f:
        raw_rows = []
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if line.startswith("#") and "directed=" in line:
                for tok in line.split():
                    if tok.startswith("directed="):
                        header_directed = bool(int(tok[9:]))
            raw_rows.append(raw)
    if directed is None:
        directed = bool(header_directed) if header_directed is not None else False

    deltas: list[EdgeDelta] = []
    inserts: list[tuple] = []
    deletes: list[tuple] = []
    updates: list[tuple] = []
    num_vertices: int | None = None

    def commit(lineno: int) -> None:
        nonlocal inserts, deletes, updates, num_vertices
        try:
            deltas.append(
                EdgeDelta.build(
                    inserts=inserts,
                    deletes=deletes,
                    updates=updates,
                    directed=directed,
                    num_vertices=num_vertices,
                )
            )
        except ValueError as err:
            raise ValueError(
                f"{path}:{lineno}: invalid batch committed here: {err}"
            ) from None
        inserts, deletes, updates = [], [], []
        num_vertices = None

    last_lineno = 0
    for lineno, line in iter_edge_rows(raw_rows, source=str(path)):
        last_lineno = lineno
        tokens = line.split()
        if tokens[0] == "commit":
            for tok in tokens[1:]:
                if tok.startswith("n="):
                    try:
                        num_vertices = int(tok[2:])
                    except ValueError:
                        raise ValueError(
                            f"{path}:{lineno}: malformed commit row {line!r} "
                            "(n= must be an integer)"
                        ) from None
                else:
                    raise ValueError(
                        f"{path}:{lineno}: malformed commit row {line!r} "
                        f"(unknown token {tok!r})"
                    )
            commit(lineno)
            continue
        op = "+"
        rest = line
        if tokens[0] in ("+", "-", "="):
            op = tokens[0]
            rest = line[len(tokens[0]):].strip()
        u, v, w = parse_edge_row(rest, lineno=lineno, source=str(path))
        if op == "+":
            inserts.append((u, v) if w is None else (u, v, w))
        elif op == "-":
            if w is not None:
                raise ValueError(
                    f"{path}:{lineno}: delete row {line!r} carries a weight"
                )
            deletes.append((u, v))
        else:
            if w is None:
                raise ValueError(
                    f"{path}:{lineno}: update row {line!r} needs a weight"
                )
            updates.append((u, v, w))
    if inserts or deletes or updates or num_vertices is not None:
        commit(last_lineno)
    return deltas


def write_stream(deltas, path, *, directed: bool | None = None) -> Path:
    """Write delta batches as a text stream file (read_stream's inverse)."""
    deltas = list(deltas)
    if directed is None:
        directed = deltas[0].directed if deltas else False
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        f.write(f"# repro edge stream: directed={int(directed)} ")
        f.write(f"batches={len(deltas)}\n")
        for delta in deltas:
            if delta.directed != directed:
                raise ValueError("all batches must share the stream's directedness")
            if delta.insert_weights is not None:
                for u, v, w in zip(
                    delta.insert_src, delta.insert_dst, delta.insert_weights
                ):
                    f.write(f"+ {u} {v} {float(w)!r}\n")
            else:
                for u, v in zip(delta.insert_src, delta.insert_dst):
                    f.write(f"+ {u} {v}\n")
            for u, v in zip(delta.delete_src, delta.delete_dst):
                f.write(f"- {u} {v}\n")
            for u, v, w in zip(
                delta.update_src, delta.update_dst, delta.update_weights
            ):
                f.write(f"= {u} {v} {float(w)!r}\n")
            if delta.num_vertices is not None:
                f.write(f"commit n={delta.num_vertices}\n")
            else:
                f.write("commit\n")
    return path
