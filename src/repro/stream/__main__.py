"""``python -m repro.stream`` — replay and synthesize edge streams.

Two subcommands:

``replay <stream-file>``
    Read a text stream file (:func:`repro.stream.delta.read_stream`),
    apply every batch through a :class:`~repro.stream.ingest.
    GraphStream`, and — with ``--maintain`` — keep incremental
    compressed outputs synchronized per generation.  Prints one line per
    generation; ``--out`` writes a JSON replay record (the generation
    ledger plus maintainer stats).

``synth``
    Write a deterministic synthetic stream file (base graph as the
    first batch, then churn batches of mixed inserts/deletes), the
    input CI's stream-smoke job and the docs quickstart replay.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.stream.delta import EdgeDelta, read_stream, write_stream
from repro.stream.incremental import maintainer_for
from repro.stream.ingest import GraphStream

__all__ = ["main", "synthesize_stream"]


def synthesize_stream(
    *,
    num_vertices: int = 200,
    batches: int = 5,
    churn: int = 20,
    seed: int = 0,
    weighted: bool = False,
) -> list[EdgeDelta]:
    """A deterministic stream: one base batch plus churn batches.

    The base is a powerlaw-cluster graph (triangle-rich, so TR has work
    to do); every later batch deletes ``churn/2`` random edges and
    inserts ``churn/2`` fresh ones (weighted streams also re-weight a
    few surviving edges).
    """
    from repro.graphs.generators import powerlaw_cluster

    rng = np.random.default_rng(seed)
    g = powerlaw_cluster(num_vertices, 3, 0.4, seed=int(rng.integers(2**31)))
    weights = (
        rng.uniform(0.5, 2.0, size=g.num_edges).round(3) if weighted else None
    )
    edges = set(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
    if weighted:
        inserts = [
            (u, v, float(w))
            for (u, v), w in zip(sorted(edges), weights)
        ]
    else:
        inserts = sorted(edges)
    deltas = [EdgeDelta.build(inserts=inserts, num_vertices=g.n)]

    for _ in range(batches - 1):
        pool = sorted(edges)
        half = max(churn // 2, 1)
        gone_idx = rng.choice(len(pool), size=min(half, len(pool)), replace=False)
        deletes = [pool[i] for i in sorted(gone_idx.tolist())]
        for p in deletes:
            edges.discard(p)
        new_edges: list = []
        tries = 0
        while len(new_edges) < half and tries < 50 * half:
            tries += 1
            u = int(rng.integers(num_vertices))
            v = int(rng.integers(num_vertices))
            if u == v:
                continue
            p = (min(u, v), max(u, v))
            if p in edges or p in deletes or p in {e[:2] for e in new_edges}:
                continue
            new_edges.append(
                (*p, round(float(rng.uniform(0.5, 2.0)), 3)) if weighted else p
            )
        edges.update(e[:2] if weighted else e for e in new_edges)
        updates = None
        if weighted and edges:
            survivors = sorted(edges - {e[:2] for e in new_edges})
            take = min(3, len(survivors))
            upd_idx = rng.choice(len(survivors), size=take, replace=False)
            updates = [
                (*survivors[i], round(float(rng.uniform(0.5, 2.0)), 3))
                for i in sorted(upd_idx.tolist())
            ]
        deltas.append(
            EdgeDelta.build(inserts=new_edges, deletes=deletes, updates=updates)
        )
    return deltas


def _cmd_synth(args) -> int:
    deltas = synthesize_stream(
        num_vertices=args.n,
        batches=args.batches,
        churn=args.churn,
        seed=args.seed,
        weighted=args.weighted,
    )
    path = write_stream(deltas, args.out)
    total = sum(d.size for d in deltas)
    print(f"wrote {len(deltas)} batches ({total} ops) to {path}")
    return 0


def _cmd_replay(args) -> int:
    deltas = read_stream(args.stream_file, directed=args.directed)
    if not deltas:
        print(f"{args.stream_file}: empty stream")
        return 1
    directed = deltas[0].directed
    weighted = deltas[0].insert_weights is not None
    stream = GraphStream(directed=directed, weighted=weighted)
    maintainers = [
        maintainer_for(spec, seed=args.seed, churn_threshold=args.churn_threshold)
        for spec in args.maintain
    ]
    base = stream.head
    for m in maintainers:
        m.attach(base)
    for delta in deltas:
        g = stream.apply(delta)
        parts = [
            f"gen {stream.generation}: n={g.n} m={g.num_edges} "
            f"(+{delta.num_inserts} -{delta.num_deletes} ={delta.num_updates})"
        ]
        for m in maintainers:
            m.update(delta, g)
            parts.append(f"{m.scheme_name}→{m.compressed.num_edges}")
        print("  ".join(parts))
    record = {
        "stream_file": str(args.stream_file),
        "generations": stream.generation,
        "head_fingerprint": stream.head_fingerprint,
        "ledger": stream.ledger(),
        "maintainers": [
            {
                "scheme": m.scheme_name,
                "params": m.params(),
                "edges_kept": m.compressed.num_edges,
                **m.stats,
            }
            for m in maintainers
        ],
    }
    print(
        f"replayed {stream.generation} generation(s); head "
        f"n={stream.head.n} m={stream.head.num_edges} "
        f"fingerprint={stream.head_fingerprint[:12]}"
    )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote replay record to {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream",
        description="Replay and synthesize edge-delta streams.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    replay = sub.add_parser("replay", help="replay a stream file")
    replay.add_argument("stream_file", help="text stream file to replay")
    replay.add_argument(
        "--maintain",
        action="append",
        default=[],
        metavar="SPEC",
        help="scheme spec to maintain incrementally (repeatable), "
        "e.g. 'spanner(k=4)' or 'EO-0.8-1-TR'",
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--churn-threshold",
        type=float,
        default=0.25,
        help="delta size / m above which maintainers fully recompress",
    )
    replay.add_argument(
        "--directed",
        action="store_true",
        default=None,
        help="force directed interpretation (default: stream header)",
    )
    replay.add_argument("--out", help="write a JSON replay record here")
    replay.set_defaults(fn=_cmd_replay)

    synth = sub.add_parser("synth", help="write a synthetic stream file")
    synth.add_argument("--out", required=True, help="stream file to write")
    synth.add_argument("--n", type=int, default=200, help="vertex count")
    synth.add_argument("--batches", type=int, default=5)
    synth.add_argument("--churn", type=int, default=20, help="ops per batch")
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--weighted", action="store_true")
    synth.set_defaults(fn=_cmd_synth)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
