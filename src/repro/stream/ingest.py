"""Applying delta batches: immutable CSR generations and their ledger.

:class:`GraphStream` turns a base graph plus a sequence of
:class:`~repro.stream.delta.EdgeDelta` batches into a chain of
**generations** — ordinary immutable :class:`~repro.graphs.csr.CSRGraph`
objects, each produced from its parent by the sort-free fast paths:

- deletes ride :meth:`~repro.graphs.csr.CSRGraph.delete_edges` (the
  masked O(m) ``keep_edges`` path from PR 4);
- weight updates ride :meth:`~repro.graphs.csr.CSRGraph.with_weights`
  (adjacency shared, weights copied);
- inserts ride the O(m + Δ) sorted-merge
  :meth:`~repro.graphs.csr.CSRGraph.insert_edges` — no lexsort over the
  parent's m edges, and bit-identical to a from-scratch rebuild.

Because every generation is a *new object*, the identity-keyed
:class:`~repro.graphs.analysis.AnalysisCache` gives mutation-free
invalidation for free: a triangle listing cached for generation ``i``
can never leak to generation ``i+1``.  The stream additionally
fingerprints each generation (:func:`~repro.runner.fingerprint.
graph_fingerprint`), which links it as a live carrier so snapshot
reloads adopt its cached analyses and the artifact store keys its sweep
cells by content.  The resulting **ledger** is a JSON-safe chain

    ``(index, delta_id, parent_fingerprint) -> fingerprint``

that makes any generation reproducible from the base fingerprint plus
the content-addressed delta ids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.triangles import edge_ids_of_pairs
from repro.faults.plan import fault_point
from repro.graphs.csr import CSRGraph
from repro.obs.metrics import counter, histogram
from repro.obs.spans import span
from repro.runner.fingerprint import graph_fingerprint
from repro.stream.delta import EdgeDelta

__all__ = ["GenerationRecord", "GraphStream", "apply_delta"]


@dataclass(frozen=True)
class GenerationRecord:
    """One ledger row: how a generation came to be."""

    index: int
    delta_id: str | None  # None for the base generation
    fingerprint: str
    parent_fingerprint: str | None
    num_vertices: int
    num_edges: int
    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    apply_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "delta_id": self.delta_id,
            "fingerprint": self.fingerprint,
            "parent_fingerprint": self.parent_fingerprint,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "updates": self.updates,
            "apply_seconds": self.apply_seconds,
        }


def apply_delta(g: CSRGraph, delta: EdgeDelta) -> CSRGraph:
    """One new immutable generation: ``g`` with ``delta`` applied.

    Op order is deletes → weight updates → inserts (the op sets are
    disjoint by :class:`EdgeDelta` construction, so the order is an
    implementation detail, not a semantic one).  Deleting or updating an
    edge that is not present, or updating weights of an unweighted
    graph, raises ``ValueError`` naming the offender.
    """
    if delta.directed != g.directed:
        kind = "directed" if delta.directed else "undirected"
        gkind = "directed" if g.directed else "undirected"
        raise ValueError(f"cannot apply a {kind} delta to a {gkind} graph")

    if delta.num_deletes:
        try:
            ids = edge_ids_of_pairs(g, delta.delete_src, delta.delete_dst)
        except KeyError as err:
            raise ValueError(f"delete of a non-edge: {err.args[0]}") from None
        g = g.delete_edges(ids)

    if delta.num_updates:
        if not g.is_weighted:
            raise ValueError(
                "weight updates require a weighted graph; this graph is "
                "unweighted"
            )
        try:
            ids = edge_ids_of_pairs(g, delta.update_src, delta.update_dst)
        except KeyError as err:
            raise ValueError(f"update of a non-edge: {err.args[0]}") from None
        weights = g.edge_weights.copy()
        weights[ids] = delta.update_weights
        g = g.with_weights(weights)

    if delta.num_inserts or (
        delta.num_vertices is not None and delta.num_vertices > g.n
    ):
        # Growth-only: an explicit num_vertices wins, otherwise the
        # vertex set stretches just enough to cover inserted endpoints.
        n_new = max(g.n, delta.num_vertices or 0)
        if delta.num_inserts:
            n_new = max(
                n_new,
                int(delta.insert_src.max()) + 1,
                int(delta.insert_dst.max()) + 1,
            )
        g = g.insert_edges(
            delta.insert_src,
            delta.insert_dst,
            delta.insert_weights,
            num_vertices=n_new,
        )
    return g


class GraphStream:
    """A temporal graph: a head generation plus the ledger behind it.

    ``base`` may be an existing graph or ``None`` for an empty one (the
    usual shape of a replay, whose first batch builds the base);
    ``weighted`` only matters for the empty base.  The stream holds a
    strong reference to the head generation only — older generations are
    represented by their ledger rows (fingerprint + delta id) and stay
    alive exactly as long as some caller keeps them, which is what lets
    the analysis cache drop their entries with them.
    """

    def __init__(
        self,
        base: CSRGraph | None = None,
        *,
        directed: bool = False,
        weighted: bool = False,
    ) -> None:
        if base is None:
            base = CSRGraph.from_edges(
                0,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64) if weighted else None,
                directed=directed,
            )
        self._head = base
        self._records: list[GenerationRecord] = [
            GenerationRecord(
                index=0,
                delta_id=None,
                fingerprint=graph_fingerprint(base),
                parent_fingerprint=None,
                num_vertices=base.n,
                num_edges=base.num_edges,
            )
        ]

    # ------------------------------------------------------------------ #

    @property
    def head(self) -> CSRGraph:
        """The newest generation."""
        return self._head

    @property
    def generation(self) -> int:
        """Index of the head generation (base = 0)."""
        return len(self._records) - 1

    @property
    def records(self) -> tuple[GenerationRecord, ...]:
        return tuple(self._records)

    @property
    def head_fingerprint(self) -> str:
        return self._records[-1].fingerprint

    def ledger(self) -> list[dict]:
        """The generation chain as JSON-safe rows."""
        return [r.to_dict() for r in self._records]

    # ------------------------------------------------------------------ #

    def apply(self, delta: EdgeDelta) -> CSRGraph:
        """Apply one batch; returns (and makes head) the new generation."""
        parent = self._records[-1]
        start = time.perf_counter()
        with span("stream.apply", generation=parent.index + 1, delta=delta.size):
            # Chaos hook placed *before* any mutation: a faulted apply
            # must leave head and ledger exactly as they were, so the
            # caller can retry the same delta against the same state.
            fault_point(
                "stream.apply", generation=parent.index + 1, delta_id=delta.delta_id
            )
            g = apply_delta(self._head, delta)
        elapsed = time.perf_counter() - start
        counter("repro.stream.deltas_applied").inc()
        histogram("repro.stream.apply_seconds").observe(elapsed)
        self._head = g
        self._records.append(
            GenerationRecord(
                index=parent.index + 1,
                delta_id=delta.delta_id,
                fingerprint=graph_fingerprint(g),
                parent_fingerprint=parent.fingerprint,
                num_vertices=g.n,
                num_edges=g.num_edges,
                inserts=delta.num_inserts,
                deletes=delta.num_deletes,
                updates=delta.num_updates,
                apply_seconds=elapsed,
            )
        )
        return g

    def replay(self, deltas) -> CSRGraph:
        """Apply every batch in order; returns the final head."""
        for delta in deltas:
            self.apply(delta)
        return self._head
