"""Incremental recompression: repair compressed outputs under deltas.

A batch scheme recomputes its whole output for every new generation; at
streaming rates that wastes the work the delta did not touch.  Each
:class:`IncrementalMaintainer` here keeps just enough state about *why*
its compressed output looks the way it does to repair only the
delta-affected neighborhood, and guarantees the repaired output satisfies
the **same** :mod:`repro.theory.bounds` contracts the batch scheme
declares (checked by :func:`repro.verify.properties.
incremental_equivalence`):

- :class:`IncrementalSpanner` — state is the LDD clustering, the
  per-cluster SSSP-tree edges, and the kept crossing edge per cluster
  pair.  Only a delete that removes a *tree* edge changes anything the
  output depends on (an intra-cluster non-tree edge or a non-chosen
  crossing edge is invisible to it); such a delete **splits** its
  cluster along the tree cut — each surviving tree component still
  spans its vertex set with diameter no larger than before, so the
  components simply become clusters of their own, with no LDD run at
  all during repair.  New vertices become singleton clusters, crossing
  entries whose cluster pair was renamed by a split are re-keyed (the
  kept edge is unchanged), and crossing choices are re-picked only for
  pairs that lost their chosen edge or involve a split-off cluster.  A
  surviving tree still spans its cluster in the new generation, so
  connectivity — the deterministic ``spanner_components`` contract — is
  preserved exactly as in the batch construction, and the unchanged
  tree diameters keep the stretch argument intact.  The compressed
  output itself is advanced by the same pair-level diff, never rebuilt.
  The win is large because batch LDD is a Python-heap Dijkstra over
  all n.
- :class:`IncrementalTriangleReduction` (EO p-1-TR) — state is the set
  of *considered* edge pairs (each edge gets one removal lottery,
  §4.3's edge-once rule), the TR-deleted pairs, and for each deleted
  pair the two triangle partners that protect its endpoints'
  connectivity.  Graph-deletes drop state and **restore** any
  TR-deleted edge that loses a protecting partner (without the restore,
  a later graph-delete of a partner could disconnect the output where a
  full recompress of the new generation would not — breaking the
  ``eo_tr_components`` contract).  Inserts discover only the triangles
  containing an inserted edge (sorted-neighbor intersection) and run
  the same lottery on them.  The win is skipping the O(m^{3/2}) full
  triangle listing.
- :class:`IncrementalLowDegree` — the deterministic arm: degrees are
  maintained in O(Δ), and the output is **bit-identical** to the batch
  ``low_degree`` compress of the new generation, which gives the
  metamorphic invariant an exact-equality case.

Past a churn threshold (default 25% of edges touched per batch) every
maintainer falls back to a full recompress — repair state degrades
gracefully into the batch path it specializes.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.algorithms.triangles import edge_ids_of_pairs
from repro.compress.base import CompressionResult
from repro.compress.mappings import (
    beta_for_spanner,
    low_diameter_decomposition,
)
from repro.compress.registry import build_scheme
from repro.compress.spanner import Spanner
from repro.compress.triangle_reduction import TriangleReduction
from repro.compress.vertex_filters import LowDegreeVertexRemoval
from repro.graphs.csr import CSRGraph
from repro.obs.metrics import counter, histogram
from repro.obs.spans import span
from repro.stream.delta import EdgeDelta
from repro.utils.rng import as_generator
from repro.utils.timer import stopwatch

__all__ = [
    "IncrementalMaintainer",
    "IncrementalSpanner",
    "IncrementalTriangleReduction",
    "IncrementalLowDegree",
    "maintainer_for",
]


def _delta_seed_int(delta: EdgeDelta) -> int:
    """A 64-bit stream-position-free seed component: the delta's content."""
    return int(delta.delta_id[:16], 16)


def _present_edge_ids(g: CSRGraph, u, v) -> tuple[np.ndarray, np.ndarray]:
    """``(edge_ids, found_mask)`` for endpoint arrays; missing pairs are
    reported in the mask instead of raising (canonical edge arrays are
    key-sorted, so one ``searchsorted`` resolves the whole batch)."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if not g.directed:
        u, v = np.minimum(u, v), np.maximum(u, v)
    m = g.num_edges
    if not m:
        return np.zeros(len(u), dtype=np.int64), np.zeros(len(u), dtype=bool)
    keys = g.edge_src * np.int64(g.n) + g.edge_dst
    want = u * np.int64(g.n) + v
    pos = np.searchsorted(keys, want)
    found = (pos < m) & (keys[np.minimum(pos, m - 1)] == want)
    return pos, found


def _require_edge_ids(g: CSRGraph, u, v) -> np.ndarray:
    """Like :func:`repro.algorithms.triangles.edge_ids_of_pairs`, but
    sort-free (no cached argsort index to build per generation)."""
    ids, found = _present_edge_ids(g, u, v)
    if not found.all():
        bad = int(np.flatnonzero(~found)[0])
        raise KeyError(f"pair ({u[bad]}, {v[bad]}) is not an edge")
    return ids


def _edit_subgraph(
    comp: CSRGraph,
    g: CSRGraph,
    removed: set,
    added: set,
    delta: EdgeDelta,
) -> CSRGraph:
    """Advance a maintained edge-subgraph output by pair-level diffs.

    ``removed``/``added`` are canonical endpoint pairs leaving/entering
    the output; a pair present in both stays untouched.  The output's
    vertex set tracks the generation's, inserted pairs take their
    weights from ``g``, and weight updates of surviving output edges are
    replayed — so the result is exactly the subgraph of ``g`` the
    maintainer's state describes, in O(m_out + Δ) instead of a from-
    scratch resolve of every kept pair.
    """
    removed_f = removed - added
    added_f = added - removed
    if removed_f:
        us = [p[0] for p in removed_f]
        vs = [p[1] for p in removed_f]
        comp = comp.delete_edges(_require_edge_ids(comp, us, vs))
    if added_f or g.n > comp.n:
        pairs = sorted(added_f)
        us = [p[0] for p in pairs]
        vs = [p[1] for p in pairs]
        w = None
        if g.is_weighted and pairs:
            w = g.edge_weights[_require_edge_ids(g, us, vs)]
        comp = comp.insert_edges(us, vs, w, num_vertices=g.n)
    if g.is_weighted and delta.num_updates:
        ids, found = _present_edge_ids(
            comp, delta.update_src, delta.update_dst
        )
        if found.any():
            w = comp.edge_weights.copy()
            w[ids[found]] = delta.update_weights[found]
            comp = comp.with_weights(w)
    return comp


class IncrementalMaintainer:
    """Base class: churn-gated repair with a full-recompress fallback.

    Lifecycle: :meth:`attach` to a base generation (full compress),
    then :meth:`update` once per applied delta with the new generation
    (produced by :func:`repro.stream.ingest.apply_delta`).  The current
    compressed output is :attr:`compressed`; :meth:`result` wraps it as
    a :class:`~repro.compress.base.CompressionResult` against the
    current generation so the batch scheme's contract checks apply
    verbatim.
    """

    scheme_name = "scheme"
    #: True when the maintained output is bit-identical to the batch
    #: scheme's output on the same generation (exact-equality checks).
    deterministic = False

    def __init__(self, *, seed=0, churn_threshold: float = 0.25):
        if not 0.0 < churn_threshold:
            raise ValueError("churn_threshold must be > 0")
        self.seed = 0 if seed is None else int(seed)
        self.churn_threshold = float(churn_threshold)
        self.stats = {"repairs": 0, "full_rebuilds": 0}
        self._graph: CSRGraph | None = None
        self._compressed: CSRGraph | None = None

    # -- subclass hooks ------------------------------------------------ #

    def _rebuild(self, g: CSRGraph) -> None:
        """Full recompress of ``g``; resets all repair state."""
        raise NotImplementedError

    def _repair(self, old: CSRGraph, delta: EdgeDelta, g: CSRGraph) -> None:
        """Repair state from ``old`` to ``g`` using only ``delta``."""
        raise NotImplementedError

    def _check_graph(self, g: CSRGraph) -> None:
        pass

    def _needs_rebuild(self, g: CSRGraph) -> bool:
        """Quality ratchet: subclasses may force a full recompress when
        accumulated repair state has drifted too far from a fresh one."""
        return False

    # -- lifecycle ----------------------------------------------------- #

    def attach(self, g: CSRGraph) -> CSRGraph:
        """Adopt ``g`` as the base generation (one full compress)."""
        self._check_graph(g)
        self.stats = {"repairs": 0, "full_rebuilds": 0}
        self._graph = g
        self._rebuild(g)
        return self._compressed

    def update(self, delta: EdgeDelta, new_graph: CSRGraph) -> CSRGraph:
        """Advance to ``new_graph`` (= the old generation with ``delta``
        applied); repairs when churn allows, otherwise recompresses."""
        if self._graph is None:
            raise RuntimeError("attach() a base generation before update()")
        old = self._graph
        churn = delta.size / max(old.num_edges, 1)
        rebuild = churn > self.churn_threshold or self._needs_rebuild(old)
        mode = "rebuild" if rebuild else "repair"
        with span(
            "stream.update", scheme=self.scheme_name, mode=mode, delta=delta.size
        ), stopwatch() as sw:
            if rebuild:
                self._rebuild(new_graph)
                self.stats["full_rebuilds"] += 1
            else:
                self._repair(old, delta, new_graph)
                self.stats["repairs"] += 1
        # The repair-vs-rebuild cost split, rolled up process-wide: the
        # stream benchmarks' headline claim as live histograms.
        counter(f"repro.stream.{'full_rebuilds' if rebuild else 'repairs'}").inc()
        histogram(f"repro.stream.{mode}_seconds").observe(sw.seconds)
        self._graph = new_graph
        return self._compressed

    @property
    def graph(self) -> CSRGraph | None:
        """The generation the maintainer is currently synchronized to."""
        return self._graph

    @property
    def compressed(self) -> CSRGraph | None:
        """The maintained compressed output for :attr:`graph`."""
        return self._compressed

    def params(self) -> dict:
        return {}

    def result(self) -> CompressionResult:
        """The maintained output as a contract-checkable result."""
        if self._graph is None:
            raise RuntimeError("attach() a base generation first")
        return CompressionResult(
            graph=self._compressed,
            original=self._graph,
            scheme=self.scheme_name,
            params=self.params(),
            extras={"incremental": True, **self.stats},
        )


# --------------------------------------------------------------------- #
# spanner
# --------------------------------------------------------------------- #


class IncrementalSpanner(IncrementalMaintainer):
    """Maintain the §4.5.3 O(k)-spanner by tree-cut cluster splitting."""

    scheme_name = "spanner"

    def __init__(self, k: float = 4, *, seed=0, churn_threshold: float = 0.25):
        super().__init__(seed=seed, churn_threshold=churn_threshold)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._mapping: np.ndarray | None = None  # vertex -> cluster id
        self._next_cluster = 0
        self._tree: dict[int, set] = {}  # cluster -> {(u, v) tree pairs}
        self._tree_pairs: dict[tuple, int] = {}  # (u, v) -> its cluster
        self._crossing: dict[tuple, tuple] = {}  # (c_lo, c_hi) -> (u, v)
        self._crossing_baseline = 1  # pair count right after a full rebuild

    def params(self) -> dict:
        return {"k": self.k, "weighted": False}

    def _check_graph(self, g: CSRGraph) -> None:
        if g.directed:
            raise ValueError(
                "incremental spanner maintenance requires an undirected graph"
            )

    def _needs_rebuild(self, g: CSRGraph) -> bool:
        # Tree-cut splitting can only fragment the clustering, and every
        # extra cluster pair keeps an extra crossing edge.  Recompress
        # once the pair count has drifted to 2x the post-rebuild
        # baseline so output quality stays within a constant factor of
        # the batch construction.
        return len(self._crossing) > 2 * self._crossing_baseline + 32

    # -- state construction -------------------------------------------- #

    def _select_crossing(
        self,
        g: CSRGraph,
        edge_ids: np.ndarray,
        *,
        overwrite: bool = True,
        added: set | None = None,
    ) -> None:
        """Keep the min-edge-id crossing edge per unordered cluster pair
        among ``edge_ids`` (the batch scheme's deterministic choice).
        With ``overwrite=False`` cluster pairs that already hold a chosen
        edge are left alone — repairs only fill the gaps they created —
        and new choices are reported through ``added``."""
        if not len(edge_ids):
            return
        cs = self._mapping[g.edge_src[edge_ids]]
        cd = self._mapping[g.edge_dst[edge_ids]]
        lo = np.minimum(cs, cd)
        hi = np.maximum(cs, cd)
        key = lo * np.int64(self._next_cluster + 1) + hi
        order = np.lexsort((edge_ids, key))
        _, first = np.unique(key[order], return_index=True)
        for i in order[first]:
            k = (int(lo[i]), int(hi[i]))
            if not overwrite and k in self._crossing:
                continue
            e = int(edge_ids[i])
            pair = (int(g.edge_src[e]), int(g.edge_dst[e]))
            self._crossing[k] = pair
            if added is not None:
                added.add(pair)

    def _rebuild(self, g: CSRGraph) -> None:
        rng = as_generator(self.seed)
        ldd = low_diameter_decomposition(g, beta_for_spanner(g, self.k), seed=rng)
        self._mapping = ldd.mapping.astype(np.int64, copy=True)
        self._next_cluster = ldd.num_clusters
        self._tree = {}
        self._tree_pairs = {}
        self._crossing = {}
        for v in np.flatnonzero(ldd.parent_edge_ids >= 0):
            e = ldd.parent_edge_ids[v]
            c = int(self._mapping[v])
            pair = (int(g.edge_src[e]), int(g.edge_dst[e]))
            self._tree.setdefault(c, set()).add(pair)
            self._tree_pairs[pair] = c
        cs = self._mapping[g.edge_src]
        cd = self._mapping[g.edge_dst]
        self._select_crossing(g, np.flatnonzero(cs != cd))
        self._crossing_baseline = max(len(self._crossing), 1)
        self._compressed = self._build_output(g)

    def _repair(self, old: CSRGraph, delta: EdgeDelta, g: CSRGraph) -> None:
        n_old, n_new = old.n, g.n
        removed: set = set()
        added: set = set()
        fresh_floor = self._next_cluster
        if n_new > n_old:
            # New vertices become singleton clusters; they only connect
            # through inserted edges, which the crossing scan picks up.
            grown = np.arange(n_new - n_old, dtype=np.int64) + fresh_floor
            self._mapping = np.concatenate([self._mapping, grown])
            self._next_cluster += n_new - n_old
        mapping = self._mapping
        # 1. Classify deletes.  A lost tree edge cuts its cluster's
        #    spanning tree; a lost *chosen* crossing edge marks its
        #    cluster pair for a re-pick; any other delete never reached
        #    the output.
        cut: dict[int, list] = {}  # cluster -> its deleted tree pairs
        repick: set = set()
        for u, v in zip(delta.delete_src.tolist(), delta.delete_dst.tolist()):
            p = (u, v)
            c = self._tree_pairs.get(p)
            if c is not None:
                cut.setdefault(c, []).append(p)
                continue
            a, b = int(mapping[u]), int(mapping[v])
            if a != b:
                key = (a, b) if a < b else (b, a)
                if self._crossing.get(key) == p:
                    del self._crossing[key]
                    removed.add(p)
                    repick.update(key)
        # 2. Split each cut cluster along its lost tree edges.  The
        #    remaining tree components each still span their vertex set
        #    (with diameter no larger than before), so the largest keeps
        #    the cluster id and every other becomes a fresh cluster —
        #    their tree edges stay in the output verbatim; only the cut
        #    pairs leave it.  No LDD runs during repair.
        for c, gone in cut.items():
            rest = self._tree.get(c) or set()
            for p in gone:
                rest.discard(p)
                del self._tree_pairs[p]
                removed.add(p)
            adj: dict = defaultdict(list)
            nodes = {v for p in gone for v in p}
            for a, b in rest:
                adj[a].append(b)
                adj[b].append(a)
                nodes.add(a)
                nodes.add(b)
            comps = []
            seen: set = set()
            for s in nodes:
                if s in seen:
                    continue
                comp = [s]
                seen.add(s)
                stack = [s]
                while stack:
                    x = stack.pop()
                    for y in adj[x]:
                        if y not in seen:
                            seen.add(y)
                            comp.append(y)
                            stack.append(y)
                comps.append(comp)
            comps.sort(key=len, reverse=True)
            comp_of: dict = {}
            for comp in comps[1:]:  # the largest keeps the id c
                cid = self._next_cluster
                self._next_cluster += 1
                mapping[comp] = cid
                self._tree[cid] = set()
                for v in comp:
                    comp_of[v] = cid
            for p in [p for p in rest if p[0] in comp_of]:
                cid = comp_of[p[0]]
                rest.discard(p)
                self._tree[cid].add(p)
                self._tree_pairs[p] = cid
        # 2b. A split renames the cluster of every vertex it moved, so
        #     crossing entries adjacent to a cut cluster may now be
        #     filed under a stale pair: re-key them (the kept edge and
        #     the output are unchanged).
        if cut:
            moves = []
            for key, (x, y) in self._crossing.items():
                if key[0] in cut or key[1] in cut:
                    a, b = int(mapping[x]), int(mapping[y])
                    nk = (a, b) if a < b else (b, a)
                    if nk != key:
                        moves.append((key, nk))
            for key, nk in moves:
                self._crossing[nk] = self._crossing.pop(key)
        # 3. Crossing choices are needed only where the clustering
        #    changed (any edge into a fresh cluster), where a chosen
        #    edge was deleted, or where an edge was inserted.  Existing
        #    choices elsewhere stay — _select_crossing fills gaps only.
        cs = mapping[g.edge_src]
        cd = mapping[g.edge_dst]
        cand = (cs >= fresh_floor) | (cd >= fresh_floor)
        if repick:
            repick_arr = np.fromiter(repick, dtype=np.int64)
            cand |= np.isin(cs, repick_arr) | np.isin(cd, repick_arr)
        if delta.num_inserts:
            cand[_require_edge_ids(g, delta.insert_src, delta.insert_dst)] = True
        cand &= cs != cd
        self._select_crossing(
            g, np.flatnonzero(cand), overwrite=False, added=added
        )
        self._compressed = _edit_subgraph(
            self._compressed, g, removed, added, delta
        )

    def _build_output(self, g: CSRGraph) -> CSRGraph:
        us: list[int] = []
        vs: list[int] = []
        for pairs in self._tree.values():
            for u, v in pairs:
                us.append(u)
                vs.append(v)
        for u, v in self._crossing.values():
            us.append(u)
            vs.append(v)
        keep = np.zeros(g.num_edges, dtype=bool)
        if us:
            keep[edge_ids_of_pairs(g, us, vs)] = True
        return g.keep_edges(keep)


# --------------------------------------------------------------------- #
# triangle reduction (EO p-1-TR)
# --------------------------------------------------------------------- #


class IncrementalTriangleReduction(IncrementalMaintainer):
    """Maintain EO p-1-TR by local triangle discovery + partner protection."""

    scheme_name = "triangle_reduction"

    def __init__(self, p: float, *, seed=0, churn_threshold: float = 0.25):
        super().__init__(seed=seed, churn_threshold=churn_threshold)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)
        self._considered: set = set()
        self._deleted: dict[tuple, tuple] = {}  # pair -> (partner, partner)
        self._protectors: dict[tuple, set] = defaultdict(set)
        # Slot-indexed endpoint buffers mirroring _deleted's keys, so
        # _build_output hands numpy arrays straight to the edge lookup
        # instead of re-materializing 10k+ dict keys every update.
        self._del_u = np.empty(0, dtype=np.int64)
        self._del_v = np.empty(0, dtype=np.int64)
        self._del_live = np.empty(0, dtype=bool)
        self._del_top = 0
        self._del_slot: dict[tuple, int] = {}

    def params(self) -> dict:
        return {"p": self.p, "x": 1, "variant": "edge_once"}

    def _check_graph(self, g: CSRGraph) -> None:
        if g.directed:
            raise ValueError(
                "incremental triangle reduction requires an undirected graph"
            )

    def _record_deletion(self, drawn: tuple, others: tuple) -> None:
        self._deleted[drawn] = others
        self._protectors[others[0]].add(drawn)
        self._protectors[others[1]].add(drawn)
        if self._del_top == len(self._del_u):
            cap = max(1024, 2 * len(self._del_u))
            for name in ("_del_u", "_del_v"):
                buf = np.empty(cap, dtype=np.int64)
                buf[: self._del_top] = getattr(self, name)[: self._del_top]
                setattr(self, name, buf)
            live = np.zeros(cap, dtype=bool)
            live[: self._del_top] = self._del_live[: self._del_top]
            self._del_live = live
        s = self._del_top
        self._del_u[s], self._del_v[s] = drawn
        self._del_live[s] = True
        self._del_slot[drawn] = s
        self._del_top = s + 1

    def _drop_deletion(self, pair: tuple) -> None:
        self._del_live[self._del_slot.pop(pair)] = False

    def _rebuild(self, g: CSRGraph) -> None:
        from repro.algorithms.triangles import list_triangles

        self._considered = set()
        self._deleted = {}
        self._protectors = defaultdict(set)
        self._del_live[: self._del_top] = False
        self._del_top = 0
        self._del_slot = {}
        rng = as_generator(self.seed)
        tl = list_triangles(g)
        t = tl.count
        if t:
            # Identical draws to TriangleReduction.compress(variant=
            # "edge_once", x=1) with the same seed, replayed here so the
            # first-touch winners are known *with* their triangle rows.
            sampled = rng.random(t) < self.p
            idx = np.flatnonzero(sampled)
            slots = np.argsort(rng.random((len(idx), 3)), axis=1)[:, :1]
            eids = tl.edge_ids[idx]
            drawn = np.take_along_axis(eids, slots, axis=1)[:, 0]
            num_events = len(idx)
            first_touch = np.full(g.num_edges, num_events, dtype=np.int64)
            event_of = np.repeat(np.arange(num_events, dtype=np.int64), 3)
            np.minimum.at(first_touch, eids.ravel(), event_of)
            wins = first_touch[drawn] == np.arange(num_events)

            def pair(e: int) -> tuple:
                return (int(g.edge_src[e]), int(g.edge_dst[e]))

            for row in eids:  # every edge of a sampled triangle is considered
                for e in row:
                    self._considered.add(pair(int(e)))
            for i in np.flatnonzero(wins):
                d = int(drawn[i])
                others = tuple(pair(int(e)) for e in eids[i] if int(e) != d)
                self._record_deletion(pair(d), others)
        self._compressed = self._build_output(g)

    def _repair(self, old: CSRGraph, delta: EdgeDelta, g: CSRGraph) -> None:
        # 1. Graph deletes invalidate state — and restore any TR-deleted
        #    edge whose protecting triangle partner just disappeared.
        for u, v in zip(delta.delete_src.tolist(), delta.delete_dst.tolist()):
            p = (u, v)
            self._considered.discard(p)
            if p in self._deleted:
                a, b = self._deleted.pop(p)
                self._drop_deletion(p)
                self._protectors[a].discard(p)
                self._protectors[b].discard(p)
            for e in list(self._protectors.pop(p, ())):
                if e in self._deleted:
                    a, b = self._deleted.pop(e)
                    self._drop_deletion(e)
                    other = b if a == p else a
                    self._protectors[other].discard(e)
                    # e's lottery stays spent: it remains considered.

        # 2. New triangles exist only through inserted edges; discover
        #    them by neighbor intersection and run the same EO lottery.
        if delta.num_inserts:
            found: set = set()
            for u, v in zip(
                delta.insert_src.tolist(), delta.insert_dst.tolist()
            ):
                common = np.intersect1d(
                    g.neighbors(u), g.neighbors(v), assume_unique=True
                )
                for w in common.tolist():
                    found.add(tuple(sorted((u, v, w))))
            rng = np.random.default_rng([self.seed, _delta_seed_int(delta)])
            for a, b, c in sorted(found):
                if rng.random() < self.p:
                    pairs3 = ((a, b), (a, c), (b, c))
                    drawn = pairs3[int(rng.integers(3))]
                    if drawn not in self._considered:
                        others = tuple(q for q in pairs3 if q != drawn)
                        self._record_deletion(drawn, others)
                    for q in pairs3:  # protect the survivors (edge-once)
                        self._considered.add(q)
        self._compressed = self._build_output(g)

    def _build_output(self, g: CSRGraph) -> CSRGraph:
        # The output is always g minus the TR-deleted pairs, so deriving
        # it from the *new* generation in one masked pass (no argsort:
        # canonical edge keys are already sorted) beats diff-editing the
        # previous output, and picks up weight updates for free.
        if not self._deleted:
            return g
        live = self._del_live[: self._del_top]
        us = self._del_u[: self._del_top][live]
        vs = self._del_v[: self._del_top][live]
        ids, found = _present_edge_ids(g, us, vs)
        if not found.all():
            bad = int(np.flatnonzero(~found)[0])
            raise KeyError(
                f"TR-deleted pair ({us[bad]}, {vs[bad]}) is not an edge"
            )
        keep = np.ones(g.num_edges, dtype=bool)
        keep[ids] = False
        return g.keep_edges(keep)


# --------------------------------------------------------------------- #
# low-degree removal (the deterministic, exact-equality arm)
# --------------------------------------------------------------------- #


class IncrementalLowDegree(IncrementalMaintainer):
    """Maintain ``low_degree(max_degree=d, rounds=1)`` bit-identically.

    Degrees are updated in O(Δ) per batch; the output is byte-for-byte
    the batch scheme's output on the same generation, which is the
    exact-equality case of the metamorphic invariant.
    """

    scheme_name = "low_degree"
    deterministic = True

    def __init__(
        self, *, max_degree: int = 1, seed=0, churn_threshold: float = 0.25
    ):
        super().__init__(seed=seed, churn_threshold=churn_threshold)
        if max_degree < 0:
            raise ValueError("max_degree must be >= 0")
        self.max_degree = int(max_degree)
        self._degrees: np.ndarray | None = None

    def params(self) -> dict:
        return {"max_degree": self.max_degree, "rounds": 1, "relabel": False}

    def _rebuild(self, g: CSRGraph) -> None:
        self._degrees = g.degrees.astype(np.int64, copy=True)
        self._compressed = self._build_output(g)

    def _repair(self, old: CSRGraph, delta: EdgeDelta, g: CSRGraph) -> None:
        deg = self._degrees
        if g.n > old.n:
            deg = np.concatenate([deg, np.zeros(g.n - old.n, dtype=np.int64)])
        if delta.num_deletes:
            # degrees is out-degree for directed graphs: only src moves
            gone = (
                delta.delete_src
                if g.directed
                else np.concatenate([delta.delete_src, delta.delete_dst])
            )
            np.subtract.at(deg, gone, 1)
        if delta.num_inserts:
            added = (
                delta.insert_src
                if g.directed
                else np.concatenate([delta.insert_src, delta.insert_dst])
            )
            np.add.at(deg, added, 1)
        self._degrees = deg
        self._compressed = self._build_output(g)

    def _build_output(self, g: CSRGraph) -> CSRGraph:
        deg = self._degrees
        victims = np.flatnonzero((deg > 0) & (deg <= self.max_degree))
        if not len(victims):  # batch compress returns the input unchanged
            return g
        return g.remove_vertices(victims)


# --------------------------------------------------------------------- #
# scheme-spec plumbing
# --------------------------------------------------------------------- #


def maintainer_for(
    spec, *, seed=0, churn_threshold: float = 0.25
) -> IncrementalMaintainer:
    """An incremental maintainer matching a batch scheme spec.

    ``spec`` is anything :func:`repro.compress.registry.build_scheme`
    accepts (``"spanner(k=4)"``, ``"EO-0.8-1-TR"``, ``"low_degree"``, or
    a scheme instance).  Raises ``ValueError`` for schemes (or variants)
    without an incremental maintainer.
    """
    scheme = build_scheme(spec) if isinstance(spec, str) else spec
    if isinstance(scheme, Spanner):
        if scheme.weighted:
            raise ValueError(
                "incremental spanner maintenance supports weighted=False only"
            )
        return IncrementalSpanner(
            k=scheme.k, seed=seed, churn_threshold=churn_threshold
        )
    if isinstance(scheme, TriangleReduction):
        if scheme.variant != "edge_once" or scheme.x != 1:
            raise ValueError(
                "incremental triangle reduction supports the edge_once "
                f"x=1 variant only, got variant={scheme.variant!r} "
                f"x={scheme.x}"
            )
        return IncrementalTriangleReduction(
            p=scheme.p, seed=seed, churn_threshold=churn_threshold
        )
    if isinstance(scheme, LowDegreeVertexRemoval):
        if scheme.relabel or scheme.rounds != 1:
            raise ValueError(
                "incremental low-degree removal supports rounds=1 "
                "relabel=False only"
            )
        return IncrementalLowDegree(
            max_degree=scheme.max_degree,
            seed=seed,
            churn_threshold=churn_threshold,
        )
    raise ValueError(
        f"no incremental maintainer for scheme {scheme.name!r}; "
        "supported: spanner, triangle_reduction (edge_once), low_degree"
    )
