"""Atomic-update buffers for compression kernels.

The paper's kernels mark graph elements for removal with an ``atomic``
keyword (§4.1) — concurrent kernel instances may delete the same edge or
test-and-set an edge's ``considered`` flag (Edge-Once TR, §4.3).  Instead
of locking a shared mutable graph, this implementation gives each kernel
sweep a :class:`DeletionBuffer` and an :class:`EdgeFlags` set: kernel
instances record intents, buffers from parallel chunks merge
deterministically (chunk-index order), and the engine applies the merged
buffer to produce the compressed graph.  Deletion is idempotent, so merge
order never changes the *deleted set* — only Edge-Once flag races are
scheduling-dependent, exactly as the paper permits ("the developer can
specify if a given element should be considered ... by more than one
kernel instance").
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["DeletionBuffer", "EdgeFlags"]


class DeletionBuffer:
    """Records edge and vertex deletion intents for one kernel sweep."""

    def __init__(self, num_vertices: int, num_edges: int) -> None:
        self.edge_deleted = np.zeros(num_edges, dtype=bool)
        self.vertex_deleted = np.zeros(num_vertices, dtype=bool)
        self._weight_updates: dict[int, float] = {}

    # -- intents -------------------------------------------------------- #

    def delete_edge(self, edge_id: int) -> None:
        self.edge_deleted[edge_id] = True

    def delete_edges(self, edge_ids) -> None:
        self.edge_deleted[np.asarray(edge_ids, dtype=np.int64)] = True

    def delete_vertex(self, vertex_id: int) -> None:
        self.vertex_deleted[vertex_id] = True

    def set_weight(self, edge_id: int, weight: float) -> None:
        """Reweighting intent (spectral sparsifiers set w = 1/p_uv)."""
        self._weight_updates[int(edge_id)] = float(weight)

    # -- merge & apply --------------------------------------------------- #

    @property
    def num_deleted_edges(self) -> int:
        return int(self.edge_deleted.sum())

    @property
    def num_deleted_vertices(self) -> int:
        return int(self.vertex_deleted.sum())

    def merge(self, other: "DeletionBuffer") -> None:
        """Fold another chunk's buffer into this one (idempotent union)."""
        self.edge_deleted |= other.edge_deleted
        self.vertex_deleted |= other.vertex_deleted
        self._weight_updates.update(other._weight_updates)

    def apply(self, g: CSRGraph, *, relabel_vertices: bool = False) -> CSRGraph:
        """Produce the compressed graph this buffer describes.

        Weight updates are applied first (on surviving edges), then edge
        deletions, then vertex deletions.
        """
        if self.edge_deleted.shape != (g.num_edges,) or self.vertex_deleted.shape != (g.n,):
            raise ValueError("buffer shape does not match graph")
        out = g
        if self._weight_updates:
            w = (
                out.edge_weights.copy()
                if out.is_weighted
                else np.ones(out.num_edges, dtype=np.float64)
            )
            ids = np.fromiter(self._weight_updates, dtype=np.int64, count=len(self._weight_updates))
            vals = np.fromiter(self._weight_updates.values(), dtype=np.float64, count=len(ids))
            w[ids] = vals
            out = out.with_weights(w)
        if self.edge_deleted.any():
            out = out.keep_edges(~self.edge_deleted)
        if self.vertex_deleted.any():
            out = out.remove_vertices(
                np.flatnonzero(self.vertex_deleted), relabel=relabel_vertices
            )
        return out


class EdgeFlags:
    """Per-edge ``considered`` flags with test-and-set semantics.

    Backs Edge-Once Triangle Reduction: the *first* kernel instance that
    considers an edge may delete it; later instances see the flag and leave
    the edge alone (§4.3, Listing 1 lines 17–22).
    """

    def __init__(self, num_edges: int) -> None:
        self.flags = np.zeros(num_edges, dtype=bool)

    def test_and_set(self, edge_id: int) -> bool:
        """Return True iff this call is the first consideration of the edge."""
        if self.flags[edge_id]:
            return False
        self.flags[edge_id] = True
        return True

    def merge(self, other: "EdgeFlags") -> None:
        self.flags |= other.flags
