"""The Slim Graph runtime loop (Listing 2 of the paper).

``SlimGraphRuntime`` wires together the pieces: initialize ``SG``,
construct the vertex→subgraph mapping when the kernel needs one, execute
all kernel instances, apply the deletion buffers, and repeat until the
convergence flag holds (only summarization iterates; every other scheme is
a single sweep, exactly as §4.5.1 states).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.engine import run_kernels
from repro.core.kernels import CompressionKernel
from repro.core.sg import SG
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["SlimGraphRuntime", "RuntimeResult"]

MappingFn = Callable[[CSRGraph, SG, "np.random.Generator"], np.ndarray]


@dataclass
class RuntimeResult:
    """Compressed graph plus per-round sweep statistics."""

    graph: CSRGraph
    rounds: int
    deleted_edges: int
    deleted_vertices: int
    sg: SG = field(repr=False, default=None)


class SlimGraphRuntime:
    """Executes compression kernels until convergence (Listing 2).

    Parameters
    ----------
    kernel:
        The compression kernel to run.
    mapping_fn:
        For subgraph kernels: callable building the vertex→cluster mapping
        (§4.5.2), invoked before every round on the current graph.
    params:
        Scheme parameters stored into ``SG`` (e.g. ``{"p": 0.5}``).
    backend, num_chunks:
        Forwarded to :func:`repro.core.engine.run_kernels`.
    max_rounds:
        Safety bound on convergence rounds.
    relabel_vertices:
        Whether vertex deletions compact ids (triangle collapse) or leave
        isolated ids behind (metric-friendly default).
    """

    def __init__(
        self,
        kernel: CompressionKernel,
        *,
        mapping_fn: MappingFn | None = None,
        params: dict | None = None,
        backend: str = "serial",
        num_chunks: int | None = None,
        max_rounds: int = 64,
        relabel_vertices: bool = False,
    ) -> None:
        self.kernel = kernel
        self.mapping_fn = mapping_fn
        self.params = dict(params or {})
        self.backend = backend
        self.num_chunks = num_chunks
        self.max_rounds = max_rounds
        self.relabel_vertices = relabel_vertices

    def run(self, g: CSRGraph, *, seed=None) -> RuntimeResult:
        rng = as_generator(seed)
        sg = SG(g, self.params)
        current = g
        total_edges_deleted = 0
        total_vertices_deleted = 0
        rounds = 0
        while rounds < self.max_rounds:
            rounds += 1
            sg.graph = current
            sg.fresh_buffers()
            if self.kernel.scope == "subgraph":
                if self.mapping_fn is None:
                    raise RuntimeError("subgraph kernels require mapping_fn")
                mapping = np.asarray(self.mapping_fn(current, sg, rng), dtype=np.int64)
                sg.mapping = mapping
                sg.sgr_cnt = int(mapping.max()) + 1 if len(mapping) else 0
            run_kernels(
                current,
                self.kernel,
                sg,
                backend=self.backend,
                num_chunks=self.num_chunks,
                seed=rng,
            )
            total_edges_deleted += sg.buffer.num_deleted_edges
            total_vertices_deleted += sg.buffer.num_deleted_vertices
            current = sg.buffer.apply(current, relabel_vertices=self.relabel_vertices)
            if sg.converged:
                break
        return RuntimeResult(
            graph=current,
            rounds=rounds,
            deleted_edges=total_edges_deleted,
            deleted_vertices=total_vertices_deleted,
            sg=sg,
        )
