"""The ``SG`` global container object (§4.1).

Every kernel instance receives the same ``SG`` alongside its local view.
``SG`` carries:

- the input graph and the compression-scheme parameters (``SG.p``, Υ, ε…),
- the mutation interface (``delete``, ``set_weight``) that records intents
  into the sweep's :class:`~repro.core.atomic.DeletionBuffer`,
- the per-chunk random stream (``rand``; the engine rebinds it per chunk so
  parallel execution stays deterministic),
- Edge-Once ``considered`` flags (``considered_once``),
- subgraph-kernel state: the vertex→cluster ``mapping`` and cluster count,
- summarization state: the summary builder, corrections⁺ / corrections⁻,
  and the convergence flag driving the Listing-2 runtime loop.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.atomic import DeletionBuffer, EdgeFlags
from repro.core.kernels import EdgeView, TriangleView, VertexView
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["SG"]


class SG:
    """Global container shared by all kernel instances of one sweep."""

    def __init__(self, graph: CSRGraph, params: dict | None = None, *, seed=None):
        self.graph = graph
        self.params = dict(params or {})
        self._rng = as_generator(seed)
        self.buffer = DeletionBuffer(graph.n, graph.num_edges)
        self.flags = EdgeFlags(graph.num_edges)
        # Subgraph-kernel state (populated by the runtime).
        self.mapping: np.ndarray | None = None
        self.sgr_cnt: int = 0
        # Summarization state.
        self.summary_supervertices: list[int] = []
        self.summary_edges: list[tuple[int, int, float]] = []
        self.corrections_plus: list[tuple[int, int]] = []
        self.corrections_minus: list[tuple[int, int]] = []
        self.converged: bool = True

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #

    def param(self, key: str, default=None):
        return self.params.get(key, default)

    @property
    def p(self) -> float:
        """The sampling probability parameter (most schemes call it p)."""
        return float(self.params["p"])

    @property
    def epsilon(self) -> float:
        return float(self.params["epsilon"])

    def connectivity_spectral_parameter(self) -> float:
        """Υ for spectral sparsification (§4.2.1).

        ``params["spectral_variant"]`` selects the paper's two variants:
        ``"logn"`` → Υ = p·log n  [Spielman–Teng-style], or
        ``"avgdeg"`` → Υ = p·(m/n)  [average-degree, à la Iyer et al.].
        """
        g = self.graph
        variant = self.params.get("spectral_variant", "logn")
        p = self.p
        if variant == "logn":
            return p * math.log(max(g.n, 2))
        if variant == "avgdeg":
            return p * (g.num_edges / max(g.n, 1))
        raise ValueError(f"unknown spectral_variant {variant!r}")

    # ------------------------------------------------------------------ #
    # randomness (rebindable per chunk for deterministic parallelism)
    # ------------------------------------------------------------------ #

    def bind_rng(self, rng) -> None:
        self._rng = as_generator(rng)

    def rand(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform random float in [low, high) — the paper's ``SG.rand``."""
        return float(self._rng.uniform(low, high))

    def rand_choice(self, container):
        """Random element of a container — the overloaded ``rand`` of §4.3."""
        return container[int(self._rng.integers(0, len(container)))]

    # ------------------------------------------------------------------ #
    # mutation intents (the paper's SG.del / reweighting)
    # ------------------------------------------------------------------ #

    def delete(self, element) -> None:
        """Delete a graph element: an :class:`EdgeView`, :class:`VertexView`,
        or a bare edge id."""
        if isinstance(element, EdgeView):
            self.buffer.delete_edge(element.id)
        elif isinstance(element, VertexView):
            self.buffer.delete_vertex(element.id)
        elif isinstance(element, TriangleView):
            self.buffer.delete_edges(list(element.edge_ids))
        elif isinstance(element, (int, np.integer)):
            self.buffer.delete_edge(int(element))
        else:
            raise TypeError(f"cannot delete {type(element).__name__}")

    def delete_edge_id(self, edge_id: int) -> None:
        self.buffer.delete_edge(int(edge_id))

    def delete_vertex_id(self, vertex_id: int) -> None:
        self.buffer.delete_vertex(int(vertex_id))

    def set_weight(self, element, weight: float) -> None:
        eid = element.id if isinstance(element, EdgeView) else int(element)
        self.buffer.set_weight(eid, weight)

    def considered_once(self, element) -> bool:
        """Edge-Once test-and-set: True iff first consideration (§4.3)."""
        eid = element.id if isinstance(element, EdgeView) else int(element)
        return self.flags.test_and_set(eid)

    # ------------------------------------------------------------------ #
    # summarization support (§4.5.4)
    # ------------------------------------------------------------------ #

    def summary_insert_supervertex(self, sv: int) -> None:
        self.summary_supervertices.append(int(sv))

    def summary_insert_superedge(self, a: int, b: int, weight: float = 1.0) -> None:
        self.summary_edges.append((int(a), int(b), float(weight)))

    def add_corrections_plus(self, pairs) -> None:
        self.corrections_plus.extend((int(u), int(v)) for u, v in pairs)

    def add_corrections_minus(self, pairs) -> None:
        self.corrections_minus.extend((int(u), int(v)) for u, v in pairs)

    def update_convergence(self, converged: bool = True) -> None:
        """Kernels vote on convergence; any False vote forces another round."""
        self.converged = self.converged and converged

    # ------------------------------------------------------------------ #

    def fresh_buffers(self) -> None:
        """Reset per-sweep state (used between runtime rounds)."""
        self.buffer = DeletionBuffer(self.graph.n, self.graph.num_edges)
        self.flags = EdgeFlags(self.graph.num_edges)
        self.converged = True
