"""The kernel execution engine (§3.2, stage 1).

``run_kernels`` enumerates the graph elements matching a kernel's scope
(vertices, edges, triangles, or the subgraphs induced by ``sg.mapping``),
builds the local view for each element, and invokes the kernel.  Three
backends:

- ``"serial"`` — one sequential pass; the reference semantics.
- ``"chunked"`` — elements split into contiguous chunks, each chunk with an
  *independent* RNG stream and private deletion buffers, merged in chunk
  order afterwards.  This is a faithful simulation of the paper's parallel
  execution: deletes are idempotent so the merged deleted set equals some
  legal parallel schedule's outcome, and results are reproducible
  regardless of worker count.
- ``"process"`` — the chunked plan executed on a ``multiprocessing`` pool
  (fork), for CPU-bound user kernels.  Chunk buffers come back over IPC
  and merge identically to ``"chunked"``, so both backends produce
  bit-identical graphs.

The built-in schemes in :mod:`repro.compress` additionally provide
vectorized fast paths that bypass per-element Python dispatch; the test
suite asserts kernel-program and fast-path agreement.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.kernels import (
    CompressionKernel,
    EdgeView,
    SubgraphView,
    TriangleView,
    VertexView,
)
from repro.core.sg import SG
from repro.graphs.csr import CSRGraph
from repro.graphs.views import cluster_subgraphs
from repro.utils.chunking import chunk_ranges
from repro.utils.rng import spawn_generators

__all__ = ["run_kernels", "KernelSweepResult"]


@dataclass(frozen=True)
class KernelSweepResult:
    """Outcome of one kernel sweep (before the runtime applies buffers)."""

    num_instances: int
    num_deleted_edges: int
    num_deleted_vertices: int


class _ElementSpace:
    """Lazily enumerable kernel-scope elements.

    Holds only the compact per-scope data — the graph itself for
    vertex/edge scopes, the triangle arrays, or the cluster list — and
    materializes view objects one at a time as :meth:`views` is iterated.
    Serial sweeps and chunk workers therefore allocate O(1) live view
    instances instead of an up-front Python list of n or m dataclass
    instances, and a sweep that stops early never allocates the views it
    did not reach.  The space is picklable (compact arrays, not view
    objects), so ``"process"`` jobs carry the graph + element arrays
    instead of an n/m-sized list of per-element view instances.
    """

    __slots__ = ("graph", "scope", "count", "_triangles", "_clusters", "_mapping")

    def __init__(self, g: CSRGraph, kernel: CompressionKernel, sg: SG) -> None:
        self.graph = g
        self.scope = kernel.scope
        self._triangles = None
        self._clusters = None
        self._mapping = None
        if kernel.scope == "vertex":
            self.count = g.n
        elif kernel.scope == "edge":
            self.count = g.num_edges
        elif kernel.scope == "triangle":
            from repro.algorithms.triangles import list_triangles

            self._triangles = list_triangles(g)
            self.count = self._triangles.count
        elif kernel.scope == "subgraph":
            if sg.mapping is None:
                raise RuntimeError(
                    "subgraph kernels need sg.mapping; use SlimGraphRuntime or "
                    "construct the mapping first (§4.5.2)"
                )
            self._mapping = sg.mapping
            self._clusters = list(cluster_subgraphs(g, sg.mapping))
            self.count = len(self._clusters)
        else:
            raise ValueError(f"unknown kernel scope {kernel.scope!r}")

    def views(self, lo: int, hi: int):
        """Yield the views for elements ``lo..hi`` one at a time."""
        g = self.graph
        if self.scope == "vertex":
            for v in range(lo, hi):
                yield VertexView(g, v)
        elif self.scope == "edge":
            for e in range(lo, hi):
                yield EdgeView(g, e)
        elif self.scope == "triangle":
            tl = self._triangles
            for i in range(lo, hi):
                yield TriangleView(g, tuple(tl.vertices[i]), tuple(tl.edge_ids[i]))
        else:
            for cid, vertices in self._clusters[lo:hi]:
                yield SubgraphView(g, cid, vertices, self._mapping)


def _run_chunk(args):
    """Execute a kernel on one chunk of elements (worker entry point)."""
    kernel, sg, space, lo, hi, rng = args
    sg.fresh_buffers()
    sg.bind_rng(rng)
    for x in space.views(lo, hi):
        kernel(x, sg)
    return sg.buffer, sg.flags, sg.converged, (
        sg.summary_supervertices,
        sg.summary_edges,
        sg.corrections_plus,
        sg.corrections_minus,
    )


def run_kernels(
    g: CSRGraph,
    kernel: CompressionKernel,
    sg: SG,
    *,
    backend: str = "serial",
    num_chunks: int | None = None,
    seed=None,
) -> KernelSweepResult:
    """Run one kernel instance per graph element, accumulating into ``sg``.

    Mutation intents land in ``sg.buffer``; apply them with
    ``sg.buffer.apply(g)`` or use :class:`~repro.core.runtime.
    SlimGraphRuntime`, which also handles convergence rounds.
    """
    if sg.graph is not g:
        # Keep the container and the executed graph coherent.
        sg.graph = g
        sg.fresh_buffers()
    space = _ElementSpace(g, kernel, sg)
    n_elem = space.count

    if backend == "serial":
        if seed is not None:
            sg.bind_rng(seed)
        for x in space.views(0, n_elem):
            kernel(x, sg)
        return KernelSweepResult(
            num_instances=n_elem,
            num_deleted_edges=sg.buffer.num_deleted_edges,
            num_deleted_vertices=sg.buffer.num_deleted_vertices,
        )

    if backend not in ("chunked", "process"):
        raise ValueError(f"unknown backend {backend!r}")

    if num_chunks is None:
        num_chunks = max(1, (os.cpu_count() or 2))
    ranges = chunk_ranges(n_elem, num_chunks)
    rngs = spawn_generators(seed, len(ranges))
    jobs = [
        (kernel, _chunk_sg(sg), space, lo, hi, rng)
        for (lo, hi), rng in zip(ranges, rngs)
    ]
    if backend == "chunked" or len(jobs) <= 1:
        results = [_run_chunk(job) for job in jobs]
    else:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        with ctx.Pool(processes=min(len(jobs), os.cpu_count() or 2)) as pool:
            results = pool.map(_run_chunk, jobs)

    for buffer, flags, converged, summaries in results:
        sg.buffer.merge(buffer)
        sg.flags.merge(flags)
        sg.converged = sg.converged and converged
        sv, se, cp, cm = summaries
        sg.summary_supervertices.extend(sv)
        sg.summary_edges.extend(se)
        sg.corrections_plus.extend(cp)
        sg.corrections_minus.extend(cm)
    return KernelSweepResult(
        num_instances=n_elem,
        num_deleted_edges=sg.buffer.num_deleted_edges,
        num_deleted_vertices=sg.buffer.num_deleted_vertices,
    )


def _chunk_sg(sg: SG) -> SG:
    """A private SG clone for one chunk (fresh buffers, shared params)."""
    clone = SG(sg.graph, sg.params)
    clone.mapping = sg.mapping
    clone.sgr_cnt = sg.sgr_cnt
    return clone
