"""The two-stage pipeline (§3.2): compress, then run a graph algorithm.

Fig. 5 of the paper plots the *relative runtime difference* between an
algorithm on the compressed and on the original graph, colored by the
compression ratio; :class:`Pipeline` produces exactly those quantities for
any (scheme, algorithm) pair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.graphs.csr import CSRGraph

__all__ = ["Pipeline", "PipelineResult"]

AlgorithmFn = Callable[[CSRGraph], Any]


@dataclass(frozen=True)
class PipelineResult:
    """Everything Fig. 5 needs for one (scheme, algorithm, graph) cell."""

    original_graph: CSRGraph
    compressed_graph: CSRGraph
    compression_seconds: float
    original_algorithm_seconds: float
    compressed_algorithm_seconds: float
    original_output: Any
    compressed_output: Any

    @property
    def compression_ratio(self) -> float:
        """Edges remaining / edges original (the paper's color axis)."""
        m = self.original_graph.num_edges
        return self.compressed_graph.num_edges / m if m else 1.0

    @property
    def edge_reduction(self) -> float:
        """Fraction of edges removed (Fig. 6's y-axis)."""
        return 1.0 - self.compression_ratio

    @property
    def relative_runtime_difference(self) -> float:
        """(t_original - t_compressed) / t_original — Fig. 5's y-axis.

        Positive values mean the algorithm got faster on the compressed
        graph.
        """
        t0 = self.original_algorithm_seconds
        return (t0 - self.compressed_algorithm_seconds) / t0 if t0 > 0 else 0.0


class Pipeline:
    """Stage 1: compress with ``scheme``; stage 2: run ``algorithm`` on both
    graphs and time it.

    ``scheme`` is any object with a ``compress(graph, *, seed) ->
    CompressionResult``-like method (see :mod:`repro.compress.base`) or a
    plain callable ``graph -> graph``.
    """

    def __init__(self, scheme, algorithm: AlgorithmFn, *, repeats: int = 1):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.scheme = scheme
        self.algorithm = algorithm
        self.repeats = repeats

    def _compress(self, g: CSRGraph, seed) -> tuple[CSRGraph, float]:
        start = time.perf_counter()
        if hasattr(self.scheme, "compress"):
            result = self.scheme.compress(g, seed=seed)
            out = result.graph if hasattr(result, "graph") else result
        else:
            out = self.scheme(g)
        return out, time.perf_counter() - start

    def _time_algorithm(self, g: CSRGraph) -> tuple[Any, float]:
        best = float("inf")
        output = None
        for _ in range(self.repeats):
            start = time.perf_counter()
            output = self.algorithm(g)
            best = min(best, time.perf_counter() - start)
        return output, best

    def run(self, g: CSRGraph, *, seed=None) -> PipelineResult:
        compressed, t_compress = self._compress(g, seed)
        out_orig, t_orig = self._time_algorithm(g)
        out_comp, t_comp = self._time_algorithm(compressed)
        return PipelineResult(
            original_graph=g,
            compressed_graph=compressed,
            compression_seconds=t_compress,
            original_algorithm_seconds=t_orig,
            compressed_algorithm_seconds=t_comp,
            original_output=out_orig,
            compressed_output=out_comp,
        )
