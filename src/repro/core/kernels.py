"""Compression kernels and their local graph views.

This is the paper's programming model (§3.1, §4.1).  A *compression
kernel* is a small program whose single argument ``x`` is a local view of
the graph — a vertex, an edge, a triangle, or a subgraph — plus the global
``SG`` container.  The kernel inspects the view and records deletions via
``SG``; the engine (:mod:`repro.core.engine`) runs one kernel instance per
graph element, in parallel chunks.

The four view classes expose exactly the properties Listing 1 of the paper
uses (``e.u.deg``, ``e.weight``, ``v.deg``, out-edges of a subgraph, …).
Kernels are plain callables; subclassing the typed bases just pins the
``scope`` so the engine knows what to enumerate::

    class RandomUniform(EdgeKernel):
        def __call__(self, e, sg):
            if sg.param("p") < sg.rand():
                sg.delete(e)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = [
    "VertexView",
    "EdgeView",
    "TriangleView",
    "SubgraphView",
    "CompressionKernel",
    "VertexKernel",
    "EdgeKernel",
    "TriangleKernel",
    "SubgraphKernel",
]


@dataclass(frozen=True)
class VertexView:
    """Kernel argument for vertex kernels: a vertex and its neighborhood."""

    graph: CSRGraph
    id: int

    @property
    def deg(self) -> int:
        return self.graph.degree(self.id)

    @property
    def neighbors(self) -> np.ndarray:
        return self.graph.neighbors(self.id)

    @property
    def incident_edge_ids(self) -> np.ndarray:
        return self.graph.incident_edge_ids(self.id)


@dataclass(frozen=True)
class _Endpoint:
    """An edge endpoint exposing the paper's ``e.u`` / ``e.v`` fields."""

    graph: CSRGraph
    id: int

    @property
    def deg(self) -> int:
        return self.graph.degree(self.id)


@dataclass(frozen=True)
class EdgeView:
    """Kernel argument for edge kernels: one canonical edge."""

    graph: CSRGraph
    id: int

    @property
    def u(self) -> _Endpoint:
        return _Endpoint(self.graph, int(self.graph.edge_src[self.id]))

    @property
    def v(self) -> _Endpoint:
        return _Endpoint(self.graph, int(self.graph.edge_dst[self.id]))

    @property
    def weight(self) -> float:
        return self.graph.weight_of(self.id)


@dataclass(frozen=True)
class TriangleView:
    """Kernel argument for triangle kernels: vertices + the three edges.

    ``edge_ids`` ordering matches :class:`repro.algorithms.triangles.
    TriangleList`: (u,v), (u,w), (v,w).
    """

    graph: CSRGraph
    vertices: tuple[int, int, int]
    edge_ids: tuple[int, int, int]

    @property
    def weights(self) -> np.ndarray:
        return np.array([self.graph.weight_of(e) for e in self.edge_ids])

    def max_weight_edge(self) -> int:
        """Edge id of the heaviest triangle edge (ties -> lowest id)."""
        w = self.weights
        return int(self.edge_ids[int(np.argmax(w))])

    def edges(self) -> list[EdgeView]:
        return [EdgeView(self.graph, e) for e in self.edge_ids]


class SubgraphView:
    """Kernel argument for subgraph kernels: a cluster of vertices.

    Exposes the cluster's vertices, intra-cluster edges, and out-edges
    (edges leaving the cluster) with the neighbor cluster of each out-edge
    — the ``elem_ID`` of Listing 1.
    """

    def __init__(self, graph: CSRGraph, cluster_id: int, vertices: np.ndarray, mapping: np.ndarray):
        self.graph = graph
        self.id = int(cluster_id)
        self.vertices = np.asarray(vertices, dtype=np.int64)
        self.mapping = mapping  # full vertex -> cluster id array

    def __len__(self) -> int:
        return len(self.vertices)

    def internal_edge_ids(self) -> np.ndarray:
        """Canonical ids of edges with both endpoints in this cluster."""
        g, mp = self.graph, self.mapping
        eids = np.unique(
            np.concatenate([g.incident_edge_ids(int(v)) for v in self.vertices])
            if len(self.vertices)
            else np.empty(0, dtype=np.int64)
        )
        src, dst = g.edge_src[eids], g.edge_dst[eids]
        both = (mp[src] == self.id) & (mp[dst] == self.id)
        return eids[both]

    def out_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """(edge ids, neighbor cluster ids) of edges leaving the cluster."""
        g, mp = self.graph, self.mapping
        if not len(self.vertices):
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        eids = np.unique(
            np.concatenate([g.incident_edge_ids(int(v)) for v in self.vertices])
        )
        src, dst = g.edge_src[eids], g.edge_dst[eids]
        cs, cd = mp[src], mp[dst]
        crossing = cs != cd
        eids = eids[crossing]
        other = np.where(cs[crossing] == self.id, cd[crossing], cs[crossing])
        return eids, other

    def neighborhood_union(self) -> np.ndarray:
        """All vertices adjacent to the cluster (members excluded)."""
        g = self.graph
        if not len(self.vertices):
            return np.empty(0, dtype=np.int64)
        nbrs = np.unique(
            np.concatenate([g.neighbors(int(v)) for v in self.vertices])
        )
        return np.setdiff1d(nbrs, self.vertices, assume_unique=True)


class CompressionKernel:
    """Base class: a callable ``kernel(view, sg)`` with an element scope.

    ``scope`` ∈ {"vertex", "edge", "triangle", "subgraph"} tells the engine
    what to enumerate; ``name`` labels analytics output.
    """

    scope: str = "edge"
    name: str = "kernel"

    def __call__(self, x, sg) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} scope={self.scope!r}>"


class VertexKernel(CompressionKernel):
    scope = "vertex"


class EdgeKernel(CompressionKernel):
    scope = "edge"


class TriangleKernel(CompressionKernel):
    scope = "triangle"


class SubgraphKernel(CompressionKernel):
    scope = "subgraph"
