"""Slim Graph programming model: kernels, SG container, engine, runtime."""

from repro.core.kernels import (
    VertexView,
    EdgeView,
    TriangleView,
    SubgraphView,
    CompressionKernel,
    VertexKernel,
    EdgeKernel,
    TriangleKernel,
    SubgraphKernel,
)
from repro.core.sg import SG
from repro.core.atomic import DeletionBuffer, EdgeFlags
from repro.core.engine import run_kernels, KernelSweepResult
from repro.core.runtime import SlimGraphRuntime, RuntimeResult
from repro.core.pipeline import Pipeline, PipelineResult

__all__ = [
    "VertexView",
    "EdgeView",
    "TriangleView",
    "SubgraphView",
    "CompressionKernel",
    "VertexKernel",
    "EdgeKernel",
    "TriangleKernel",
    "SubgraphKernel",
    "SG",
    "DeletionBuffer",
    "EdgeFlags",
    "run_kernels",
    "KernelSweepResult",
    "SlimGraphRuntime",
    "RuntimeResult",
    "Pipeline",
    "PipelineResult",
]
