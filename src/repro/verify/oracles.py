"""Naive reference implementations — the differential oracles.

Every function here recomputes one of the registered algorithms in the
most obviously-correct way available: plain dict/set adjacency, explicit
Python loops, no numpy vectorization tricks, no shared code with the
engine implementations under :mod:`repro.algorithms`.  Slowness is the
point — an oracle that shares clever index arithmetic with the engine
would inherit the engine's bugs.

The :data:`ORACLES` table pairs each oracle with its engine counterpart
*as run through the algorithm registry*, so the engine side of every
comparison passes through the same :mod:`repro.algorithms.adapters`
canonicalization the evaluation harness uses (scalar → ``float``,
ordering/distribution → 1-D ``float64``, traversal → raw result +
Graph500 validator).  The fuzz driver (:mod:`repro.verify.fuzz`) sweeps
this table over the generator matrix; the table is a plain dict precisely
so tests can swap in a deliberately-broken oracle and assert the harness
catches it.

Comparators return a list of human-readable mismatch strings (empty =
agreement), mirroring :func:`repro.algorithms.bfs.validate_bfs_tree`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.algorithms.bfs import bfs, validate_bfs_tree
from repro.algorithms.components import connected_components
from repro.algorithms.registry import build_algorithm
from repro.graphs.csr import CSRGraph

__all__ = [
    "OracleEntry",
    "ORACLES",
    "adjacency",
    "undirected_neighbor_sets",
    "oracle_bfs_levels",
    "oracle_sssp_distances",
    "oracle_pagerank",
    "oracle_component_labels",
    "oracle_triangle_count",
    "oracle_triangles_per_vertex",
    "oracle_clustering_coefficients",
    "oracle_mst_weight",
    "oracle_core_numbers",
    "oracle_degree_counts",
]


# --------------------------------------------------------------------- #
# dict/set adjacency — the substrate every oracle reasons over
# --------------------------------------------------------------------- #


def adjacency(g: CSRGraph) -> dict[int, list[tuple[int, float]]]:
    """Out-neighbor ``(neighbor, weight)`` lists, built edge by edge.

    Undirected graphs contribute both directions; unweighted edges read
    as weight 1.0.  This is deliberately the dumbest possible build: one
    Python loop over the canonical edge arrays.
    """
    adj: dict[int, list[tuple[int, float]]] = {v: [] for v in range(g.n)}
    weights = (
        g.edge_weights.tolist() if g.is_weighted else [1.0] * g.num_edges
    )
    for u, v, w in zip(g.edge_src.tolist(), g.edge_dst.tolist(), weights):
        adj[u].append((v, w))
        if not g.directed:
            adj[v].append((u, w))
    return adj


def undirected_neighbor_sets(g: CSRGraph) -> dict[int, set[int]]:
    """Neighbor sets ignoring direction and weights (for CC/triangles)."""
    nbr: dict[int, set[int]] = {v: set() for v in range(g.n)}
    for u, v in zip(g.edge_src.tolist(), g.edge_dst.tolist()):
        nbr[u].add(v)
        nbr[v].add(u)
    return nbr


# --------------------------------------------------------------------- #
# the oracles
# --------------------------------------------------------------------- #


def oracle_bfs_levels(g: CSRGraph, source: int = 0) -> list[int]:
    """BFS levels by textbook queue expansion (-1 = unreached)."""
    adj = adjacency(g)
    level = [-1] * g.n
    level[source] = 0
    queue = [source]
    while queue:
        next_queue = []
        for u in queue:
            for v, _ in adj[u]:
                if level[v] == -1:
                    level[v] = level[u] + 1
                    next_queue.append(v)
        queue = next_queue
    return level


def oracle_sssp_distances(g: CSRGraph, source: int = 0) -> list[float]:
    """Shortest-path distances by Bellman–Ford relaxation to a fixpoint.

    Deliberately *not* Dijkstra (the engine's exact reference is), so the
    oracle shares no algorithmic structure with either engine method.
    O(n·m) and obviously correct for nonnegative weights.
    """
    adj = adjacency(g)
    dist = [math.inf] * g.n
    dist[source] = 0.0
    for _ in range(g.n):
        changed = False
        for u in range(g.n):
            du = dist[u]
            if math.isinf(du):
                continue
            for v, w in adj[u]:
                if du + w < dist[v]:
                    dist[v] = du + w
                    changed = True
        if not changed:
            break
    return dist


def oracle_pagerank(
    g: CSRGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> list[float]:
    """Power-iteration PageRank with explicit per-vertex loops.

    Replicates the engine's semantics — uniform spread over out-neighbors
    (weights ignored), dangling mass redistributed uniformly, L1
    convergence test — but through dict adjacency and Python sums.
    """
    n = g.n
    if n == 0:
        return []
    adj = adjacency(g)
    out_degree = {u: len(adj[u]) for u in range(n)}
    in_nbrs: dict[int, list[int]] = {v: [] for v in range(n)}
    for u in range(n):
        for v, _ in adj[u]:
            in_nbrs[v].append(u)
    ranks = [1.0 / n] * n
    base = (1.0 - damping) / n
    for _ in range(max_iterations):
        dangling = sum(ranks[u] for u in range(n) if out_degree[u] == 0)
        dangling_mass = damping * dangling / n
        new = [
            base
            + dangling_mass
            + damping * sum(ranks[u] / out_degree[u] for u in in_nbrs[v])
            for v in range(n)
        ]
        delta = sum(abs(a - b) for a, b in zip(new, ranks))
        ranks = new
        if delta < tol:
            break
    return ranks


def oracle_component_labels(g: CSRGraph) -> list[int]:
    """Weak-component labels (minimum vertex id) by flood fill."""
    nbr = undirected_neighbor_sets(g)
    label = [-1] * g.n
    for start in range(g.n):
        if label[start] != -1:
            continue
        stack = [start]
        members = []
        label[start] = start
        while stack:
            u = stack.pop()
            members.append(u)
            for v in nbr[u]:
                if label[v] == -1:
                    label[v] = start
                    stack.append(v)
        # Engine convention: the label is the minimum member id, which is
        # `start` by construction (vertices are visited in id order).
    return label


def oracle_triangle_count(g: CSRGraph) -> int:
    """Global triangle count: per-edge neighbor-set intersections / 3."""
    nbr = undirected_neighbor_sets(g)
    total = 0
    for u, v in zip(g.edge_src.tolist(), g.edge_dst.tolist()):
        total += len(nbr[u] & nbr[v])
    return total // 3


def oracle_triangles_per_vertex(g: CSRGraph) -> list[int]:
    """Triangles through each vertex by ordered wedge enumeration."""
    nbr = undirected_neighbor_sets(g)
    counts = [0] * g.n
    for u in range(g.n):
        higher = {v for v in nbr[u] if v > u}
        for v in higher:
            for w in nbr[v] & higher:
                if w > v:
                    counts[u] += 1
                    counts[v] += 1
                    counts[w] += 1
    return counts


def oracle_clustering_coefficients(g: CSRGraph) -> list[float]:
    """Local clustering coefficient 2·T(v) / d(v)(d(v)−1) per vertex."""
    nbr = undirected_neighbor_sets(g)
    triangles = oracle_triangles_per_vertex(g)
    out = []
    for v in range(g.n):
        d = len(nbr[v])
        out.append(2.0 * triangles[v] / (d * (d - 1)) if d >= 2 else 0.0)
    return out


def oracle_mst_weight(g: CSRGraph) -> float:
    """Minimum-spanning-forest weight: sorted edges + dict union-find."""
    parent = {v: v for v in range(g.n)}

    def find(x: int) -> int:
        while parent[x] != x:
            x = parent[x]
        return x

    weights = (
        g.edge_weights.tolist() if g.is_weighted else [1.0] * g.num_edges
    )
    edges = sorted(
        zip(weights, g.edge_src.tolist(), g.edge_dst.tolist())
    )
    total = 0.0
    for w, u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            total += w
    return total


def oracle_core_numbers(g: CSRGraph) -> list[int]:
    """k-core numbers by literal repeated peeling.

    Round by round, remove every vertex whose residual degree is ≤ the
    current k; a vertex's core number is the k at which it fell.
    """
    nbr = {v: set(s) for v, s in undirected_neighbor_sets(g).items()}
    core = [0] * g.n
    remaining = set(range(g.n))
    k = 0
    while remaining:
        k = max(k, min(len(nbr[v]) for v in remaining))
        peel = [v for v in remaining if len(nbr[v]) <= k]
        while peel:
            v = peel.pop()
            if v not in remaining:
                continue
            remaining.discard(v)
            core[v] = k
            for u in nbr[v]:
                nbr[u].discard(v)
                if u in remaining and len(nbr[u]) <= k:
                    peel.append(u)
    return core


def oracle_degree_counts(g: CSRGraph) -> dict[int, int]:
    """Degree distribution as a ``{degree: vertex count}`` dict.

    Out-degrees for directed graphs, matching ``CSRGraph.degrees``.
    """
    adj = adjacency(g)
    counts: dict[int, int] = {}
    for v in range(g.n):
        d = len(adj[v])
        counts[d] = counts.get(d, 0) + 1
    return counts


# --------------------------------------------------------------------- #
# comparators (adapter-shaped)
# --------------------------------------------------------------------- #


def compare_scalar(engine: float, oracle: float, *, exact: bool = False) -> list[str]:
    """Scalar-adapter comparison: exact for counts, isclose for weights."""
    if exact:
        ok = engine == oracle
    else:
        ok = math.isclose(float(engine), float(oracle), rel_tol=1e-9, abs_tol=1e-9)
    return [] if ok else [f"engine={engine!r} oracle={oracle!r}"]


def compare_vector(engine, oracle, *, atol: float = 0.0, label: str = "value") -> list[str]:
    """Ordering/distribution-adapter comparison: positionwise, inf-aware."""
    a = np.asarray(engine, dtype=np.float64)
    b = np.asarray(oracle, dtype=np.float64)
    if a.shape != b.shape:
        return [f"shape mismatch: engine {a.shape} vs oracle {b.shape}"]
    both_inf = np.isinf(a) & np.isinf(b) & (np.sign(a) == np.sign(b))
    mismatch = ~both_inf & ~np.isclose(a, b, rtol=1e-9, atol=atol)
    if not mismatch.any():
        return []
    idx = int(np.flatnonzero(mismatch)[0])
    return [
        f"{int(mismatch.sum())} {label} mismatches; first at vertex {idx}: "
        f"engine={a[idx]!r} oracle={b[idx]!r}"
    ]


def compare_exact_ints(engine, oracle, *, label: str = "value") -> list[str]:
    a = np.asarray(engine, dtype=np.int64)
    b = np.asarray(oracle, dtype=np.int64)
    if a.shape != b.shape:
        return [f"shape mismatch: engine {a.shape} vs oracle {b.shape}"]
    mismatch = a != b
    if not mismatch.any():
        return []
    idx = int(np.flatnonzero(mismatch)[0])
    return [
        f"{int(mismatch.sum())} {label} mismatches; first at vertex {idx}: "
        f"engine={int(a[idx])} oracle={int(b[idx])}"
    ]


# --------------------------------------------------------------------- #
# the oracle table
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class OracleEntry:
    """One differential check: engine surface + oracle + comparator.

    ``engine`` receives the graph and returns the adapter-canonical value
    (registry entries run through :func:`build_algorithm(...).compute`);
    ``oracle`` recomputes it naively; ``compare(engine_value,
    oracle_value)`` returns mismatch strings.  ``directed_ok`` gates the
    entry out of directed scenarios (triangles/MST/k-core are undirected
    concepts in this library).
    """

    name: str
    adapter: str
    engine: Callable[[CSRGraph], Any]
    oracle: Callable[[CSRGraph], Any]
    compare: Callable[[Any, Any], list[str]]
    directed_ok: bool = True
    summary: str = ""


def _registry_engine(spec: str):
    """Engine runner: the registry algorithm, adapter-canonicalized."""

    def run(g: CSRGraph):
        return build_algorithm(spec).compute(g)

    return run


def _engine_bfs(g: CSRGraph):
    """BFS engine surface: the raw traversal plus its Graph500 validation.

    The traversal adapter scores BFS on the graphs rather than the output,
    so the differential check compares the *level* map (unique, unlike
    parents) and additionally demands the engine's parent vector pass the
    Graph500-style validator on its own graph.
    """
    result = bfs(g, 0)
    violations = validate_bfs_tree(g, result)
    return result.level, violations


def _compare_bfs(engine_value, oracle_levels) -> list[str]:
    levels, validator_errors = engine_value
    out = [f"validator: {msg}" for msg in validator_errors]
    out.extend(compare_exact_ints(levels, oracle_levels, label="level"))
    return out


def _engine_clustering(g: CSRGraph):
    """Local clustering from the engine's per-vertex triangle counts."""
    triangles = build_algorithm("tc_per_vertex").compute(g)
    d = g.degrees.astype(np.float64)
    denom = d * (d - 1.0)
    out = np.zeros(g.n)
    mask = denom > 0
    out[mask] = 2.0 * triangles[mask] / denom[mask]
    return out


def _engine_degree_counts(g: CSRGraph) -> dict[int, int]:
    values, counts = np.unique(g.degrees, return_counts=True)
    return dict(zip(values.tolist(), counts.tolist()))


def _compare_degree_counts(engine, oracle) -> list[str]:
    if engine == oracle:
        return []
    diff = {
        d: (engine.get(d, 0), oracle.get(d, 0))
        for d in sorted(set(engine) | set(oracle))
        if engine.get(d, 0) != oracle.get(d, 0)
    }
    return [f"degree histogram differs: {diff}"]


#: The standing differential battery.  Keys are stable case-report labels;
#: tests may copy this dict and break an entry to prove the harness bites.
ORACLES: dict[str, OracleEntry] = {
    entry.name: entry
    for entry in (
        OracleEntry(
            name="bfs",
            adapter="traversal",
            engine=_engine_bfs,
            oracle=lambda g: oracle_bfs_levels(g, 0),
            compare=_compare_bfs,
            summary="level map equality + Graph500 parent validation",
        ),
        OracleEntry(
            name="sssp_dijkstra",
            adapter="ordering",
            engine=_registry_engine("sssp(source=0, method=dijkstra)"),
            oracle=lambda g: oracle_sssp_distances(g, 0),
            compare=lambda a, b: compare_vector(a, b, atol=1e-9, label="distance"),
            summary="Dijkstra distances vs Bellman–Ford fixpoint",
        ),
        OracleEntry(
            name="sssp_delta",
            adapter="ordering",
            engine=_registry_engine("sssp(source=0, method=delta)"),
            oracle=lambda g: oracle_sssp_distances(g, 0),
            compare=lambda a, b: compare_vector(a, b, atol=1e-9, label="distance"),
            summary="Δ-stepping distances vs Bellman–Ford fixpoint",
        ),
        OracleEntry(
            name="pagerank",
            adapter="distribution",
            engine=_registry_engine("pagerank(iterations=200)"),
            oracle=lambda g: oracle_pagerank(g),
            compare=lambda a, b: compare_vector(a, b, atol=1e-8, label="rank"),
            summary="power iteration vs per-vertex Python loops",
        ),
        OracleEntry(
            name="cc",
            adapter="scalar",
            engine=lambda g: (
                build_algorithm("cc").compute(g),
                connected_components(g).labels,
            ),
            oracle=lambda g: oracle_component_labels(g),
            compare=lambda a, b: (
                compare_scalar(a[0], float(len(set(b))), exact=True)
                + compare_exact_ints(a[1], b, label="label")
            ),
            summary="component count and min-id labels vs flood fill",
        ),
        OracleEntry(
            name="tc",
            adapter="scalar",
            engine=_registry_engine("tc"),
            oracle=lambda g: float(oracle_triangle_count(g)),
            compare=lambda a, b: compare_scalar(a, b, exact=True),
            directed_ok=False,
            summary="forward wedge join vs set intersections",
        ),
        OracleEntry(
            name="clustering",
            adapter="ordering",
            engine=_engine_clustering,
            oracle=lambda g: oracle_clustering_coefficients(g),
            compare=lambda a, b: compare_vector(a, b, atol=1e-12, label="coefficient"),
            directed_ok=False,
            summary="clustering distribution from engine vs oracle triangle counts",
        ),
        OracleEntry(
            name="mst_kruskal",
            adapter="scalar",
            engine=_registry_engine("mst(method=kruskal)"),
            oracle=lambda g: oracle_mst_weight(g),
            compare=compare_scalar,
            directed_ok=False,
            summary="Kruskal forest weight vs sorted-edge dict union-find",
        ),
        OracleEntry(
            name="mst_boruvka",
            adapter="scalar",
            engine=_registry_engine("mst(method=boruvka)"),
            oracle=lambda g: oracle_mst_weight(g),
            compare=compare_scalar,
            directed_ok=False,
            summary="Borůvka forest weight vs sorted-edge dict union-find",
        ),
        OracleEntry(
            name="kcore",
            adapter="ordering",
            engine=_registry_engine("kcore"),
            oracle=lambda g: oracle_core_numbers(g),
            compare=lambda a, b: compare_exact_ints(a, b, label="core number"),
            directed_ok=False,
            summary="bucket peeling vs literal round-based peeling",
        ),
        OracleEntry(
            name="degrees",
            adapter="distribution",
            engine=_engine_degree_counts,
            oracle=oracle_degree_counts,
            compare=_compare_degree_counts,
            summary="degree histogram vs edge-by-edge counting",
        ),
    )
}
