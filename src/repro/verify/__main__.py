"""``python -m repro.verify`` — the fuzz harness CLI (see fuzz.main)."""

from repro.verify.fuzz import main

if __name__ == "__main__":
    raise SystemExit(main())
