"""Deterministic fuzz harness: the scenario matrix, the driver, replay.

The matrix is the cross product

    generator family x directed/undirected x weighted/unweighted x seed

where every axis is encoded into a stable **case id**
(``powerlaw_cluster.und.wtd.s2``), so any failing scenario reproduces
from its id alone — the harness never needs to ship random state.  Each
case builds its graph deterministically, runs the full differential
battery (:mod:`repro.verify.oracles`) against the engine, and — on
undirected cases — sweeps the registered compression schemes through the
metamorphic invariants (:mod:`repro.verify.properties`).

On failure the driver emits, per failing case:

- ``<artifacts>/<case_id>.npz`` — a binary CSR snapshot of the offending
  graph (loadable with :func:`repro.graphs.snapshot.load_snapshot`);
- ``<artifacts>/<case_id>.json`` — the failure messages;
- a minimal reproduction command::

      python -m repro.verify replay --case <case_id>

``python -m repro.verify --smoke`` runs the CI budget (3 seeds, every
family, both directedness and weight axes, scheme invariants, one
store/parallel equivalence pass); the default budget is the same matrix
over more seeds.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.compress.registry import registered_schemes
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.graphs.weights import with_uniform_weights
from repro.utils.rng import as_generator
from repro.utils.timer import stopwatch
from repro.verify import properties
from repro.verify.oracles import ORACLES

__all__ = [
    "FuzzCase",
    "CaseReport",
    "MatrixSummary",
    "FAMILIES",
    "DELTA_FAMILIES",
    "scheme_matrix",
    "SMOKE_SEEDS",
    "DEFAULT_SEEDS",
    "build_cases",
    "build_graph",
    "run_case",
    "run_matrix",
    "replay_command",
    "main",
]

SMOKE_SEEDS = (0, 1, 2)
DEFAULT_SEEDS = (0, 1, 2, 3, 4, 5, 6)

#: family name -> deterministic builder of the undirected, unweighted
#: base graph for one seed.  Sizes are chosen so the pure-Python oracles
#: stay comfortably inside the CI budget while still exercising the
#: regimes the paper varies (power law, small world, grid, random,
#: degenerate shapes).
FAMILIES = {
    "rmat": lambda seed: gen.rmat(6, 4, seed=seed),
    "powerlaw_cluster": lambda seed: gen.powerlaw_cluster(90, 3, 0.5, seed=seed),
    "watts_strogatz": lambda seed: gen.watts_strogatz(80, 4, 0.2, seed=seed),
    # The deterministic families take no RNG; the seed varies their shape
    # instead.  The (seed % 7, seed // 7) grid split and the seed-linear
    # path length keep every seed a distinct graph at any realistic
    # budget, while component sizes stay bounded.
    "grid_2d": lambda seed: gen.grid_2d(
        5 + seed % 7, 7 + seed // 7, diagonals=bool(seed % 2)
    ),
    "erdos_renyi": lambda seed: gen.erdos_renyi(80, m=200, seed=seed),
    "degenerate": lambda seed: gen.disjoint_union(
        gen.star_graph(10 + seed % 4),
        gen.path_graph(5 + seed),
        gen.cycle_graph(5 + seed % 4),
        gen.complete_graph(4 + seed % 3),
        gen.balanced_tree(2, 2 + seed % 2),
        gen.triangle_strip(4 + seed % 3),
    ),
}

def _delta_batches(
    g: CSRGraph,
    seed: int,
    *,
    batches: int = 3,
    ops: int = 12,
    insert_frac: float = 0.5,
    grow_vertices: int = 0,
):
    """Deterministic, sequentially valid delta batches for ``g``.

    ``insert_frac`` splits each batch's ``ops`` between inserts and
    deletes; ``grow_vertices`` stretches the vertex set per batch (the
    growth path of :meth:`CSRGraph.insert_edges`).  Weighted graphs get
    weighted inserts plus a couple of weight updates per batch.  Fully
    determined by ``(g, seed)``, so a case id replays its delta stream.
    """
    from repro.stream.delta import EdgeDelta

    rng = as_generator((seed + 1) * 86243)
    edges = set(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
    weighted = g.is_weighted
    n = g.n
    deltas = []
    for _ in range(batches):
        num_ins = int(round(ops * insert_frac))
        num_del = ops - num_ins
        pool = sorted(edges)
        deletes: list[tuple[int, int]] = []
        take = min(num_del, len(pool))
        if take:
            idx = rng.choice(len(pool), size=take, replace=False)
            deletes = [pool[i] for i in sorted(idx.tolist())]
            edges.difference_update(deletes)
        n += grow_vertices
        inserts: list = []
        fresh: set = set()
        tries = 0
        while len(fresh) < num_ins and tries < 60 * max(num_ins, 1):
            tries += 1
            u = int(rng.integers(n))
            v = int(rng.integers(n))
            if u == v:
                continue
            p = (min(u, v), max(u, v))
            if p in edges or p in fresh or p in deletes:
                continue
            fresh.add(p)
            inserts.append(
                (*p, round(float(rng.uniform(0.5, 2.0)), 3)) if weighted else p
            )
        edges.update(fresh)
        updates = None
        if weighted:
            survivors = sorted(edges - fresh)
            take_u = min(2, len(survivors))
            if take_u:
                idx = rng.choice(len(survivors), size=take_u, replace=False)
                updates = [
                    (*survivors[i], round(float(rng.uniform(0.5, 2.0)), 3))
                    for i in sorted(idx.tolist())
                ]
        deltas.append(
            EdgeDelta.build(
                inserts=inserts,
                deletes=deletes,
                updates=updates,
                directed=g.directed,
                num_vertices=n,
            )
        )
    return deltas


#: delta family name -> deterministic builder ``fn(g, seed) ->
#: list[EdgeDelta]``.  Same replayability contract as :data:`FAMILIES`:
#: a case id pins the base graph *and* (via the seed) its delta stream,
#: so a failing incremental check replays exactly.
DELTA_FAMILIES = {
    # balanced insert/delete churn — the steady-state streaming regime
    "churn": lambda g, seed: _delta_batches(g, seed, insert_frac=0.5),
    # insert-heavy with vertex growth — exercises mapping/degree growth
    "grow": lambda g, seed: _delta_batches(
        g, seed, insert_frac=0.8, grow_vertices=2
    ),
    # delete-heavy — exercises repair around removed structure
    "shrink": lambda g, seed: _delta_batches(g, seed, insert_frac=0.2),
}

_DIR_TOKENS = {False: "und", True: "dir"}
_WEIGHT_TOKENS = {False: "unw", True: "wtd"}


@dataclass(frozen=True)
class FuzzCase:
    """One scenario of the matrix; fully determined by its four axes."""

    family: str
    directed: bool
    weighted: bool
    seed: int

    @property
    def case_id(self) -> str:
        return (
            f"{self.family}.{_DIR_TOKENS[self.directed]}."
            f"{_WEIGHT_TOKENS[self.weighted]}.s{self.seed}"
        )

    @classmethod
    def from_id(cls, case_id: str) -> "FuzzCase":
        try:
            family, dir_tok, w_tok, seed_tok = case_id.split(".")
            if family not in FAMILIES:
                raise ValueError(f"unknown family {family!r}")
            directed = {v: k for k, v in _DIR_TOKENS.items()}[dir_tok]
            weighted = {v: k for k, v in _WEIGHT_TOKENS.items()}[w_tok]
            if not seed_tok.startswith("s"):
                raise ValueError("seed token must look like s<int>")
            seed = int(seed_tok[1:])
            if seed < 0:
                raise ValueError("seed must be >= 0")
            return cls(family, directed, weighted, seed)
        except (KeyError, ValueError) as err:
            raise ValueError(
                f"malformed case id {case_id!r} "
                f"(expected <family>.<und|dir>.<unw|wtd>.s<seed>): {err}"
            ) from None


def build_graph(case: FuzzCase) -> CSRGraph:
    """Deterministically rebuild a case's graph from its axes alone."""
    base = FAMILIES[case.family](case.seed)
    g = base
    if case.directed:
        # Asymmetric orientation: each undirected edge becomes the
        # forward arc, the reverse arc, or both (seeded draw).  This
        # produces genuinely directed structure — one-way reachability
        # and dangling vertices (in-arcs but no out-arcs) — so the
        # directed axis exercises e.g. PageRank's dangling-mass
        # redistribution rather than a symmetric digraph's dead path.
        rng = as_generator(case.seed + 104729)
        choice = rng.integers(0, 3, size=base.num_edges)
        fwd = choice != 1  # u -> v kept for draws 0 and 2
        rev = choice != 0  # v -> u kept for draws 1 and 2
        src = np.concatenate([base.edge_src[fwd], base.edge_dst[rev]])
        dst = np.concatenate([base.edge_dst[fwd], base.edge_src[rev]])
        g = CSRGraph.from_edges(base.n, src, dst, directed=True)
    if case.weighted:
        g = with_uniform_weights(g, seed=case.seed + 7919)
    return g


def build_cases(
    *,
    seeds=SMOKE_SEEDS,
    families=None,
    directed=(False, True),
    weighted=(False, True),
) -> list[FuzzCase]:
    names = list(families) if families else list(FAMILIES)
    unknown = [f for f in names if f not in FAMILIES]
    if unknown:
        raise ValueError(
            f"unknown families {unknown}; available: {sorted(FAMILIES)}"
        )
    bad_seeds = [s for s in seeds if int(s) < 0]
    if bad_seeds:
        raise ValueError(f"seeds must be >= 0, got {bad_seeds}")
    return [
        FuzzCase(family, d, w, int(seed))
        for family in names
        for d in directed
        for w in weighted
        for seed in seeds
    ]


# --------------------------------------------------------------------- #
# the per-scheme metamorphic matrix
# --------------------------------------------------------------------- #


def scheme_matrix() -> list[tuple[str, str]]:
    """(canonical scheme name, default spec) for every registered scheme.

    Uses each registry entry's documented ``example`` spec so newly
    registered schemes join the fuzz matrix automatically, plus two chain
    pipelines exercising lineage composition.
    """
    out = [
        (name, entry.example) for name, entry in registered_schemes().items()
    ]
    out.append(("chain", "uniform(p=0.9) | spanner(k=4)"))
    out.append(("chain", "EO-0.5-1-TR | low_degree(max_degree=1)"))
    return out


def _classify(name: str, spec: str) -> tuple[bool, bool]:
    """(is_subgraph, keeps_weights) for one matrix entry.

    Chains are classified by their *stages* — a pipeline is an
    edge-subset (weight-preserving) transform exactly when every stage
    is — so widening the chain coverage with a reweighting stage cannot
    produce false failures.
    """
    if name != "chain":
        return (
            name in properties.SUBGRAPH_SCHEMES,
            name in properties.WEIGHT_PRESERVING_SCHEMES,
        )
    from repro.compress.spec import SchemeSpec

    stage_names = [stage.name for stage in SchemeSpec.parse(spec).stages]
    return (
        all(s in properties.SUBGRAPH_SCHEMES for s in stage_names),
        all(s in properties.WEIGHT_PRESERVING_SCHEMES for s in stage_names),
    )


def _scheme_checks(case: FuzzCase, g: CSRGraph) -> tuple[int, list[str]]:
    """Run every registered scheme through its metamorphic invariants."""
    from repro.compress.registry import build_scheme

    checks = 0
    failures: list[str] = []
    for name, spec in scheme_matrix():
        checks += 1
        is_subgraph, keeps_weights = _classify(name, spec)
        try:
            result = build_scheme(spec).compress(g, seed=case.seed)
            result.graph.validate()
            msgs = properties.lineage_composes(result)
            if is_subgraph:
                msgs += properties.subgraph_invariants(
                    result, weights_preserved=keeps_weights
                )
        except Exception as err:  # compress itself must never blow up
            msgs = [f"raised {type(err).__name__}: {err}"]
        failures.extend(f"scheme[{spec}]: {m}" for m in msgs)

    def guarded(label: str, check) -> list[str]:
        # A crashing property check must become a recorded failure (with
        # its replay artifact), never abort the whole matrix — same
        # contract as the oracle loop.
        try:
            msgs = check()
        except Exception as err:
            msgs = [f"raised {type(err).__name__}: {err}"]
        return [f"{label}: {m}" for m in msgs]

    checks += 3
    failures.extend(
        guarded(
            "tr_connectivity",
            lambda: properties.tr_preserves_components(g, seed=case.seed),
        )
    )
    failures.extend(
        guarded(
            "spanner_stretch",
            lambda: properties.spanner_invariants(g, k=4, seed=case.seed),
        )
    )
    rng = as_generator(case.seed + 31)
    mask = rng.random(g.num_edges) < 0.6
    failures.extend(
        guarded("fastpath_identity", lambda: properties.fastpath_identity(g, mask))
    )

    # Streaming metamorphic invariant: every delta family × every scheme
    # with an incremental maintainer.  The delta stream is rebuilt from
    # (g, seed), so these replay from the case id like everything else.
    incremental_specs = ("spanner(k=4)", "EO-0.8-1-TR", "low_degree")
    for fam_name, delta_builder in DELTA_FAMILIES.items():
        for spec in incremental_specs:
            checks += 1
            failures.extend(
                guarded(
                    f"incremental[{spec}][{fam_name}]",
                    lambda b=delta_builder, s=spec: (
                        properties.incremental_equivalence(
                            g, b(g, case.seed), s, seed=case.seed
                        )
                    ),
                )
            )
    return checks, failures


def _snapshot_check(g: CSRGraph) -> list[str]:
    try:
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            msgs = properties.snapshot_roundtrip(g, tmp)
    except Exception as err:
        msgs = [f"raised {type(err).__name__}: {err}"]
    return [f"snapshot_roundtrip: {m}" for m in msgs]


@dataclass
class CaseReport:
    """Outcome of one scenario: how much was checked, what failed."""

    case: FuzzCase
    checks: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_case(
    case: FuzzCase,
    *,
    oracle_table=None,
    schemes: bool = True,
) -> CaseReport:
    """Run one scenario: oracles always, scheme invariants when asked.

    ``oracle_table`` overrides :data:`~repro.verify.oracles.ORACLES`
    (how the test suite proves a broken oracle produces a failing,
    replayable case).  Scheme invariants run on undirected cases only —
    the compression schemes themselves are undirected-graph transforms.
    """
    g = build_graph(case)
    report = CaseReport(case)
    for entry in (oracle_table if oracle_table is not None else ORACLES).values():
        if g.directed and not entry.directed_ok:
            continue
        report.checks += 1
        try:
            msgs = entry.compare(entry.engine(g), entry.oracle(g))
        except Exception as err:
            msgs = [f"raised {type(err).__name__}: {err}"]
        report.failures.extend(f"oracle[{entry.name}]: {m}" for m in msgs)
    report.checks += 1
    report.failures.extend(_snapshot_check(g))
    if schemes and not case.directed:
        checks, failures = _scheme_checks(case, g)
        report.checks += checks
        report.failures.extend(failures)
    return report


def replay_command(case: FuzzCase) -> str:
    """The minimal reproduction command printed with every failure."""
    return f"python -m repro.verify replay --case {case.case_id}"


@dataclass
class MatrixSummary:
    """Aggregate of one driver run."""

    reports: list[CaseReport]
    global_failures: list[str] = field(default_factory=list)
    seconds: float = 0.0
    #: Size of the oracle battery that actually ran (a custom
    #: ``oracle_table`` override is reflected here, not the global table).
    num_oracles: int = len(ORACLES)

    @property
    def num_cases(self) -> int:
        return len(self.reports)

    @property
    def num_checks(self) -> int:
        return sum(r.checks for r in self.reports)

    @property
    def failing(self) -> list[CaseReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failing and not self.global_failures

    def perf(self) -> dict:
        """JSON-safe counters for a ``BENCH_verify``-style record."""
        families = sorted({r.case.family for r in self.reports})
        seeds = sorted({r.case.seed for r in self.reports})
        return {
            "cases": self.num_cases,
            "checks": self.num_checks,
            "oracles": self.num_oracles,
            "families": families,
            "seeds": seeds,
            "failing_cases": [r.case.case_id for r in self.failing],
            "global_failures": list(self.global_failures),
            "wall_seconds": self.seconds,
        }


def _write_failure_artifacts(report: CaseReport, artifacts: Path) -> Path:
    from repro.graphs.snapshot import save_snapshot

    artifacts.mkdir(parents=True, exist_ok=True)
    g = build_graph(report.case)
    save_snapshot(g, artifacts / f"{report.case.case_id}.npz")
    record = {
        "case": report.case.case_id,
        "replay": replay_command(report.case),
        "failures": report.failures,
    }
    path = artifacts / f"{report.case.case_id}.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def run_matrix(
    cases,
    *,
    oracle_table=None,
    schemes: bool = True,
    global_checks: bool = True,
    artifacts=None,
    log=print,
) -> MatrixSummary:
    """Drive every case; write per-case artifacts for the failures.

    ``global_checks`` additionally runs the run-once invariants on one
    representative graph: store round trips replay with zero
    recomputation, and a process-pool grid equals the in-memory grid.
    """
    reports: list[CaseReport] = []
    global_failures: list[str] = []
    with stopwatch() as wall:
        for case in cases:
            report = run_case(case, oracle_table=oracle_table, schemes=schemes)
            reports.append(report)
            if not report.ok:
                log(f"FAIL {case.case_id}: {len(report.failures)} failure(s)")
                for msg in report.failures[:5]:
                    log(f"  - {msg}")
                if artifacts is not None:
                    _write_failure_artifacts(report, Path(artifacts))
                log(f"  replay: {replay_command(case)}")
        if global_checks:
            probe = build_graph(FuzzCase("powerlaw_cluster", False, False, 0))
            with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
                global_failures.extend(
                    f"store_roundtrip: {m}"
                    for m in properties.store_roundtrip(probe, tmp)
                )
            global_failures.extend(
                f"parallel_grid: {m}"
                for m in properties.parallel_grid_equivalence(probe)
            )
            for msg in global_failures:
                log(f"FAIL global: {msg}")
            if global_failures and artifacts is not None:
                # Global checks have no per-case snapshot; record the
                # failure messages so the CI artifact is never empty.
                path = Path(artifacts)
                path.mkdir(parents=True, exist_ok=True)
                (path / "global.json").write_text(
                    json.dumps({"failures": global_failures}, indent=2) + "\n"
                )
    return MatrixSummary(
        reports,
        global_failures,
        seconds=wall.seconds,
        num_oracles=len(oracle_table if oracle_table is not None else ORACLES),
    )


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential-oracle and metamorphic fuzzing of the "
        "engine: generator matrix x oracles x scheme invariants.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI budget: seeds {SMOKE_SEEDS} (default: {DEFAULT_SEEDS})",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", metavar="S", help="explicit seed list"
    )
    parser.add_argument(
        "--families",
        nargs="+",
        metavar="F",
        help=f"restrict families (available: {', '.join(sorted(FAMILIES))})",
    )
    parser.add_argument(
        "--no-schemes",
        action="store_true",
        help="skip the per-scheme metamorphic invariants (oracles only)",
    )
    parser.add_argument(
        "--no-global",
        action="store_true",
        help="skip the run-once store/parallel equivalence checks",
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=".verify-artifacts",
        help="directory for failure snapshots (default .verify-artifacts)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write a BENCH_verify.json perf record under DIR",
    )
    parser.add_argument(
        "--list-cases", action="store_true", help="print the case ids and exit"
    )
    return parser


def _replay_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify replay",
        description="Re-run one scenario by case id (deterministic).",
    )
    parser.add_argument("--case", required=True, metavar="ID")
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=".verify-artifacts",
        help="directory for failure snapshots (default .verify-artifacts)",
    )
    parser.add_argument(
        "--no-schemes", action="store_true", help="oracles only"
    )
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)

    if argv and argv[0] == "replay":
        args = _replay_parser().parse_args(argv[1:])
        try:
            case = FuzzCase.from_id(args.case)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        report = run_case(case, schemes=not args.no_schemes)
        if report.ok:
            print(f"ok: {case.case_id} ({report.checks} checks)")
            return 0
        print(f"FAIL {case.case_id}: {len(report.failures)} failure(s)")
        for msg in report.failures:
            print(f"  - {msg}")
        _write_failure_artifacts(report, Path(args.artifacts))
        print(f"snapshot: {Path(args.artifacts) / (case.case_id + '.npz')}")
        return 1

    args = _run_parser().parse_args(argv)
    seeds = args.seeds or (SMOKE_SEEDS if args.smoke else DEFAULT_SEEDS)
    try:
        cases = build_cases(seeds=seeds, families=args.families)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.list_cases:
        for case in cases:
            print(case.case_id)
        return 0

    summary = run_matrix(
        cases,
        schemes=not args.no_schemes,
        global_checks=not args.no_global,
        artifacts=args.artifacts,
    )
    if args.out:
        from repro.runner.harness import write_perf_record

        record_path = write_perf_record("verify", summary.perf(), args.out)
        print(f"perf record: {record_path}")

    families = sorted({c.family for c in cases})
    print(
        f"verify: {summary.num_checks} checks over {summary.num_cases} cases "
        f"({len(ORACLES)} oracles x {len(families)} families x "
        f"directed/undirected x weighted/unweighted x {len(seeds)} seeds) "
        f"in {summary.seconds:.1f}s"
    )
    if summary.ok:
        print("all checks passed")
        return 0
    print(
        f"{len(summary.failing)} failing case(s), "
        f"{len(summary.global_failures)} global failure(s); "
        f"artifacts under {args.artifacts}"
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
