"""Differential-oracle and metamorphic verification subsystem.

The library's standing safety net (the complement of the example-based
unit tests): naive, obviously-correct reference implementations of the
core registered algorithms (:mod:`repro.verify.oracles`), metamorphic
invariants of the compression pipeline expressed against the Table 3
predicates (:mod:`repro.verify.properties`), and a deterministic fuzz
driver sweeping both over a generator x directedness x weights x seed
matrix with replayable failure artifacts (:mod:`repro.verify.fuzz`).

Run it::

    python -m repro.verify --smoke            # CI budget, < 2 min
    python -m repro.verify                    # full seed budget
    python -m repro.verify replay --case powerlaw_cluster.und.wtd.s2
"""

from repro.verify.fuzz import (
    FAMILIES,
    FuzzCase,
    build_cases,
    build_graph,
    replay_command,
    run_case,
    run_matrix,
)
from repro.verify.oracles import ORACLES, OracleEntry

__all__ = [
    "FAMILIES",
    "FuzzCase",
    "ORACLES",
    "OracleEntry",
    "build_cases",
    "build_graph",
    "replay_command",
    "run_case",
    "run_matrix",
]
