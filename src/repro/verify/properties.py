"""Metamorphic invariants of the compression pipeline.

Where :mod:`repro.verify.oracles` checks "the engine computes the right
number", this module checks "the *relationships* the paper guarantees
hold between related runs": subgraph schemes return edge-subsets with
consistent vertex alignment, EO-Triangle-Reduction preserves
connectivity (§6.1), spanners bound distance stretch, chain lineages
compose stage by stage, the sort-free transform fast paths are
buffer-identical to the legacy rebuild, snapshot/store round trips are
fingerprint-stable, and parallel grids equal in-memory grids.

Every check returns a list of human-readable violation strings (empty =
pass), the same contract as the oracle comparators, so the fuzz driver
can aggregate them uniformly.  The quantitative bounds are *not*
restated here — they are evaluated through the Table 3 predicates in
:mod:`repro.theory.bounds`, so a future bound change propagates into the
fuzz harness automatically.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.components import connected_components
from repro.compress.base import CompressionResult
from repro.compress.mappings import vertex_alignment
from repro.compress.registry import build_scheme
from repro.graphs.csr import CSRGraph
from repro.theory import bounds

__all__ = [
    "SUBGRAPH_SCHEMES",
    "WEIGHT_PRESERVING_SCHEMES",
    "subgraph_invariants",
    "lineage_composes",
    "tr_preserves_components",
    "spanner_invariants",
    "fastpath_identity",
    "incremental_equivalence",
    "snapshot_roundtrip",
    "store_roundtrip",
    "parallel_grid_equivalence",
]

#: Registered schemes whose output is structurally a subgraph of the
#: input (Table 3's footnote family): every compressed edge exists in the
#: original, so the monotonicity predicates apply deterministically.
SUBGRAPH_SCHEMES = frozenset(
    {
        "uniform",
        "spectral",
        "spanner",
        "triangle_reduction",
        "vertex_sampling",
        "random_walk_sampling",
        "low_degree",
        "cut_sparsifier",
    }
)

#: Subgraph schemes that also keep the surviving edges' weights verbatim
#: (spectral sparsifiers and cut sparsifiers reweight by inverse
#: sampling probability, so they are endpoint-subsets only).
WEIGHT_PRESERVING_SCHEMES = frozenset(
    {
        "uniform",
        "spanner",
        "triangle_reduction",
        "vertex_sampling",
        "random_walk_sampling",
        "low_degree",
    }
)


def _edge_pair_set(g: CSRGraph) -> set[tuple[int, int]]:
    return set(zip(g.edge_src.tolist(), g.edge_dst.tolist()))


def _failed(check: bounds.BoundCheck) -> list[str]:
    if check.holds:
        return []
    return [
        f"bound violated: {check.name} "
        f"(observed {check.observed}, bound {check.bound})"
    ]


def subgraph_invariants(
    result: CompressionResult, *, weights_preserved: bool = True
) -> list[str]:
    """The Table 3 footnote contract of every subgraph scheme.

    Checks (on a :class:`CompressionResult`):

    1. directedness is preserved;
    2. vertex alignment is consistent — identity when the vertex count is
       unchanged, otherwise :func:`~repro.compress.mappings.
       vertex_alignment` must recover an in-range original→compressed
       map from the recorded provenance;
    3. when the vertex set is preserved, every compressed edge is an
       original edge (``weights_preserved`` additionally demands the
       surviving weights match verbatim);
    4. the deterministic monotone bounds: m never increases, max degree
       never increases, #CC never decreases, T never increases.
    """
    orig, comp = result.original, result.graph
    out: list[str] = []
    if comp.directed != orig.directed:
        out.append(
            f"directedness changed: {orig.directed} -> {comp.directed}"
        )
        return out

    alignment = vertex_alignment(result)
    if comp.n != orig.n:
        if alignment is None:
            out.append(
                f"vertex count changed ({orig.n} -> {comp.n}) but no "
                "alignment is recoverable from the result's provenance"
            )
        else:
            if len(alignment) != orig.n:
                out.append(
                    f"alignment length {len(alignment)} != original n {orig.n}"
                )
            alive = alignment[alignment >= 0]
            if alive.size and int(alive.max()) >= comp.n:
                out.append(
                    f"alignment points at vertex {int(alive.max())} outside "
                    f"the compressed graph (n={comp.n})"
                )
        # The count-only monotone bounds hold for vertex-removing subgraph
        # schemes even after relabeling (removal cannot add edges,
        # degrees, or triangles).  #CC monotonicity is the exception —
        # dropping a whole component removes it from the count — and the
        # per-edge subset checks need a shared vertex id space.
        out += _failed(bounds.subgraph_monotone_edges(orig.num_edges, comp.num_edges))
        d0 = int(orig.degrees.max()) if orig.n and orig.num_edges else 0
        d1 = int(comp.degrees.max()) if comp.n and comp.num_edges else 0
        out += _failed(bounds.subgraph_monotone_max_degree(d0, d1))
        if not orig.directed:
            from repro.algorithms.triangles import count_triangles

            out += _failed(
                bounds.subgraph_monotone_triangles(
                    count_triangles(orig), count_triangles(comp)
                )
            )
        return out

    pairs_orig = _edge_pair_set(orig)
    pairs_comp = _edge_pair_set(comp)
    foreign = pairs_comp - pairs_orig
    if foreign:
        u, v = sorted(foreign)[0]
        out.append(
            f"{len(foreign)} compressed edges do not exist in the "
            f"original; first: ({u}, {v})"
        )
    if weights_preserved:
        if orig.is_weighted != comp.is_weighted:
            out.append(
                f"weightedness changed: {orig.is_weighted} -> {comp.is_weighted}"
            )
        elif orig.is_weighted and not foreign:
            w_orig = {
                (u, v): w
                for u, v, w in zip(
                    orig.edge_src.tolist(),
                    orig.edge_dst.tolist(),
                    orig.edge_weights.tolist(),
                )
            }
            for u, v, w in zip(
                comp.edge_src.tolist(),
                comp.edge_dst.tolist(),
                comp.edge_weights.tolist(),
            ):
                if w != w_orig[(u, v)]:
                    out.append(
                        f"weight of surviving edge ({u}, {v}) changed: "
                        f"{w_orig[(u, v)]} -> {w}"
                    )
                    break

    out += _failed(bounds.subgraph_monotone_edges(orig.num_edges, comp.num_edges))
    d0 = int(orig.degrees.max()) if orig.n else 0
    d1 = int(comp.degrees.max()) if comp.n else 0
    out += _failed(bounds.subgraph_monotone_max_degree(d0, d1))
    c0 = connected_components(orig).num_components
    c1 = connected_components(comp).num_components
    out += _failed(bounds.subgraph_monotone_components(c0, c1))
    if not orig.directed:
        from repro.algorithms.triangles import count_triangles

        out += _failed(
            bounds.subgraph_monotone_triangles(
                count_triangles(orig), count_triangles(comp)
            )
        )
    return out


def lineage_composes(result: CompressionResult) -> list[str]:
    """Stage records must chain: out-counts feed the next stage's in-counts,
    and the endpoints match the result's original/compressed graphs."""
    records = result.lineage
    out: list[str] = []
    if not records:
        return ["result has no lineage records"]
    if records[0].vertices_in != result.original.n:
        out.append(
            f"lineage starts at n={records[0].vertices_in}, "
            f"original has n={result.original.n}"
        )
    if records[0].edges_in != result.original.num_edges:
        out.append(
            f"lineage starts at m={records[0].edges_in}, "
            f"original has m={result.original.num_edges}"
        )
    for i, (a, b) in enumerate(zip(records, records[1:])):
        if a.vertices_out != b.vertices_in:
            out.append(
                f"stage {i} ({a.scheme}) ends at n={a.vertices_out} but "
                f"stage {i + 1} ({b.scheme}) starts at n={b.vertices_in}"
            )
        if a.edges_out != b.edges_in:
            out.append(
                f"stage {i} ({a.scheme}) ends at m={a.edges_out} but "
                f"stage {i + 1} ({b.scheme}) starts at m={b.edges_in}"
            )
    if records[-1].vertices_out != result.graph.n:
        out.append(
            f"lineage ends at n={records[-1].vertices_out}, "
            f"compressed has n={result.graph.n}"
        )
    if records[-1].edges_out != result.graph.num_edges:
        out.append(
            f"lineage ends at m={records[-1].edges_out}, "
            f"compressed has m={result.graph.num_edges}"
        )
    return out


def tr_preserves_components(
    g: CSRGraph, *, p: float = 0.8, seed=0
) -> list[str]:
    """§6.1: Edge-Once TR deletes at most one edge per triangle cycle, so
    the component structure survives (checked via the Table 3 predicate)."""
    result = build_scheme(f"EO-{p}-1-TR").compress(g, seed=seed)
    c0 = connected_components(g).num_components
    c1 = connected_components(result.graph).num_components
    return _failed(bounds.eo_tr_components(c0, c1))


def spanner_invariants(
    g: CSRGraph, *, k: int = 4, seed=0, num_sources: int = 3
) -> list[str]:
    """Spanners preserve connectivity and bound distance stretch.

    Connectivity is the deterministic Table 3 cell; stretch is checked
    pairwise from sampled sources through
    :func:`repro.theory.bounds.spanner_distance_stretch` (the classic
    greedy construction gives 2k−1; the LDD construction here is O(k)
    w.h.p., which is what the predicate encodes).
    """
    result = build_scheme(f"spanner(k={k})").compress(g, seed=seed)
    comp = result.graph
    out = _failed(
        bounds.spanner_components(
            connected_components(g).num_components,
            connected_components(comp).num_components,
        )
    )

    def distances(graph: CSRGraph, source: int) -> np.ndarray:
        # Hop distances: the default (hop-grown) spanner's guarantee is
        # stretch in hop space; Spanner(weighted=True) trades that for
        # weighted-SSSP stretch and has its own dedicated tests.
        level = bfs(graph, source).level.astype(np.float64)
        level[level < 0] = np.inf
        return level

    sources = [v for v in range(g.n) if g.degree(v) > 0][:num_sources]
    for s in sources:
        d0 = distances(g, s)
        d1 = distances(comp, s)
        for v in np.flatnonzero(np.isfinite(d0)):
            check = bounds.spanner_distance_stretch(
                float(d0[v]), float(d1[v]), k
            )
            if not check.holds:
                out.append(
                    f"stretch violated for pair ({s}, {int(v)}): "
                    f"original {d0[v]}, spanner {d1[v]}, bound {check.bound}"
                )
                return out
    return out


def incremental_equivalence(
    g: CSRGraph,
    deltas,
    spec: str,
    *,
    seed=0,
    churn_threshold: float = 0.25,
    num_sources: int = 2,
) -> list[str]:
    """The streaming metamorphic invariant:
    ``recompress(apply(G, Δ)) ≡ incremental(G, Δ)``.

    A maintainer for ``spec`` is attached to ``g`` and advanced through
    ``deltas`` alongside a :class:`~repro.stream.ingest.GraphStream`.
    After every generation the maintained output must match a full
    recompress of that generation:

    - **exactly** (bit-identical buffers) for deterministic maintainers
      (``low_degree``);
    - **contract-level** for seeded ones — the output passes the batch
      scheme's subgraph invariants against the current generation, plus
      the scheme's deterministic Table 3 cell: #CC preserved
      (``spanner_components`` / ``eo_tr_components``) and, for spanners,
      the O(k) distance-stretch bound on sampled sources.

    Returns violation strings (empty = pass); stops at the first failing
    generation so the messages point at the earliest divergence.
    """
    from repro.stream.incremental import maintainer_for
    from repro.stream.ingest import GraphStream

    maintainer = maintainer_for(
        spec, seed=seed, churn_threshold=churn_threshold
    )
    stream = GraphStream(g)
    maintainer.attach(g)
    out: list[str] = []
    for i, delta in enumerate(deltas):
        generation = stream.apply(delta)
        maintainer.update(delta, generation)
        ctx = f"generation {i + 1} of {spec}"
        out += [f"{ctx}: {m}" for m in subgraph_invariants(maintainer.result())]
        comp = maintainer.compressed
        if maintainer.deterministic:
            batch = build_scheme(spec).compress(generation, seed=seed).graph
            out += _compare_buffers(comp, batch, f"({ctx} vs full recompress)")
        else:
            c0 = connected_components(generation).num_components
            c1 = connected_components(comp).num_components
            if maintainer.scheme_name == "spanner":
                out += [
                    f"{ctx}: {m}"
                    for m in _failed(bounds.spanner_components(c0, c1))
                ]
                k = maintainer.params()["k"]
                sources = np.flatnonzero(generation.degrees > 0)[:num_sources]
                for s in (int(v) for v in sources):
                    d0 = bfs(generation, s).level.astype(np.float64)
                    d1 = bfs(comp, s).level.astype(np.float64)
                    d0[d0 < 0] = np.inf
                    d1[d1 < 0] = np.inf
                    for v in np.flatnonzero(np.isfinite(d0)):
                        check = bounds.spanner_distance_stretch(
                            float(d0[v]), float(d1[v]), k
                        )
                        if not check.holds:
                            out.append(
                                f"{ctx}: stretch violated for pair "
                                f"({s}, {int(v)}): original {d0[v]}, "
                                f"maintained {d1[v]}, bound {check.bound}"
                            )
                            break
            else:
                out += [
                    f"{ctx}: {m}"
                    for m in _failed(bounds.eo_tr_components(c0, c1))
                ]
        if out:
            return out
    return out


#: Every array slot of a CSRGraph that a bit-identity comparison covers.
_CSR_BUFFERS = ("edge_src", "edge_dst", "indptr", "indices", "arc_edge_ids")


def _compare_buffers(a: CSRGraph, b: CSRGraph, context: str) -> list[str]:
    """Bit-identity of two graphs' buffers (shared by the fast-path and
    snapshot checks, so a new CSR buffer only needs adding once)."""
    out: list[str] = []
    for attr in _CSR_BUFFERS:
        if not np.array_equal(getattr(a, attr), getattr(b, attr)):
            out.append(f"buffer {attr} differs {context}")
    if (a.edge_weights is None) != (b.edge_weights is None):
        out.append(f"weight presence differs {context}")
    elif a.edge_weights is not None and not np.array_equal(
        a.edge_weights, b.edge_weights
    ):
        out.append(f"edge_weights differ {context}")
    return out


def fastpath_identity(g: CSRGraph, keep_mask: np.ndarray) -> list[str]:
    """The sort-free ``keep_edges`` fast path must be bit-identical to the
    legacy lexsort rebuild — every buffer, not just the edge lists."""
    fast = g.keep_edges(keep_mask)
    slow = g._keep_edges_rebuild(keep_mask)
    out = _compare_buffers(fast, slow, "between fast path and rebuild")
    try:
        fast.validate()
    except AssertionError as err:
        out.append(f"fast-path graph fails validate(): {err}")
    return out


def snapshot_roundtrip(g: CSRGraph, directory) -> list[str]:
    """Binary snapshot save/load must reproduce every buffer and keep the
    content fingerprint stable (the artifact store's keying contract)."""
    from pathlib import Path

    from repro.graphs.snapshot import load_snapshot, save_snapshot
    from repro.runner.fingerprint import graph_fingerprint

    path = Path(directory) / "roundtrip.npz"
    fp0 = graph_fingerprint(g)
    loaded = load_snapshot(save_snapshot(g, path))
    out: list[str] = []
    if loaded.n != g.n or loaded.directed != g.directed:
        out.append("snapshot changed n or directedness")
    out += _compare_buffers(loaded, g, "after snapshot round trip")
    fp1 = graph_fingerprint(loaded)
    if fp1 != fp0:
        out.append(f"fingerprint changed across snapshot: {fp0} -> {fp1}")
    return out


_GRID_SCHEMES = ("uniform(p=0.5)", "spanner(k=4)")
_GRID_ALGORITHMS = ("pr", "cc")


def _comparable(table):
    """A grid table's deterministic face (drop wall-clock noise)."""
    return [
        (c.scheme, c.algorithm, c.metric, c.value, c.compression_ratio, c.seed)
        for c in table
    ]


def store_roundtrip(
    g: CSRGraph,
    directory,
    *,
    schemes=_GRID_SCHEMES,
    algorithms=_GRID_ALGORITHMS,
    seed=0,
) -> list[str]:
    """A warm artifact store must replay a grid value-identically with
    zero recomputation (cells key on the graph's content fingerprint)."""
    from pathlib import Path

    from repro.analytics.session import Session
    from repro.runner.store import ArtifactStore

    root = Path(directory) / "store"
    cold = Session(g, seed=seed, store=ArtifactStore(root))
    expected = cold.grid(schemes, algorithms)
    warm = Session(g, seed=seed, store=ArtifactStore(root))
    got = warm.grid(schemes, algorithms)
    out: list[str] = []
    if _comparable(got) != _comparable(expected):
        out.append("warm store replay differs from the cold run")
    if warm.last_grid_perf.get("cache_misses"):
        out.append(
            f"warm store recomputed "
            f"{warm.last_grid_perf['cache_misses']} cells (expected 0)"
        )
    if warm.baseline_computations:
        out.append(
            f"warm store ran {warm.baseline_computations} baselines (expected 0)"
        )
    return out


def parallel_grid_equivalence(
    g: CSRGraph,
    *,
    schemes=_GRID_SCHEMES,
    algorithms=_GRID_ALGORITHMS,
    seed=0,
    jobs: int = 2,
) -> list[str]:
    """A process-pool grid must be value-identical to the in-memory grid."""
    from repro.analytics.session import Session

    expected = Session(g, seed=seed).grid(schemes, algorithms)
    got = Session(g, seed=seed, jobs=jobs).grid(schemes, algorithms)
    if _comparable(got) != _comparable(expected):
        return [f"parallel grid (jobs={jobs}) differs from in-memory grid"]
    return []
