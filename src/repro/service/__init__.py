"""Compression-as-a-service: the long-running front tier.

The batch substrate (sessions, the artifact store, the process pool) made
identical work free to repeat; this subsystem makes it *servable*:

- :mod:`repro.service.jobs` — the transport-neutral job model
  (:class:`~repro.service.jobs.JobSpec` with canonical JSON identity) and
  :func:`~repro.service.jobs.execute_job`, the one scheduler the CLI
  harness, the process pool, and the HTTP front-end all run through;
- :mod:`repro.service.queue` — a threaded job queue
  (``queued → running → done/failed``) with bounded worker concurrency
  and **in-flight dedupe** by job key: concurrent identical submissions
  coalesce onto one computation, warm-store work replays instantly;
- :mod:`repro.service.http` — a stdlib-only JSON API
  (``POST /jobs``, ``GET /jobs/<id>[/result]``, ``GET /metrics``,
  ``GET /healthz``) over :class:`http.server.ThreadingHTTPServer`;
- :mod:`repro.service.dashboard` — the server-rendered admin page
  (queue depth, per-state counts, store hit/miss, recent-job latency).

Boot it with ``python -m repro.service --store PATH --jobs N --port P``;
see ``examples/service_demo.py`` for the client side.
"""

from repro.service.jobs import JobResult, JobSpec, execute_job, load_job_graph
from repro.service.queue import JobQueue, JobRecord

__all__ = [
    "JobQueue",
    "JobRecord",
    "JobResult",
    "JobSpec",
    "execute_job",
    "load_job_graph",
]
