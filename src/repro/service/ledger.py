"""Crash-safe job ledger: an append-only WAL of queue transitions.

``python -m repro.service --ledger ledger.jsonl`` must survive
``kill -9``: on restart, every job the dead process had accepted is
restored — finished jobs reappear with their final state, interrupted
ones (queued or running at the time of death) are resubmitted, and
because resubmission runs against the same warm artifact store, a job
that had already completed its cells replays in milliseconds.

The format is deliberately boring: one JSON object per line, appended
and fsynced per event (``durable=False`` drops the fsync for tests).
Appending is the only mutation the hot path performs, so a crash can
lose at most the *last* line, and only by tearing it — replay therefore
skips undecodable lines instead of failing.  Event schema:

``submitted``    id, key, spec (full transport dict), ts
``running``      id, attempts, ts
``requeued``     id, attempts, error, ts   (a retry is scheduled)
``done``         id, seconds, warm, ts
``failed``       id, error, attempts, ts
``snapshot``     one job's entire replayed state (written by compaction)

:meth:`JobLedger.compact` folds the log into one ``snapshot`` line per
job via :func:`repro.utils.fileio.atomic_write` (same torn-write-proof
rename discipline as the store), so a long-lived service's ledger grows
with its *jobs*, not its *events*.  The queue compacts on startup, right
after replay.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.utils.fileio import atomic_write

__all__ = ["JobLedger"]

#: Events that (re)introduce a job during replay.
_CREATING = ("submitted", "snapshot")


class JobLedger:
    """Append-only JSONL write-ahead log of job state transitions."""

    def __init__(self, path, *, durable: bool = True):
        self.path = Path(path)
        self.durable = durable
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- writing ------------------------------------------------------------ #

    def record(self, event: str, job_id: str, **fields) -> None:
        """Append one transition; durable before the caller proceeds."""
        entry = {"event": event, "id": job_id, "ts": time.time(), **fields}
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.durable:
                os.fsync(self._fh.fileno())

    # -- reading ------------------------------------------------------------ #

    def replay(self) -> dict[str, dict]:
        """Fold the log into per-job latest state, in submission order.

        Returns ``{job_id: state}`` where state carries ``id``, ``key``,
        ``spec`` (transport dict), ``state`` (queue state name),
        ``attempts``, ``submitted_at``, and — when present — ``error``,
        ``seconds``, ``warm``.  Undecodable lines (a torn final append)
        and transitions for unknown ids (events outliving a compaction
        race) are skipped: replay never raises on a damaged ledger.
        """
        jobs: dict[str, dict] = {}
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return jobs
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn append; the WAL contract allows only this
            if not isinstance(entry, dict) or "id" not in entry:
                continue
            event = entry.get("event")
            job_id = entry["id"]
            if event in _CREATING:
                job = {
                    "id": job_id,
                    "key": entry.get("key"),
                    "spec": entry.get("spec"),
                    "state": entry.get("state", "queued"),
                    "attempts": entry.get("attempts", 0),
                    "submitted_at": entry.get("submitted_at", entry.get("ts")),
                }
                for field in ("error", "seconds", "warm"):
                    if field in entry:
                        job[field] = entry[field]
                jobs[job_id] = job
                continue
            job = jobs.get(job_id)
            if job is None:
                continue
            if event == "running":
                job["state"] = "running"
                job["attempts"] = entry.get("attempts", job["attempts"])
            elif event == "requeued":
                job["state"] = "queued"
                job["attempts"] = entry.get("attempts", job["attempts"])
            elif event == "done":
                job["state"] = "done"
                job["seconds"] = entry.get("seconds", 0.0)
                job["warm"] = entry.get("warm", False)
            elif event == "failed":
                job["state"] = "failed"
                job["error"] = entry.get("error", "unknown failure")
                job["attempts"] = entry.get("attempts", job["attempts"])
        return jobs

    # -- maintenance -------------------------------------------------------- #

    def compact(self, jobs: dict[str, dict] | None = None) -> int:
        """Rewrite the log as one ``snapshot`` line per job; line count.

        Atomic (write-temp + fsync + rename): a crash mid-compaction
        leaves the old log intact.  ``jobs`` defaults to :meth:`replay`.
        """
        if jobs is None:
            jobs = self.replay()
        lines = []
        for job_id in sorted(jobs, key=_submission_order):
            entry = {"event": "snapshot", **jobs[job_id]}
            lines.append(
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
            )
        payload = ("\n".join(lines) + "\n") if lines else ""
        with self._lock:
            self._fh.close()
            atomic_write(
                self.path,
                lambda fh: fh.write(payload.encode("utf-8")),
                durable=self.durable,
            )
            self._fh = open(self.path, "a", encoding="utf-8")
        return len(lines)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JobLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _submission_order(job_id: str) -> tuple:
    """Sort key preserving ``j<n>-<key>`` numeric submission order."""
    try:
        return (0, int(job_id.split("-", 1)[0].lstrip("j")))
    except ValueError:
        return (1, job_id)
