"""``python -m repro.service`` — boot the compression service.

Examples::

    python -m repro.service --store .service-store --jobs 2 --port 8765
    python -m repro.service --store .service-store --pool-jobs 4
    curl -s localhost:8765/healthz
    curl -s localhost:8765/jobs -d '{"graph": "s-flx", "schemes": ["spanner(k=4)"]}'
    curl -s localhost:8765/jobs/<id>/result?format=csv
    open http://localhost:8765/        # the admin dashboard

SIGINT (Ctrl-C) shuts down gracefully: the HTTP listener stops, running
jobs drain, and queued jobs either run to completion (default) or are
marked failed (``--no-drain``).
"""

from __future__ import annotations

import argparse
import sys

from repro.service.http import serve
from repro.service.queue import JobQueue


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve compression sweeps over HTTP with a deduplicating "
        "job queue and a content-addressed artifact store.",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        help="artifact store directory (created on first write); identical "
        "re-submissions replay from it with zero recomputation",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker threads — jobs in flight at once (default 2)",
    )
    parser.add_argument(
        "--pool-jobs", type=int, default=None, metavar="N",
        help="worker processes per job's grid (default: in-thread)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8765, help="bind port (0 picks a free one)"
    )
    parser.add_argument(
        "--no-drain", action="store_true",
        help="on shutdown, fail queued jobs instead of running them",
    )
    parser.add_argument(
        "--ledger", metavar="PATH",
        help="crash-safe job ledger (JSONL WAL); on restart, finished "
        "jobs are restored and interrupted ones resubmitted — survives "
        "kill -9",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=1, metavar="N",
        help="executions per job before it fails (default 1 = no retry)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per job from submission (default: none)",
    )
    parser.add_argument(
        "--max-queued", type=int, default=None, metavar="N",
        help="waiting-job cap; beyond it POST /jobs answers 503 with "
        "Retry-After (default: unbounded)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    queue = JobQueue(
        args.store,
        workers=args.jobs,
        pool_jobs=args.pool_jobs,
        max_attempts=args.max_attempts,
        job_timeout=args.job_timeout,
        max_queued=args.max_queued,
        ledger=args.ledger,
    )
    server = serve(queue, host=args.host, port=args.port)
    server.verbose = args.verbose
    host, port = server.server_address[:2]
    print(f"repro service: http://{host}:{port}/ "
          f"(store={args.store or 'none'}, workers={args.jobs})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down: draining jobs...", flush=True)
    finally:
        server.server_close()
        clean = queue.close(drain=not args.no_drain)
    print(
        "repro service: stopped" + ("" if clean else " (workers still busy)"),
        flush=True,
    )
    return 0 if clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
