"""Server-rendered admin page: queue, store, and latency at a glance.

One self-contained HTML document per request — no JavaScript, no assets,
no dependencies — because the numbers an operator needs (queue depth,
per-state job counts, store hit/miss, recent-job latency) are stat tiles
and a table, not charts.  The page auto-refreshes every few seconds via
``<meta http-equiv="refresh">``; states are labeled with words, with
color only as a secondary cue.
"""

from __future__ import annotations

import html
import time

from repro.obs.metrics import get_metric
from repro.service.queue import DONE, FAILED, JobQueue, QUEUED, RUNNING

__all__ = ["render_dashboard"]

#: Eight block-element levels for the inline latency sparklines.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(counts: list[int]) -> str:
    """Bucket counts as a compact block-character strip.

    Trimmed to the occupied bucket range (log-scale histograms span ten
    decades; most are empty) with one empty bucket of margin each side.
    """
    occupied = [i for i, c in enumerate(counts) if c]
    if not occupied:
        return ""
    lo = max(0, occupied[0] - 1)
    hi = min(len(counts), occupied[-1] + 2)
    window = counts[lo:hi]
    peak = max(window)
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[0 if not c else max(1, round(c / peak * top))] for c in window
    )


def _latency_sparkline(label: str) -> str:
    """The registry histogram of one latency label as HTML, or a dash.

    Reads the process-global ``repro.service.latency_seconds.<label>``
    histogram (:mod:`repro.obs.metrics`) — the rollup the Prometheus
    exposition also serves.
    """
    try:
        metric = get_metric(f"repro.service.latency_seconds.{label}")
    except KeyError:
        return "&mdash;"
    strip = _sparkline(metric.bucket_counts())
    return html.escape(strip) if strip else "&mdash;"

_REFRESH_SECONDS = 5

#: Neutral ink/surface tokens plus reserved status colors (used only next
#: to the state word, never as the sole carrier of meaning).
_CSS = """
:root {
  --ink: #1f1f1f; --ink-2: #5f5f5c; --surface: #ffffff;
  --tile: #f6f6f3; --line: #e3e3de;
  --good: #1a7f37; --serious: #b3261e; --busy: #8a6d00;
}
@media (prefers-color-scheme: dark) {
  :root {
    --ink: #ededea; --ink-2: #a3a39e; --surface: #1b1b19;
    --tile: #262623; --line: #3a3a36;
    --good: #57c478; --serious: #ef8a80; --busy: #d4b44a;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 960px;
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, sans-serif;
}
h1 { font-size: 18px; font-weight: 600; margin: 0 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
h2 { font-size: 13px; font-weight: 600; text-transform: uppercase;
     letter-spacing: 0.06em; color: var(--ink-2); margin: 28px 0 10px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile { background: var(--tile); border: 1px solid var(--line);
        border-radius: 8px; padding: 10px 14px; min-width: 108px; }
.tile .v { font-size: 24px; font-weight: 600; font-variant-numeric: tabular-nums; }
.tile .k { font-size: 12px; color: var(--ink-2); }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 6px 10px; border-bottom: 1px solid var(--line);
         font-variant-numeric: tabular-nums; }
th { font-size: 12px; color: var(--ink-2); font-weight: 600; }
td.num, th.num { text-align: right; }
.state { font-weight: 600; }
.state.done { color: var(--good); }
.state.failed { color: var(--serious); }
.state.running { color: var(--busy); }
.err { color: var(--ink-2); font-size: 12px; }
td.spark { font-family: ui-monospace, monospace; letter-spacing: 1px;
           color: var(--busy); }
"""


def _tile(value, label: str) -> str:
    return (
        f'<div class="tile"><div class="v">{html.escape(str(value))}</div>'
        f'<div class="k">{html.escape(label)}</div></div>'
    )


def _age(stamp: float | None, now: float) -> str:
    if stamp is None:
        return "&mdash;"
    seconds = max(0.0, now - stamp)
    if seconds < 90:
        return f"{seconds:.0f}s ago"
    if seconds < 5400:
        return f"{seconds / 60:.0f}m ago"
    return f"{seconds / 3600:.1f}h ago"


def _job_rows(queue: JobQueue, now: float, limit: int) -> str:
    rows = []
    for record in queue.records()[:limit]:
        summary = record.summary()
        detail = ""
        if record.error:
            detail = f'<div class="err">{html.escape(record.error)}</div>'
        run = "&mdash;"
        if record.finished:
            run = f"{record.seconds:.3f}s" + (" (warm)" if record.warm else "")
        rows.append(
            "<tr>"
            f"<td>{html.escape(record.id)}</td>"
            f"<td>{html.escape(record.spec.graph)}</td>"
            f'<td><span class="state {record.state}">{record.state}</span>{detail}</td>'
            f'<td class="num">{summary["cell_groups"]}</td>'
            f'<td class="num">{record.attempts}</td>'
            f'<td class="num">{record.coalesced}</td>'
            f'<td class="num">{run}</td>'
            f'<td class="num">{_age(record.submitted_at, now)}</td>'
            "</tr>"
        )
    if not rows:
        rows.append('<tr><td colspan="7" class="err">no jobs submitted yet</td></tr>')
    return "".join(rows)


def render_dashboard(queue: JobQueue, *, recent: int = 20) -> str:
    """The full admin page for ``queue`` as one HTML string."""
    stats = queue.stats()
    states = stats["states"]
    store = stats.get("store")
    now = time.time()

    tiles = [
        _tile(stats["queue_depth"], "queue depth"),
        _tile(states[RUNNING], "running"),
        _tile(states[DONE], "done"),
        _tile(states[FAILED], "failed"),
        _tile(stats["jobs_total"], "jobs total"),
        _tile(stats["coalesced"], "coalesced"),
        _tile(stats["workers"], "workers"),
    ]
    store_tiles = (
        [
            _tile(store["hits"], "store hits"),
            _tile(store["misses"], "store misses"),
            _tile(store["writes"], "store writes"),
            _tile(store["corrupt"], "corrupt reads"),
        ]
        if store is not None
        else ['<p class="err">no artifact store configured</p>']
    )

    latency_rows = []
    for label, entry in sorted(stats["latency"].items()):
        latency_rows.append(
            "<tr>"
            f"<td>{html.escape(label)}</td>"
            f'<td class="num">{entry["count"]}</td>'
            f'<td class="num">{entry["mean"]:.3f}s</td>'
            f'<td class="num">{entry["min"]:.3f}s</td>'
            f'<td class="num">{entry["max"]:.3f}s</td>'
            f'<td class="spark">{_latency_sparkline(label)}</td>'
            "</tr>"
        )
    if not latency_rows:
        latency_rows.append(
            '<tr><td colspan="6" class="err">no jobs finished yet</td></tr>'
        )

    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{_REFRESH_SECONDS}">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro compression service</title>
<style>{_CSS}</style>
</head>
<body>
<h1>repro compression service</h1>
<p class="sub">queued {states[QUEUED]} &middot; running {states[RUNNING]} &middot;
done {states[DONE]} &middot; failed {states[FAILED]} &middot;
auto-refreshes every {_REFRESH_SECONDS}s</p>

<h2>Queue</h2>
<div class="tiles">{''.join(tiles)}</div>

<h2>Artifact store</h2>
<div class="tiles">{''.join(store_tiles)}</div>

<h2>Latency</h2>
<table>
<thead><tr><th>kind</th><th class="num">jobs</th><th class="num">mean</th>
<th class="num">min</th><th class="num">max</th><th>distribution</th></tr></thead>
<tbody>{''.join(latency_rows)}</tbody>
</table>

<h2>Recent jobs</h2>
<table>
<thead><tr><th>id</th><th>graph</th><th>state</th><th class="num">cell groups</th>
<th class="num">attempts</th><th class="num">coalesced</th><th class="num">run time</th>
<th class="num">submitted</th></tr></thead>
<tbody>{_job_rows(queue, now, recent)}</tbody>
</table>
</body>
</html>
"""
