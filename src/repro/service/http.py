"""Stdlib-only JSON HTTP front-end over the job queue.

Endpoints (all JSON unless noted):

========================  ====================================================
``POST /jobs``            submit a :class:`~repro.service.jobs.JobSpec` body;
                          202 with the job summary (an identical in-flight
                          job coalesces — same id, no second computation)
``GET /jobs``             summaries of every job, newest first
``GET /jobs/<id>``        one job's summary (state, timings, errors)
``GET /jobs/<id>/result`` the finished SweepTable — JSON rows + perf, or
                          CSV with ``?format=csv``; 409 while unfinished
``GET /metrics``          queue depth, per-state counts, coalesce count,
                          store hit/miss stats, cold/warm latency histograms,
                          plus the canonical ``repro.*`` registry block;
                          ``?format=prometheus`` (or ``Accept: text/plain``)
                          serves Prometheus text exposition instead
``GET /healthz``          liveness probe
``GET /``                 the server-rendered admin dashboard (HTML)
========================  ====================================================

Transport is :class:`http.server.ThreadingHTTPServer` — one thread per
connection, no third-party dependency — which is exactly enough because
the heavy lifting happens in the queue's bounded worker pool, not in
request handlers.  Use :func:`serve` to build a server bound to a
:class:`~repro.service.queue.JobQueue` (port 0 picks a free port) and
:func:`start_in_thread` to run it without blocking (tests, demos).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.queue import DONE, FAILED, JobQueue, QueueClosed, QueueSaturated

__all__ = ["ServiceHandler", "ServiceServer", "serve", "start_in_thread"]

#: Submission bodies above this size are rejected (a job spec is tiny).
MAX_BODY_BYTES = 1 << 20

#: ``Retry-After`` seconds sent with 503s.  A saturated queue usually
#: drains within a job's runtime; a closing queue never reopens, but the
#: supervisor restarting the process typically has it back by then too.
RETRY_AFTER_SECONDS = 5


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`JobQueue`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def queue(self) -> JobQueue:
        return self.server.queue

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- responses ---------------------------------------------------------- #

    def _send(
        self, status: int, body: bytes, content_type: str, headers: dict | None = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload, status: int = 200, headers: dict | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send(status, body, "application/json", headers)

    def _error(self, status: int, message: str, headers: dict | None = None, **extra) -> None:
        self._json({"error": message, **extra}, status=status, headers=headers)

    def _unavailable(self, message: str) -> None:
        """503 with ``Retry-After`` — the back-pressure/shutdown answer."""
        self._error(
            503, message,
            headers={"Retry-After": RETRY_AFTER_SECONDS},
            retry_after=RETRY_AFTER_SECONDS,
        )

    # -- routing ------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            self._json({"status": "ok"})
        elif url.path == "/metrics":
            self._metrics(parse_qs(url.query))
        elif url.path in ("/", "/dashboard"):
            from repro.service.dashboard import render_dashboard

            self._send(200, render_dashboard(self.queue).encode(), "text/html; charset=utf-8")
        elif parts == ["jobs"]:
            self._json([r.summary() for r in self.queue.records()])
        elif len(parts) == 2 and parts[0] == "jobs":
            record = self.queue.get(parts[1])
            if record is None:
                self._error(404, f"unknown job {parts[1]!r}")
            else:
                self._json(record.summary())
        elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "result":
            self._result(parts[1], parse_qs(url.query))
        else:
            self._error(404, f"no route for {url.path!r}")

    def _metrics(self, query: dict) -> None:
        """``GET /metrics`` — JSON stats by default, Prometheus text with
        ``?format=prometheus`` or an ``Accept: text/plain`` header."""
        fmt = (query.get("format") or [None])[0]
        accept = self.headers.get("Accept", "")
        if fmt is None and "text/plain" in accept and "json" not in accept:
            fmt = "prometheus"
        if fmt in (None, "json"):
            self._json(self.queue.stats())
        elif fmt == "prometheus":
            from repro.obs.metrics import prometheus_text

            self._send(
                200,
                prometheus_text().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._error(400, f"unknown format {fmt!r}; use json or prometheus")

    def _result(self, job_id: str, query: dict) -> None:
        record = self.queue.get(job_id)
        if record is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if record.state == FAILED:
            self._error(500, record.error or "job failed", job=record.summary())
            return
        if record.state != DONE or record.result is None:
            self._error(409, f"job {job_id!r} is {record.state}", job=record.summary())
            return
        fmt = (query.get("format") or ["json"])[0]
        if fmt == "csv":
            self._send(200, record.result.table.to_csv().encode(), "text/csv")
        elif fmt == "json":
            self._json(
                {
                    "job": record.summary(),
                    "perf": record.result.perf,
                    "cells": record.result.table.to_dict(),
                }
            )
        else:
            self._error(400, f"unknown format {fmt!r}; use json or csv")

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if urlparse(self.path).path != "/jobs":
            self._error(404, f"no POST route for {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if not 0 < length <= MAX_BODY_BYTES:
            self._error(400, "request needs a JSON body (Content-Length)")
            return
        try:
            spec = json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError) as err:
            self._error(400, f"invalid JSON body: {err}")
            return
        try:
            record = self.queue.submit(spec)
        except (TypeError, ValueError) as err:
            self._error(400, str(err))
            return
        except (QueueClosed, QueueSaturated) as err:
            self._unavailable(str(err))
            return
        except RuntimeError as err:  # foreign queue stand-ins
            self._unavailable(str(err))
            return
        self._json(record.summary(), status=202)


class ServiceServer(ThreadingHTTPServer):
    """One thread per connection; job execution stays in the queue pool."""

    daemon_threads = True
    #: When True, request lines are logged to stderr (CLI --verbose).
    verbose = False

    def __init__(self, address, queue: JobQueue, *, verbose: bool = False):
        super().__init__(address, ServiceHandler)
        self.queue = queue
        self.verbose = verbose


def serve(queue: JobQueue, *, host: str = "127.0.0.1", port: int = 8765) -> ServiceServer:
    """A bound (not yet running) server; ``port=0`` picks a free port."""
    return ServiceServer((host, port), queue)


def start_in_thread(
    queue: JobQueue, *, host: str = "127.0.0.1", port: int = 0
) -> tuple[ServiceServer, threading.Thread]:
    """Boot ``serve_forever`` on a daemon thread; (server, thread).

    The embedded form used by tests and ``examples/service_demo.py`` —
    call ``server.shutdown()`` then ``queue.close()`` to stop.
    """
    server = serve(queue, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread
