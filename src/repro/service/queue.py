"""The deduplicating async job queue behind the service front-ends.

Jobs move ``queued → running → done/failed`` across a bounded pool of
worker *threads* (each job may still fan its grid cells over worker
*processes* via ``pool_jobs``).  The queue's defining behavior is
**in-flight dedupe by job key**: :attr:`~repro.service.jobs.JobSpec.
job_key` is derived from the same canonical spec JSON the artifact
store's cell keys use, so two clients submitting the same graph + grid —
in any spelling — coalesce onto one :class:`JobRecord` and one
computation.  Completed keys leave the dedupe map: a later identical
submission becomes a fresh job whose cells replay from the warm store
with zero recomputation (instant hits, visible in the store stats), and
a *failed* job's key is evicted too, so a retry actually retries instead
of being poisoned by the dead record.

Failure handling is explicit.  A job that raises is retried up to
``max_attempts`` times with capped exponential backoff (attempt counts
surface in ``/jobs``, ``/metrics`` — ``repro.queue.retries`` — and the
dashboard); a job whose wall-clock age exceeds ``job_timeout`` fails
instead of retrying.  A full queue (``max_queued``) rejects with
:class:`QueueSaturated` and a closed queue with :class:`QueueClosed` —
both ``RuntimeError`` subclasses the HTTP front-end maps to 503 +
``Retry-After``.  With a :class:`~repro.service.ledger.JobLedger`
attached, every transition is appended to a crash-safe WAL *before* the
queue proceeds, and a restarted queue replays it: finished jobs
reappear, interrupted ones resubmit (completing instantly against a
warm store) — ``kill -9`` loses nothing but in-flight wall time.

Latency is sampled per job through :func:`repro.utils.timer.stopwatch`
into a shared :class:`~repro.utils.timer.Timer` under ``cold`` (computed
something) / ``warm`` (pure store replay) / ``failed`` labels;
:meth:`JobQueue.stats` exposes those histograms plus queue depth,
per-state counts, and the store's thread-safe hit/miss counters — the
payload of ``GET /metrics`` and the admin dashboard.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from typing import Mapping

from repro.faults.plan import fault_point
from repro.obs.metrics import counter, gauge, histogram, snapshot as metrics_snapshot
from repro.obs.spans import span
from repro.service.jobs import JobResult, JobSpec, execute_job
from repro.utils.timer import Timer, stopwatch

__all__ = [
    "JobQueue",
    "JobRecord",
    "QueueClosed",
    "QueueSaturated",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "STATES",
]

# Process-wide rollups of queue activity; the per-instance Timer stays
# the queue-local view the legacy JSON keys report.
_jobs_submitted = counter("repro.service.jobs_submitted")
_jobs_coalesced = counter("repro.service.jobs_coalesced")
_queue_depth = gauge("repro.service.queue_depth")
_queue_retries = counter("repro.queue.retries")
_queue_timeouts = counter("repro.queue.timeouts")
_latency = {
    label: histogram(f"repro.service.latency_seconds.{label}")
    for label in ("cold", "warm", "failed")
}

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATES = (QUEUED, RUNNING, DONE, FAILED)


class QueueClosed(RuntimeError):
    """Submission rejected: the queue is shutting down (HTTP 503)."""


class QueueSaturated(RuntimeError):
    """Submission rejected: ``max_queued`` jobs already waiting (503)."""


class JobRecord:
    """One submitted job's lifecycle, shared by every coalesced client."""

    __slots__ = (
        "id", "spec", "key", "state", "error", "result", "coalesced",
        "warm", "seconds", "attempts", "submitted_at", "started_at",
        "finished_at", "_event",
    )

    def __init__(self, id: str, spec: JobSpec):
        self.id = id
        self.spec = spec
        self.key = spec.job_key
        self.state = QUEUED
        self.error: str | None = None
        self.result: JobResult | None = None
        #: Submissions served by this record beyond the first.
        self.coalesced = 0
        #: True when the job completed as a pure store replay.
        self.warm = False
        #: Execution wall time (queue wait excluded); 0.0 until finished.
        self.seconds = 0.0
        #: Execution attempts started (1 on a first-try success).
        self.attempts = 0
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._event = threading.Event()

    def __repr__(self) -> str:
        return f"JobRecord({self.id!r}, {self.state}, graph={self.spec.graph!r})"

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; False on timeout."""
        return self._event.wait(timeout)

    def summary(self) -> dict:
        """JSON-safe status view (the ``GET /jobs/<id>`` payload)."""
        out = {
            "id": self.id,
            "state": self.state,
            "job_key": self.key,
            "graph": self.spec.graph,
            "cell_groups": self.spec.cell_groups(),
            "coalesced": self.coalesced,
            "warm": self.warm,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["cells"] = len(self.result.table)
        return out


class JobQueue:
    """Bounded-concurrency job execution with in-flight dedupe.

    Parameters
    ----------
    store:
        Shared :class:`~repro.runner.store.ArtifactStore` (or a path to
        one); every worker replays/writes through it, which is what makes
        identical re-submissions free.  ``None`` runs storeless (no
        replay, dedupe still coalesces concurrent identical work).
    workers:
        Worker-thread count — the number of jobs in flight at once.
    pool_jobs:
        Per-job process fan-out handed to ``Session(jobs=...)``;
        ``None``/``1`` keeps each job in its worker thread.
    graph_loader:
        Optional ``ref -> CSRGraph`` override (tests and embedded demos
        pass fixtures; the default resolves dataset names and
        ``fingerprint:`` store references).
    executor:
        The job runner, :func:`~repro.service.jobs.execute_job` unless a
        test injects a stand-in.
    max_attempts, backoff_base, backoff_cap:
        Per-job retry policy: a failing job is requeued up to
        ``max_attempts`` total executions, waiting
        ``min(backoff_cap, backoff_base * 2**(n-1))`` seconds first.
        The default (1) keeps failures immediate — opt in to retries.
    job_timeout:
        Wall-clock budget per job measured from submission; exceeded
        jobs fail (a queued job past deadline never starts, a failing
        job past deadline stops retrying).  ``None`` disables.
    max_queued:
        Waiting-job cap; beyond it :meth:`submit` raises
        :class:`QueueSaturated`.  ``None`` (default) is unbounded.
    ledger:
        :class:`~repro.service.ledger.JobLedger` (or a path to one) —
        the crash-safe WAL.  On construction the queue replays it:
        failed jobs reappear as failed, everything else is resubmitted
        under its original id (instant against a warm store).
    """

    def __init__(
        self,
        store=None,
        *,
        workers: int = 2,
        pool_jobs: int | None = None,
        graph_loader=None,
        executor=execute_job,
        max_attempts: int = 1,
        backoff_base: float = 0.5,
        backoff_cap: float = 15.0,
        job_timeout: float | None = None,
        max_queued: int | None = None,
        ledger=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        if max_queued is not None and max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if store is not None and not hasattr(store, "get_cells"):
            from repro.runner.store import ArtifactStore

            store = ArtifactStore(store)
        self.store = store
        self.workers = workers
        self.pool_jobs = pool_jobs
        self.graph_loader = graph_loader
        self._execute = executor
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.job_timeout = job_timeout
        self.max_queued = max_queued
        if ledger is not None and not hasattr(ledger, "record"):
            from repro.service.ledger import JobLedger

            ledger = JobLedger(ledger)
        self.ledger = ledger
        self.timer = Timer()
        self._lock = threading.Lock()
        self._tasks: queue_module.Queue = queue_module.Queue()
        self._records: dict[str, JobRecord] = {}
        self._inflight: dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self._closed = False
        if self.ledger is not None:
            self._replay_ledger()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-service-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- recovery ----------------------------------------------------------- #

    def _replay_ledger(self) -> None:
        """Restore jobs from the WAL (before worker threads start).

        Failed jobs are restored as failed records — their error is
        history, not work.  Done, queued, and running jobs are
        resubmitted under their original ids: re-execution against the
        same store replays completed cells for free, which is exactly
        how "done jobs serve from the warm store" works after a crash.
        """
        jobs = self.ledger.replay()
        self.ledger.compact(jobs)
        highest = 0
        for job_id in sorted(jobs, key=_numeric_id):
            state = jobs[job_id]
            highest = max(highest, _numeric_id(state["id"]))
            try:
                spec = JobSpec.from_dict(state["spec"] or {})
            except (ValueError, TypeError):
                continue  # a spec this build no longer accepts
            record = JobRecord(state["id"], spec)
            record.submitted_at = state.get("submitted_at", record.submitted_at)
            record.attempts = state.get("attempts", 0)
            if state["state"] == FAILED:
                record.state = FAILED
                record.error = state.get("error", "unknown failure")
                record.finished_at = state.get("submitted_at")
                record._event.set()
                self._records[record.id] = record
                continue
            record.state = QUEUED
            self._records[record.id] = record
            self._inflight.setdefault(record.key, record)
            self.ledger.record(
                "submitted", record.id, key=record.key, spec=spec.to_dict(),
                submitted_at=record.submitted_at, recovered=True,
            )
            _queue_depth.inc()
            self._tasks.put(record)
        self._ids = itertools.count(highest + 1)

    # -- submission --------------------------------------------------------- #

    def submit(self, spec) -> JobRecord:
        """Enqueue ``spec`` (a :class:`JobSpec` or transport dict).

        An identical job already queued or running is **coalesced**: the
        existing record is returned (its ``coalesced`` counter bumped)
        and no second computation is scheduled.  Jobs that already
        finished do not coalesce — resubmission schedules a fresh job,
        which against a warm store completes as a pure replay.  Raises
        :class:`QueueClosed` after :meth:`close` and
        :class:`QueueSaturated` when ``max_queued`` jobs are waiting.
        """
        if isinstance(spec, Mapping):
            spec = JobSpec.from_dict(spec)
        elif not isinstance(spec, JobSpec):
            raise TypeError(f"cannot submit {type(spec).__name__}; need JobSpec or dict")
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed")
            record = self._inflight.get(spec.job_key)
            if record is not None:
                record.coalesced += 1
                _jobs_coalesced.inc()
                return record
            if self.max_queued is not None:
                waiting = sum(
                    1 for r in self._records.values() if r.state == QUEUED
                )
                if waiting >= self.max_queued:
                    raise QueueSaturated(
                        f"queue is saturated ({waiting} jobs waiting, "
                        f"max_queued={self.max_queued})"
                    )
            record = JobRecord(f"j{next(self._ids)}-{spec.job_key[:10]}", spec)
            self._inflight[record.key] = record
            self._records[record.id] = record
        if self.ledger is not None:
            self.ledger.record(
                "submitted", record.id, key=record.key,
                spec=record.spec.to_dict(), submitted_at=record.submitted_at,
            )
        _jobs_submitted.inc()
        _queue_depth.inc()
        self._tasks.put(record)
        return record

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def records(self, *, newest_first: bool = True) -> list[JobRecord]:
        with self._lock:
            out = list(self._records.values())
        return sorted(out, key=lambda r: r.submitted_at, reverse=newest_first)

    # -- execution ---------------------------------------------------------- #

    def _worker(self) -> None:
        while True:
            record = self._tasks.get()
            if record is None:
                self._tasks.task_done()
                return
            try:
                self._run_one(record)
            finally:
                self._tasks.task_done()

    def _deadline_exceeded(self, record: JobRecord) -> bool:
        return (
            self.job_timeout is not None
            and time.time() - record.submitted_at >= self.job_timeout
        )

    def _fail(self, record: JobRecord, error: str, seconds: float = 0.0) -> None:
        with self._lock:
            record.seconds = seconds
            record.error = error
            record.state = FAILED
            record.finished_at = time.time()
            # Evict so an identical resubmission retries instead of
            # coalescing onto the corpse.
            self._inflight.pop(record.key, None)
        if self.ledger is not None:
            self.ledger.record(
                "failed", record.id, error=error, attempts=record.attempts
            )
        self.timer.add_sample("failed", seconds)
        _latency["failed"].observe(seconds)
        record._event.set()

    def _run_one(self, record: JobRecord) -> None:
        with self._lock:
            if record.state != QUEUED:  # failed by a non-draining shutdown
                return
            if self._deadline_exceeded(record):
                expired = True
            else:
                expired = False
                record.state = RUNNING
                record.started_at = time.time()
                record.attempts += 1
        _queue_depth.inc(-1)
        if expired:
            _queue_timeouts.inc()
            self._fail(
                record,
                f"job timed out after {self.job_timeout}s (never started)",
            )
            return
        if self.ledger is not None:
            self.ledger.record("running", record.id, attempts=record.attempts)
        try:
            with stopwatch() as sw, span(
                "service.job", job_id=record.id, graph=record.spec.graph
            ):
                # Chaos hook: a worker thread beginning a job — the queue
                # retry/backoff path in one injectable site.
                fault_point("service.run_job", job=record.id)
                result = self._execute(
                    record.spec,
                    store=self.store,
                    jobs=self.pool_jobs,
                    graph_loader=self.graph_loader,
                )
        except Exception as err:  # noqa: BLE001 — a job failure is data
            error = f"{type(err).__name__}: {err}"
            if self._deadline_exceeded(record):
                _queue_timeouts.inc()
                self._fail(
                    record,
                    f"job timed out after {self.job_timeout}s "
                    f"(attempt {record.attempts} failed: {error})",
                    sw.seconds,
                )
                return
            with self._lock:
                retryable = record.attempts < self.max_attempts and not self._closed
            if not retryable:
                self._fail(record, error, sw.seconds)
                return
            _queue_retries.inc()
            if self.ledger is not None:
                self.ledger.record(
                    "requeued", record.id, attempts=record.attempts, error=error
                )
            time.sleep(
                min(
                    self.backoff_cap,
                    self.backoff_base * (2 ** max(0, record.attempts - 1)),
                )
            )
            with self._lock:
                # close(drain=False) may have failed it during the sleep.
                if record.state != RUNNING:
                    return
                record.state = QUEUED
            _queue_depth.inc()
            self._tasks.put(record)
        else:
            warm = result.perf.get("cache_misses", 0) == 0
            with self._lock:
                record.result = result
                record.warm = warm
                record.seconds = sw.seconds
                record.state = DONE
                record.finished_at = time.time()
                # Done work is served by the store from here on; the
                # dedupe map only ever holds in-flight keys.
                self._inflight.pop(record.key, None)
            if self.ledger is not None:
                self.ledger.record(
                    "done", record.id, seconds=sw.seconds, warm=warm
                )
            label = "warm" if warm else "cold"
            self.timer.add_sample(label, sw.seconds)
            _latency[label].observe(sw.seconds)
            record._event.set()

    # -- observability ------------------------------------------------------ #

    def stats(self) -> dict:
        """Queue/store/latency counters (the ``GET /metrics`` payload).

        The flat legacy keys (``workers``, ``jobs_total``, ``store``,
        ``latency`` …) are kept as back-compat aliases; the ``metrics``
        block is the canonical ``repro.<subsystem>.<name>`` view straight
        from the process-global registry (:mod:`repro.obs.metrics`) — the
        same data ``?format=prometheus`` serializes.
        """
        with self._lock:
            states = dict.fromkeys(STATES, 0)
            coalesced = 0
            attempts = 0
            for record in self._records.values():
                states[record.state] += 1
                coalesced += record.coalesced
                attempts += record.attempts
            total = len(self._records)
        out = {
            "workers": self.workers,
            "queue_depth": states[QUEUED],
            "states": states,
            "jobs_total": total,
            "coalesced": coalesced,
            "attempts": attempts,
            "max_attempts": self.max_attempts,
            "job_timeout": self.job_timeout,
            "max_queued": self.max_queued,
            "ledger": None if self.ledger is None else str(self.ledger.path),
            "latency": {
                label: _latency_summary(self.timer.samples(label))
                for label in self.timer.labels()
            },
            "metrics": metrics_snapshot(),
        }
        if self.store is not None:
            out["store"] = self.store.stats.snapshot()
        return out

    # -- lifecycle ---------------------------------------------------------- #

    def close(self, *, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop accepting work and shut the workers down.

        ``drain=True`` (the default, and what SIGINT does) lets queued
        jobs run to completion first; ``drain=False`` fails them with a
        ``shutdown`` error immediately.  ``timeout`` bounds the *whole*
        shutdown: every worker join shares one deadline rather than each
        getting its own window, so ``close(timeout=5)`` returns within
        ~5s no matter how many workers exist.  Returns ``True`` when
        every worker exited in time (a clean shutdown), ``False``
        otherwise.  Idempotent — a second call just re-joins.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
        if first:
            if not drain:
                with self._lock:
                    for record in self._records.values():
                        if record.state == QUEUED:
                            record.state = FAILED
                            record.error = "shutdown before execution"
                            record.finished_at = time.time()
                            self._inflight.pop(record.key, None)
                            record._event.set()
                            _queue_depth.inc(-1)
                            if self.ledger is not None:
                                self.ledger.record(
                                    "failed", record.id,
                                    error="shutdown before execution",
                                    attempts=record.attempts,
                                )
            for _ in self._threads:
                self._tasks.put(None)
        deadline = None if timeout is None else time.monotonic() + timeout
        clean = True
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
            if thread.is_alive():
                clean = False
        if clean and self.ledger is not None:
            self.ledger.close()
        return clean

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _numeric_id(job_id: str) -> int:
    """The ``<n>`` in ``j<n>-<key>`` ids (0 for foreign formats)."""
    try:
        return int(job_id.split("-", 1)[0].lstrip("j"))
    except ValueError:
        return 0


def _latency_summary(samples: list[float]) -> dict:
    """Count/total/mean/min/max of one latency label's samples."""
    if not samples:
        return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "total": sum(samples),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "max": max(samples),
    }
