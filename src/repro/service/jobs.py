"""The transport-neutral job model every front-end schedules through.

A :class:`JobSpec` describes one unit of service work — *one* graph, a
scheme × algorithm × metric grid, a seed list — in a form that survives
any transport: the in-process CLI harness (:func:`repro.runner.harness.
run_sweep` builds one JobSpec per graph), the process pool (which already
speaks per-cell tasks underneath), and the HTTP front-end
(:mod:`repro.service.http` parses request bodies straight into JobSpecs).

Identity is content, not spelling.  :meth:`JobSpec.canonical_dict` reuses
the artifact store's spec canonicalization — schemes through
:class:`~repro.compress.spec.SchemeSpec`, algorithms through
:class:`~repro.algorithms.spec.AlgorithmSpec`, metrics resolved to sorted
canonical registry names, seeds deduplicated and sorted — so
``{"schemes": ["uniform(0.5)"]}`` and ``{"schemes": ["uniform(p=0.5)"]}``
hash to the same :attr:`JobSpec.job_key`.  That key is what the service
queue dedupes in-flight work by: it names the same computation the store
cells underneath it are keyed by.

:func:`execute_job` is the one scheduler.  It loads the job's graph
(dataset name, or a ``fingerprint:<hex>`` reference into a store
snapshot), builds a :class:`~repro.analytics.session.Session`, and sweeps
the grid seed by seed — store replay and process-pool fan-out included —
returning the :class:`~repro.analytics.grid.SweepTable` plus the same
perf counters the BENCH records carry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.analytics.grid import SweepTable
from repro.obs.spans import span
from repro.runner.store import _algorithm_json, _canonical_metrics, _scheme_json
from repro.utils.timer import stopwatch

__all__ = [
    "FINGERPRINT_PREFIX",
    "JobSpec",
    "JobResult",
    "execute_job",
    "load_job_graph",
    "merge_worker_stats",
]

#: Graph references of this form resolve to a store snapshot instead of a
#: named dataset stand-in.
FINGERPRINT_PREFIX = "fingerprint:"

#: The paper's default battery, mirrored from the session grid default.
DEFAULT_ALGORITHMS = ("bfs", "pr", "cc", "tc")


def _as_strings(values: Iterable, what: str) -> tuple[str, ...]:
    out = tuple(str(v) for v in values)
    if not out:
        raise ValueError(f"job needs at least one {what}")
    return out


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of service work: a grid over one graph.

    Fields keep the *submitted* spellings (so result tables label rows
    the way the caller asked for them); equality of computation is the
    canonical form underneath (:meth:`canonical_dict` / :attr:`job_key`).
    """

    graph: str
    schemes: tuple[str, ...]
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS
    metrics: tuple[str, ...] | None = None
    seeds: tuple[int, ...] = (0,)
    #: Seed for building dataset stand-ins (not the compression seeds).
    graph_seed: int = 0
    bfs_root: int = 0
    pr_iterations: int = 100

    @classmethod
    def build(
        cls,
        graph: str,
        schemes: Iterable,
        algorithms: Iterable | None = None,
        metrics: Iterable | None = None,
        seeds: Iterable = (0,),
        *,
        graph_seed: int = 0,
        bfs_root: int = 0,
        pr_iterations: int = 100,
    ) -> "JobSpec":
        """Validated constructor normalizing every axis to tuples.

        Metric names are resolved and **sorted** here (satisfying the
        canonical-JSON contract at the transport boundary); scheme and
        algorithm spellings are kept but validated through their
        registries, so a bad spec fails at submission — an HTTP 400 —
        not inside a worker.
        """
        from repro.algorithms.registry import build_algorithm
        from repro.compress.registry import build_scheme

        schemes = _as_strings(schemes, "scheme")
        for s in schemes:
            build_scheme(s)
        algorithms = (
            DEFAULT_ALGORITHMS
            if algorithms is None
            else _as_strings(algorithms, "algorithm")
        )
        for a in algorithms:
            build_algorithm(a)
        if metrics is not None:
            metrics = _canonical_metrics(_as_strings(metrics, "metric"))
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise ValueError("job needs at least one seed")
        return cls(
            graph=str(graph),
            schemes=schemes,
            algorithms=algorithms,
            metrics=metrics,
            seeds=seeds,
            graph_seed=int(graph_seed),
            bfs_root=int(bfs_root),
            pr_iterations=int(pr_iterations),
        )

    @classmethod
    def from_sweep(cls, spec, graph: str) -> "JobSpec":
        """The job a :class:`~repro.runner.harness.SweepSpec` runs on one
        of its graphs — how the CLI harness rides the shared scheduler."""
        return cls.build(
            graph,
            spec.schemes,
            spec.algorithms,
            spec.metrics,
            spec.seeds,
            graph_seed=spec.graph_seed,
            bfs_root=spec.bfs_root,
            pr_iterations=spec.pr_iterations,
        )

    # -- transport ---------------------------------------------------------- #

    def to_dict(self) -> dict:
        """JSON-safe lossless form; inverse of :meth:`from_dict`."""
        return {
            "graph": self.graph,
            "schemes": list(self.schemes),
            "algorithms": list(self.algorithms),
            "metrics": None if self.metrics is None else list(self.metrics),
            "seeds": list(self.seeds),
            "graph_seed": self.graph_seed,
            "bfs_root": self.bfs_root,
            "pr_iterations": self.pr_iterations,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobSpec":
        """Parse a transport dict (HTTP body, stored record) tolerantly.

        Unknown keys are an error naming the offenders — a mistyped field
        in a request should 400, not silently run the default grid.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"job spec must be a JSON object, got {type(data).__name__}")
        known = {
            "graph", "schemes", "algorithms", "metrics", "seeds",
            "graph_seed", "bfs_root", "pr_iterations",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown job fields {unknown}; known: {sorted(known)}")
        if "graph" not in data or "schemes" not in data:
            raise ValueError("job spec needs at least 'graph' and 'schemes'")
        return cls.build(
            data["graph"],
            data["schemes"],
            data.get("algorithms"),
            data.get("metrics"),
            data.get("seeds", (0,)),
            graph_seed=data.get("graph_seed", 0),
            bfs_root=data.get("bfs_root", 0),
            pr_iterations=data.get("pr_iterations", 100),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))

    # -- identity ----------------------------------------------------------- #

    def canonical_dict(self) -> dict:
        """The spelling-free identity of this job's computation.

        Schemes and algorithms become their canonical spec dicts (the
        store's cell-key normal form), metrics are already sorted
        canonical names, and seeds are deduplicated and sorted — two
        submissions that would populate the same store cells canonicalize
        identically.
        """
        return {
            "graph": self.graph,
            "graph_seed": self.graph_seed,
            "schemes": sorted(_scheme_json(s) for s in self.schemes),
            "algorithms": sorted(
                json.dumps(
                    _resolved_algorithm_dict(a, self), sort_keys=True,
                    separators=(",", ":"),
                )
                for a in self.algorithms
            ),
            "metrics": None if self.metrics is None else list(self.metrics),
            "seeds": sorted(set(self.seeds)),
        }

    @property
    def job_key(self) -> str:
        """Hex SHA-256 of the canonical JSON; the queue's dedupe key."""
        return hashlib.sha256(
            json.dumps(
                self.canonical_dict(), sort_keys=True, separators=(",", ":")
            ).encode()
        ).hexdigest()

    def cell_groups(self) -> int:
        """Scheduled (scheme, seed, algorithm) groups — the work estimate."""
        return len(self.schemes) * len(self.algorithms) * len(set(self.seeds))


def _resolved_algorithm_dict(algorithm: str, job: "JobSpec") -> dict:
    """Canonical algorithm dict with the job's session defaults injected.

    The session injects ``bfs_root``/``pr_iterations`` into algorithms
    that omit them, so two jobs differing only in those fields *are*
    different computations — folding the defaults into the canonical form
    keeps the job key honest about it.
    """
    from repro.algorithms.registry import algorithm_positional

    data = json.loads(_algorithm_json(algorithm))
    params = data.setdefault("params", {})
    if data.get("name") == "pagerank" and "max_iterations" not in params:
        params["max_iterations"] = job.pr_iterations
    if algorithm_positional(data.get("name")) == "source" and "source" not in params:
        params["source"] = job.bfs_root
    return data


@dataclass
class JobResult:
    """Everything one :func:`execute_job` call produced."""

    spec: JobSpec
    table: SweepTable
    perf: dict = field(default_factory=dict)


def merge_worker_stats(total: dict, delta: dict | None) -> None:
    """Fold one grid's pid-keyed worker stats into a running total.

    Cells sum; peak RSS and private (USS) bytes take the max (lifetime
    high-water marks); the graph load time and mode are per-process and
    kept from first sight.
    """
    if not delta:
        return
    for pid, stats in delta.items():
        slot = total.get(pid)
        if slot is None:
            total[pid] = dict(stats)
        else:
            slot["cells"] += stats.get("cells", 0)
            slot["peak_rss_bytes"] = max(
                slot["peak_rss_bytes"], stats.get("peak_rss_bytes", 0)
            )
            uss = stats.get("private_bytes")
            if uss is not None:
                slot["private_bytes"] = max(slot.get("private_bytes") or 0, uss)


def load_job_graph(job: JobSpec, *, store=None, graph_loader=None):
    """Resolve a job's graph reference to a :class:`CSRGraph`.

    ``graph_loader`` (a ``ref -> CSRGraph`` callable) wins when given;
    ``fingerprint:<hex>`` references load the store's binary snapshot;
    anything else is a named dataset stand-in
    (:func:`repro.graphs.datasets.load`).
    """
    if graph_loader is not None:
        return graph_loader(job.graph)
    if job.graph.startswith(FINGERPRINT_PREFIX):
        fingerprint = job.graph[len(FINGERPRINT_PREFIX):]
        if store is None:
            raise ValueError(
                f"graph reference {job.graph!r} needs a store to resolve"
            )
        graph = store.load_graph(fingerprint)
        if graph is None:
            raise ValueError(
                f"no snapshot for {job.graph!r} in store {store.root}"
            )
        return graph
    from repro.graphs import datasets

    return datasets.load(job.graph, seed=job.graph_seed)


def execute_job(
    job: JobSpec, *, store=None, jobs: int | None = None, graph_loader=None,
    retry=None, graph_load: str | None = None,
) -> JobResult:
    """Run one job to completion — the scheduler all front-ends share.

    ``store``/``jobs`` select replay and process-pool fan-out exactly as
    :class:`~repro.analytics.session.Session` does; cells already stored
    replay with zero recomputation.  ``retry`` (a
    :class:`~repro.runner.parallel.RetryPolicy` or dict) sets the grid's
    fault-tolerance policy; ``graph_load`` selects how pooled workers
    obtain the graph (``"auto"``/``"shm"``/``"npz"``/``"mmap"`` — see
    :mod:`repro.runner.parallel`).  The returned perf dict carries the same
    counter names the BENCH records and the harness totals use
    (``cells_scheduled``, ``cache_hits``/``cache_misses``,
    ``compress_seconds``, ``analysis_hits``/``analysis_misses``,
    ``retries``/``pool_rebuilds``/``store_write_retries`` and the
    ``failed_cells`` quarantine manifest), plus one ``grids`` entry per
    seed.
    """
    from repro.analytics.session import Session

    if store is not None and not hasattr(store, "get_cells"):
        from repro.runner.store import ArtifactStore

        store = ArtifactStore(store)
    graph = load_job_graph(job, store=store, graph_loader=graph_loader)
    session = Session(
        graph,
        seed=job.seeds[0],
        bfs_root=job.bfs_root,
        pr_iterations=job.pr_iterations,
        store=store,
        jobs=jobs,
        retry=retry,
        graph_load=graph_load or "auto",
    )
    cells = []
    grids = []
    workers: dict = {}
    failed_cells: list = []
    store_write_failures: list = []
    totals = {
        "cells_scheduled": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "compress_seconds": 0.0,
        "analysis_hits": 0,
        "analysis_misses": 0,
        "retries": 0,
        "pool_rebuilds": 0,
        "store_write_retries": 0,
    }
    with stopwatch() as wall, span(
        "job", graph=job.graph, seeds=len(job.seeds), schemes=len(job.schemes)
    ):
        for seed in job.seeds:
            table = session.grid(job.schemes, job.algorithms, job.metrics, seed=seed)
            cells.extend(replace(c, graph=job.graph) for c in table)
            grid_perf = dict(session.last_grid_perf)
            grid_perf.pop("store_stats", None)
            # Cumulative per session: stays at one per algorithm no
            # matter how many schemes/seeds scored against it.
            grid_perf["baseline_computations"] = session.baseline_computations
            # Flatten the structural-analysis cache counters so they
            # total like the store counters (detail stays per grid).
            analysis = grid_perf.get("analysis_cache") or {}
            grid_perf["analysis_hits"] = analysis.get("hits", 0)
            grid_perf["analysis_misses"] = analysis.get("misses", 0)
            for key in totals:
                totals[key] += grid_perf.get(key, 0)
            # Quarantine manifests carry cell identity; tag each entry
            # with the seed's grid so multi-seed jobs stay attributable.
            for entry in grid_perf.get("failed_cells", ()):
                failed_cells.append(dict(entry))
            for entry in grid_perf.get("store_write_failures", ()):
                store_write_failures.append(dict(entry))
            merge_worker_stats(workers, grid_perf.get("workers"))
            grids.append({"graph": job.graph, "seed": seed, **grid_perf})
    table = SweepTable(cells)
    perf = {
        "job_key": job.job_key,
        "graph": job.graph,
        "seeds": list(job.seeds),
        "cells": len(table),
        **totals,
        "failed_cells": failed_cells,
        "store_write_failures": store_write_failures,
        "workers": workers,
        "wall_seconds": wall.seconds,
        "grids": grids,
    }
    return JobResult(spec=job, table=table, perf=perf)
