"""repro — Slim Graph: practical lossy graph compression (SC'19 reproduction).

The public API mirrors the paper's three-part architecture:

- **Programming model** (:mod:`repro.core`): compression kernels over
  vertices, edges, triangles and subgraphs; the ``SG`` container; the
  parallel execution engine and the Listing-2 runtime.
- **Compression schemes** (:mod:`repro.compress`): uniform sampling,
  spectral sparsifiers, Triangle Reduction (all variants), spanners, lossy
  summarization, plus the cut-sparsifier and low-rank baselines.
- **Analytics** (:mod:`repro.metrics`, :mod:`repro.analytics`): KL and
  other divergences, reordered-pair counts, BFS critical edges, degree
  distributions, and the scheme×algorithm evaluation harness.

Substrates: :mod:`repro.graphs` (CSR core + generators + datasets),
:mod:`repro.algorithms` (the GAPBS stand-in), :mod:`repro.distributed`
(simulated MPI-RMA pipeline), :mod:`repro.theory` (Table 3 bounds).

Quickstart
----------
>>> from repro import Session, datasets, pagerank
>>> g = datasets.load("s-pok", seed=0)
>>> session = Session(g, seed=1)
>>> scores = session.compress("spanner(k=8)").run(pagerank).score(["kl"])
>>> scores["kl_divergence"]  # doctest: +SKIP
0.0123

Schemes are named by declarative specs — ``"uniform(p=0.5)"``, the
paper's TR labels (``"EO-0.8-1-TR"``), or ``|`` pipelines
(``"low_degree(max_degree=1) | spanner(k=4)"``) — parsed by
:class:`~repro.compress.spec.SchemeSpec` and built through the open
registry (:func:`~repro.compress.registry.register_scheme`); the session
caches each algorithm's original-graph run across every scheme it scores.

The algorithm and metric axes are symmetric: algorithms parse from
declarative :class:`~repro.algorithms.spec.AlgorithmSpec` strings
(``"pagerank(iterations=50)"``, the paper aliases ``"pr"``/``"cc"``/
``"tc"``/``"bfs"``) through their own open registry
(:func:`~repro.algorithms.registry.register_algorithm`), each declaring a
typed result adapter that selects compatible metrics from the metric
registry (:func:`~repro.metrics.registry.register_metric`).
``Session.grid(schemes, algorithms, metrics)`` sweeps the full cube into
a tidy, CSV/JSON round-trippable :class:`~repro.analytics.grid.SweepTable`.
"""

from repro.graphs import CSRGraph, GraphBuilder, generators, datasets
from repro.compress import (
    Chain,
    CompressionResult,
    CompressionScheme,
    RandomUniformSampling,
    SchemeSpec,
    SpectralSparsifier,
    StageRecord,
    TriangleReduction,
    Spanner,
    LossySummarization,
    LowDegreeVertexRemoval,
    CutSparsifier,
    ClusteredLowRankApproximation,
    build_scheme,
    make_scheme,
    register_scheme,
    registered_schemes,
)
from repro.core import (
    SG,
    SlimGraphRuntime,
    Pipeline,
    run_kernels,
    VertexKernel,
    EdgeKernel,
    TriangleKernel,
    SubgraphKernel,
)
from repro.algorithms import (
    AlgorithmSpec,
    BoundAlgorithm,
    bfs,
    build_algorithm,
    connected_components,
    pagerank,
    count_triangles,
    register_algorithm,
    registered_algorithms,
    sssp,
    dijkstra,
    minimum_spanning_forest,
    betweenness_centrality,
    greedy_matching,
    greedy_coloring,
)
from repro.metrics import (
    kl_divergence,
    register_metric,
    registered_metrics,
    reordered_pairs_fraction,
    reordered_neighbor_pairs,
    critical_edge_preservation,
)
from repro.analytics import (
    CompressedRun,
    ScoreReport,
    Session,
    SweepTable,
    evaluate_scheme,
    sweep,
)
from repro import theory
from repro import distributed
from repro import runner
from repro import service
from repro.runner import ArtifactStore, run_sweep
from repro.service import JobQueue, JobSpec, execute_job

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "generators",
    "datasets",
    "CompressionResult",
    "CompressionScheme",
    "RandomUniformSampling",
    "SpectralSparsifier",
    "TriangleReduction",
    "Spanner",
    "LossySummarization",
    "LowDegreeVertexRemoval",
    "CutSparsifier",
    "ClusteredLowRankApproximation",
    "SchemeSpec",
    "StageRecord",
    "Chain",
    "make_scheme",
    "build_scheme",
    "register_scheme",
    "registered_schemes",
    "SG",
    "SlimGraphRuntime",
    "Pipeline",
    "run_kernels",
    "VertexKernel",
    "EdgeKernel",
    "TriangleKernel",
    "SubgraphKernel",
    "bfs",
    "connected_components",
    "pagerank",
    "count_triangles",
    "sssp",
    "dijkstra",
    "minimum_spanning_forest",
    "betweenness_centrality",
    "greedy_matching",
    "greedy_coloring",
    "kl_divergence",
    "reordered_pairs_fraction",
    "reordered_neighbor_pairs",
    "critical_edge_preservation",
    "Session",
    "CompressedRun",
    "ScoreReport",
    "SweepTable",
    "AlgorithmSpec",
    "BoundAlgorithm",
    "register_algorithm",
    "registered_algorithms",
    "build_algorithm",
    "register_metric",
    "registered_metrics",
    "evaluate_scheme",
    "sweep",
    "theory",
    "distributed",
    "runner",
    "service",
    "ArtifactStore",
    "run_sweep",
    "JobQueue",
    "JobSpec",
    "execute_job",
    "__version__",
]
