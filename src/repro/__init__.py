"""repro — Slim Graph: practical lossy graph compression (SC'19 reproduction).

The public API mirrors the paper's three-part architecture:

- **Programming model** (:mod:`repro.core`): compression kernels over
  vertices, edges, triangles and subgraphs; the ``SG`` container; the
  parallel execution engine and the Listing-2 runtime.
- **Compression schemes** (:mod:`repro.compress`): uniform sampling,
  spectral sparsifiers, Triangle Reduction (all variants), spanners, lossy
  summarization, plus the cut-sparsifier and low-rank baselines.
- **Analytics** (:mod:`repro.metrics`, :mod:`repro.analytics`): KL and
  other divergences, reordered-pair counts, BFS critical edges, degree
  distributions, and the scheme×algorithm evaluation harness.

Substrates: :mod:`repro.graphs` (CSR core + generators + datasets),
:mod:`repro.algorithms` (the GAPBS stand-in), :mod:`repro.distributed`
(simulated MPI-RMA pipeline), :mod:`repro.theory` (Table 3 bounds).

Quickstart
----------
>>> from repro import datasets, make_scheme, pagerank, kl_divergence
>>> g = datasets.load("s-pok", seed=0)
>>> result = make_scheme("spanner(k=8)").compress(g, seed=1)
>>> kl = kl_divergence(pagerank(g).ranks, pagerank(result.graph).ranks)
"""

from repro.graphs import CSRGraph, GraphBuilder, generators, datasets
from repro.compress import (
    CompressionResult,
    CompressionScheme,
    RandomUniformSampling,
    SpectralSparsifier,
    TriangleReduction,
    Spanner,
    LossySummarization,
    LowDegreeVertexRemoval,
    CutSparsifier,
    ClusteredLowRankApproximation,
    make_scheme,
)
from repro.core import (
    SG,
    SlimGraphRuntime,
    Pipeline,
    run_kernels,
    VertexKernel,
    EdgeKernel,
    TriangleKernel,
    SubgraphKernel,
)
from repro.algorithms import (
    bfs,
    connected_components,
    pagerank,
    count_triangles,
    sssp,
    dijkstra,
    minimum_spanning_forest,
    betweenness_centrality,
    greedy_matching,
    greedy_coloring,
)
from repro.metrics import (
    kl_divergence,
    reordered_pairs_fraction,
    reordered_neighbor_pairs,
    critical_edge_preservation,
)
from repro.analytics import evaluate_scheme, sweep
from repro import theory
from repro import distributed

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "generators",
    "datasets",
    "CompressionResult",
    "CompressionScheme",
    "RandomUniformSampling",
    "SpectralSparsifier",
    "TriangleReduction",
    "Spanner",
    "LossySummarization",
    "LowDegreeVertexRemoval",
    "CutSparsifier",
    "ClusteredLowRankApproximation",
    "make_scheme",
    "SG",
    "SlimGraphRuntime",
    "Pipeline",
    "run_kernels",
    "VertexKernel",
    "EdgeKernel",
    "TriangleKernel",
    "SubgraphKernel",
    "bfs",
    "connected_components",
    "pagerank",
    "count_triangles",
    "sssp",
    "dijkstra",
    "minimum_spanning_forest",
    "betweenness_centrality",
    "greedy_matching",
    "greedy_coloring",
    "kl_divergence",
    "reordered_pairs_fraction",
    "reordered_neighbor_pairs",
    "critical_edge_preservation",
    "evaluate_scheme",
    "sweep",
    "theory",
    "distributed",
    "__version__",
]
