"""Arboricity estimation (Nash–Williams density).

§6.1's coloring-number bound runs through the arboricity
α = max_S ⌈m(S)/(|S|-1)⌉.  Maximizing over all subsets is NP-ish to do
naively, but the maximizing subset is a densest-subgraph-style object:
Charikar's greedy peeling (remove min-degree vertices, track the best
prefix density) gives a 2-approximation of max m(S)/|S| and, evaluated with
the (|S|-1) denominator, a certified *lower bound* on α.  Together with the
degeneracy upper bound (α ≤ degeneracy) this brackets the true arboricity
tightly on the graphs we evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.algorithms.kcore import core_numbers
from repro.algorithms.registry import register_algorithm

__all__ = ["ArboricityEstimate", "estimate_arboricity", "densest_prefix_density"]


@dataclass(frozen=True)
class ArboricityEstimate:
    lower: float  # from greedy densest subgraph (certified: some S achieves it)
    upper: float  # degeneracy (Nash–Williams: α <= degeneracy)

    @property
    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2.0


def densest_prefix_density(g: CSRGraph) -> float:
    """max over peeling prefixes S of m(S)/(|S|-1); certified α lower bound."""
    if g.directed:
        raise ValueError("arboricity expects an undirected graph")
    n = g.n
    if n < 2 or g.num_edges == 0:
        return 0.0
    order = core_numbers(g).order  # min-degree-first peeling
    # Peel in order; track remaining edge count via residual degrees.
    removed = np.zeros(n, dtype=bool)
    deg = g.degrees.copy().astype(np.int64)
    m_remaining = g.num_edges
    best = 0.0
    size = n
    for v in order:
        if size >= 2:
            best = max(best, m_remaining / (size - 1))
        # Remove v.
        removed[v] = True
        live_nbrs = g.neighbors(v)[~removed[g.neighbors(v)]]
        m_remaining -= len(live_nbrs)
        deg[live_nbrs] -= 1
        size -= 1
    return float(np.ceil(best))


@register_algorithm(
    "arboricity",
    adapter="scalar",
    aliases=("estimate_arboricity",),
    extract=lambda res: res.midpoint,
    summary="arboricity bracket midpoint (greedy-peel lower, degeneracy upper)",
    example="arboricity",
)
def estimate_arboricity(g: CSRGraph) -> ArboricityEstimate:
    """Bracket the arboricity: greedy-peel lower bound, degeneracy upper."""
    lower = densest_prefix_density(g)
    upper = float(core_numbers(g).degeneracy) if g.n else 0.0
    upper = max(upper, lower)
    return ArboricityEstimate(lower=lower, upper=upper)
