"""k-core decomposition (degeneracy ordering).

The peeling order drives greedy coloring (the *coloring number* of §6.1 is
achieved by coloring in reverse degeneracy order) and gives the degeneracy,
which sandwiches the arboricity the paper's coloring bounds are stated in.
Linear-time bucket peeling (Batagelj–Zaveršnik).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph

__all__ = ["CoreResult", "core_numbers", "degeneracy_ordering"]


@dataclass(frozen=True)
class CoreResult:
    core: np.ndarray  # core number per vertex
    order: np.ndarray  # peeling order (degeneracy order)

    @property
    def degeneracy(self) -> int:
        return int(self.core.max()) if len(self.core) else 0


@register_algorithm(
    "kcore",
    adapter="ordering",
    aliases=("core_numbers",),
    extract=lambda res: res.core,
    summary="k-core decomposition; per-vertex core numbers",
    example="kcore",
)
@register_algorithm(
    "degeneracy",
    adapter="scalar",
    extract=lambda res: res.degeneracy,
    summary="graph degeneracy (max core number; arboricity upper bound)",
    example="degeneracy",
)
def core_numbers(g: CSRGraph) -> CoreResult:
    """Peel vertices in nondecreasing residual degree; O(n + m)."""
    if g.directed:
        raise ValueError("k-core expects an undirected graph")
    n = g.n
    deg = g.degrees.copy()
    max_deg = int(deg.max()) if n else 0
    # Bucket sort vertices by degree.
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    np.add.at(bin_start, deg + 1, 1)
    np.cumsum(bin_start, out=bin_start)
    pos = np.empty(n, dtype=np.int64)
    vert = np.empty(n, dtype=np.int64)
    fill = bin_start[:-1].copy()
    for v in range(n):
        pos[v] = fill[deg[v]]
        vert[pos[v]] = v
        fill[deg[v]] += 1
    core = deg.copy()
    bin_ptr = bin_start[:-1].copy()
    for i in range(n):
        v = vert[i]
        for u in g.neighbors(v):
            if core[u] > core[v]:
                # Swap u toward the front of its bucket and shrink it.
                du = core[u]
                pu = pos[u]
                pw = bin_ptr[du]
                w = vert[pw]
                if u != w:
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                bin_ptr[du] += 1
                core[u] -= 1
    return CoreResult(core=core, order=vert)


def degeneracy_ordering(g: CSRGraph) -> np.ndarray:
    """The peeling order; color in *reverse* of this for the coloring number."""
    return core_numbers(g).order
