"""Minimum spanning tree / forest.

The max-weight Triangle Reduction variant exists precisely to preserve MST
weight (§4.3, §6.1 "Others"), so the MST weight is a headline accuracy
metric.  Two engines:

- :func:`kruskal` — sort + union-find, the exact reference;
- :func:`boruvka` — round-based, each round vectorized (min edge per
  component via ``np.minimum.at``), the parallel-flavored engine.

Both return a minimum spanning *forest* on disconnected graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph

__all__ = ["MSTResult", "kruskal", "boruvka", "minimum_spanning_forest", "UnionFind"]


class UnionFind:
    """Array-based disjoint sets with path halving + union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


@dataclass(frozen=True)
class MSTResult:
    """Edge ids of a minimum spanning forest and its total weight."""

    edge_ids: np.ndarray
    total_weight: float
    num_trees: int


def _weights(g: CSRGraph) -> np.ndarray:
    return (
        g.edge_weights
        if g.is_weighted
        else np.ones(g.num_edges, dtype=np.float64)
    )


def kruskal(g: CSRGraph) -> MSTResult:
    """Exact MSF via sorted edges + union-find.

    Ties are broken by edge id, which makes the result deterministic (and
    unique when weights are distinct).
    """
    if g.directed:
        raise ValueError("MST is defined for undirected graphs")
    w = _weights(g)
    order = np.lexsort((np.arange(g.num_edges), w))
    uf = UnionFind(g.n)
    chosen = []
    total = 0.0
    for e in order:
        u, v = int(g.edge_src[e]), int(g.edge_dst[e])
        if uf.union(u, v):
            chosen.append(int(e))
            total += float(w[e])
            if len(chosen) == g.n - 1:
                break
    roots = len({uf.find(x) for x in range(g.n)})
    return MSTResult(
        edge_ids=np.array(chosen, dtype=np.int64),
        total_weight=total,
        num_trees=roots,
    )


def boruvka(g: CSRGraph) -> MSTResult:
    """Borůvka rounds: every component picks its cheapest outgoing edge.

    O(log n) rounds, each a vectorized pass over all edges.  Ties broken by
    edge id so the forest matches :func:`kruskal` on distinct weights.
    """
    if g.directed:
        raise ValueError("MST is defined for undirected graphs")
    n, m = g.n, g.num_edges
    w = _weights(g)
    uf = UnionFind(n)
    chosen_mask = np.zeros(m, dtype=bool)
    src, dst = g.edge_src, g.edge_dst
    eid = np.arange(m, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64)
    while True:
        cs, cd = labels[src], labels[dst]
        crossing = cs != cd
        if not crossing.any():
            break
        ce = eid[crossing]
        key = w[crossing]
        # Cheapest crossing edge per component.  Each crossing edge is a
        # candidate for both endpoint components; after sorting candidates
        # by (weight, edge id), the per-component winner is the first
        # occurrence (np.unique keeps first indices).
        comp_all = np.concatenate([cs[crossing], cd[crossing]])
        edge_all = np.concatenate([ce, ce])
        key_all = np.concatenate([key, key])
        order = np.lexsort((edge_all, key_all))
        uniq, first = np.unique(comp_all[order], return_index=True)
        picked = np.unique(edge_all[order][first])
        # Contract via union-find: a picked edge may close a pseudo-cycle
        # when two components pick the same edge; union() filters those.
        for e in picked:
            if uf.union(int(src[e]), int(dst[e])):
                chosen_mask[e] = True
        labels = np.array([uf.find(x) for x in range(n)], dtype=np.int64)
    chosen = np.flatnonzero(chosen_mask)
    roots = len(np.unique(labels))
    return MSTResult(
        edge_ids=chosen,
        total_weight=float(w[chosen].sum()),
        num_trees=roots,
    )


@register_algorithm(
    "mst",
    adapter="scalar",
    aliases=("minimum_spanning_forest",),
    extract=lambda res: res.total_weight,
    summary="minimum-spanning-forest weight (Kruskal / Borůvka)",
    example="mst(method=kruskal)",
)
def minimum_spanning_forest(g: CSRGraph, *, method: str = "kruskal") -> MSTResult:
    if method == "kruskal":
        return kruskal(g)
    if method == "boruvka":
        return boruvka(g)
    raise ValueError(f"unknown method {method!r}")
