"""Graph spectra (Laplacian eigenvalues).

Spectral sparsification (§4.2.1) preserves the graph spectrum; this module
computes the quantities the accuracy analytics compare: Laplacian
eigenvalues (full for small graphs, extremal via Lanczos otherwise), the
spectral distance between two graphs on the same vertex set, and quadratic
forms xᵀLx — the defining invariant of an ε-spectral sparsifier
((1-ε)·xᵀL_G x ≤ xᵀL_H x ≤ (1+ε)·xᵀL_G x).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = [
    "laplacian",
    "laplacian_eigenvalues",
    "spectral_distance",
    "quadratic_form",
    "quadratic_form_ratio_bounds",
]


def laplacian(g: CSRGraph):
    """Weighted combinatorial Laplacian L = D - A as scipy CSR."""
    from scipy.sparse import diags

    adj = g.to_scipy()
    if g.directed:
        adj = adj.maximum(adj.T)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    return diags(deg) - adj


@register_algorithm(
    "spectrum",
    adapter="distribution",
    aliases=("laplacian_spectrum",),
    positional="k",
    # Clip the numerically-tiny negative eigenvalues eigvalsh can emit so
    # the values normalize cleanly as a distribution.
    extract=lambda vals: np.maximum(vals, 0.0),
    summary="ascending Laplacian eigenvalues; fix k for vertex-changing schemes",
    example="spectrum(k=16)",
)
def laplacian_eigenvalues(g: CSRGraph, k: int | None = None) -> np.ndarray:
    """Ascending Laplacian eigenvalues.

    ``k=None`` (or small graphs) computes the dense full spectrum; otherwise
    the ``k`` smallest eigenvalues via shifted Lanczos.
    """
    L = laplacian(g)
    n = L.shape[0]
    if n == 0:
        return np.empty(0)
    if k is None or k >= n - 1 or n <= 512:
        from scipy.linalg import eigvalsh

        vals = eigvalsh(L.toarray())
        return vals if k is None else vals[:k]
    from scipy.sparse.linalg import eigsh

    vals = eigsh(L.tocsc().astype(np.float64), k=k, sigma=0, which="LM", return_eigenvectors=False)
    return np.sort(vals)


def spectral_distance(g1: CSRGraph, g2: CSRGraph, k: int | None = None) -> float:
    """Normalized L2 distance between (truncated) Laplacian spectra.

    The "visual similarity" analogue for spectra: 0 means identical
    spectrum; used to validate that spectral sparsifiers beat uniform
    sampling at equal edge budget.
    """
    e1 = laplacian_eigenvalues(g1, k)
    e2 = laplacian_eigenvalues(g2, k)
    size = min(len(e1), len(e2))
    if size == 0:
        return 0.0
    diff = e1[:size] - e2[:size]
    denom = max(np.linalg.norm(e1[:size]), 1e-12)
    return float(np.linalg.norm(diff) / denom)


def quadratic_form(g: CSRGraph, x: np.ndarray) -> float:
    """xᵀ L x = Σ_e w_e (x_u - x_v)², computed edgewise (no matrix)."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (g.n,):
        raise ValueError("x must have one entry per vertex")
    diff = x[g.edge_src] - x[g.edge_dst]
    w = g.edge_weights if g.is_weighted else 1.0
    return float(np.sum(w * diff * diff))


def quadratic_form_ratio_bounds(
    original: CSRGraph, compressed: CSRGraph, *, num_probes: int = 64, seed=None
) -> tuple[float, float]:
    """Empirical (min, max) of xᵀL_H x / xᵀL_G x over random probes.

    For an ε-spectral sparsifier both numbers lie in [1-ε, 1+ε]; uniform
    sampling at the same edge budget shows a much wider spread.  Probes are
    standard normal vectors projected off the all-ones nullspace.
    """
    if original.n != compressed.n:
        raise ValueError("graphs must share the vertex set")
    rng = as_generator(seed)
    ratios = []
    for _ in range(num_probes):
        x = rng.standard_normal(original.n)
        x -= x.mean()
        denom = quadratic_form(original, x)
        if denom < 1e-12:
            continue
        ratios.append(quadratic_form(compressed, x) / denom)
    if not ratios:
        return (1.0, 1.0)
    return (float(min(ratios)), float(max(ratios)))
