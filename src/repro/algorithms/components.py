"""Connected components.

Vectorized Shiloach–Vishkin-style min-label propagation with pointer
jumping: every round relaxes component labels across all edges at once and
then compresses label chains, so the number of rounds is O(log n) even on
long paths (road networks).  This mirrors the parallel CC kernels the paper
runs via GAPBS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph

__all__ = ["ComponentsResult", "connected_components", "largest_component"]


@dataclass(frozen=True)
class ComponentsResult:
    """Per-vertex component labels (minimum vertex id in the component)."""

    labels: np.ndarray
    num_components: int

    def sizes(self) -> np.ndarray:
        """Component sizes indexed by compacted component id."""
        _, counts = np.unique(self.labels, return_counts=True)
        return counts

    def component_of(self, v: int) -> int:
        return int(self.labels[v])


@register_algorithm(
    "connected_components",
    adapter="scalar",
    aliases=("cc",),
    extract=lambda res: res.num_components,
    summary="number of weakly connected components (Shiloach–Vishkin style)",
    example="cc",
)
def connected_components(g: CSRGraph) -> ComponentsResult:
    """Weakly connected components (edge direction ignored)."""
    n = g.n
    labels = np.arange(n, dtype=np.int64)
    if g.num_edges == 0:
        return ComponentsResult(labels=labels, num_components=n)
    src, dst = g.edge_src, g.edge_dst
    while True:
        lo = np.minimum(labels[src], labels[dst])
        new = labels.copy()
        np.minimum.at(new, src, lo)
        np.minimum.at(new, dst, lo)
        # Pointer jumping: compress chains until labels are roots.
        while True:
            jumped = new[new]
            if np.array_equal(jumped, new):
                break
            new = jumped
        if np.array_equal(new, labels):
            break
        labels = new
    num = int(len(np.unique(labels)))
    return ComponentsResult(labels=labels, num_components=num)


def largest_component(g: CSRGraph) -> np.ndarray:
    """Vertex ids of the largest weakly connected component."""
    res = connected_components(g)
    uniq, counts = np.unique(res.labels, return_counts=True)
    big = uniq[np.argmax(counts)]
    return np.flatnonzero(res.labels == big)
