"""Path-length statistics: shortest-path lengths, average path length,
diameter.

Table 3 tracks shortest s-t path length P, average path length P̄, and
diameter D under every compression scheme.  Exact all-pairs is Θ(nm), so
medium/large graphs use the standard sampled estimators (the paper's own
evaluation relies on sampled roots as well).  All statistics are computed
over *reachable* pairs only, with the number of unreachable pairs reported
separately — uniform sampling can disconnect graphs, which Table 3 models
as infinite/unbounded path lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.algorithms.bfs import bfs
from repro.algorithms.registry import register_algorithm
from repro.algorithms.sssp import dijkstra
from repro.utils.rng import as_generator

__all__ = ["PathStats", "path_length_stats", "pairwise_distance", "exact_diameter"]


@dataclass(frozen=True)
class PathStats:
    """Sampled (or exact) path-length statistics.

    ``eccentricity_max`` is a lower bound on the diameter when sampled and
    the exact diameter when ``exact=True`` was used on a connected graph.
    """

    average_length: float
    eccentricity_max: float
    num_sources: int
    unreachable_pairs: int

    @property
    def diameter_lower_bound(self) -> float:
        return self.eccentricity_max


def pairwise_distance(g: CSRGraph, u: int, v: int) -> float:
    """Shortest-path distance between two vertices (inf if disconnected)."""
    if g.is_weighted:
        return float(dijkstra(g, u).distance[v])
    lvl = bfs(g, u).level[v]
    return float(lvl) if lvl >= 0 else float("inf")


@register_algorithm(
    "path_stats",
    adapter="scalar",
    aliases=("path_length_stats", "apl"),
    extract=lambda res: res.average_length,
    summary="average path length from sampled BFS/SSSP roots (Table 3's P̄)",
    example="path_stats(num_sources=32, seed=0)",
)
def path_length_stats(
    g: CSRGraph,
    *,
    num_sources: int | None = 32,
    seed=None,
    weighted: bool | None = None,
) -> PathStats:
    """Average path length + max eccentricity from sampled BFS/SSSP roots.

    ``num_sources=None`` runs every vertex as a source (exact, Θ(nm)).
    Unweighted graphs use hop counts; weighted graphs use Dijkstra unless
    ``weighted=False`` forces hops.
    """
    if g.n == 0:
        return PathStats(0.0, 0.0, 0, 0)
    rng = as_generator(seed)
    if num_sources is None or num_sources >= g.n:
        sources = np.arange(g.n, dtype=np.int64)
    else:
        sources = rng.choice(g.n, size=num_sources, replace=False)
    use_weights = g.is_weighted if weighted is None else (weighted and g.is_weighted)
    total = 0.0
    count = 0
    unreachable = 0
    ecc_max = 0.0
    for s in sources:
        if use_weights:
            dist = dijkstra(g, int(s)).distance
            finite = np.isfinite(dist)
            dist_f = dist[finite]
        else:
            lvl = bfs(g, int(s)).level
            finite = lvl >= 0
            dist_f = lvl[finite].astype(np.float64)
        # Exclude the trivial s->s pair.
        reached = len(dist_f) - 1
        unreachable += g.n - 1 - reached
        if reached > 0:
            total += float(dist_f.sum())
            count += reached
            ecc_max = max(ecc_max, float(dist_f.max()))
    avg = total / count if count else float("inf")
    return PathStats(
        average_length=avg,
        eccentricity_max=ecc_max,
        num_sources=len(sources),
        unreachable_pairs=int(unreachable),
    )


def exact_diameter(g: CSRGraph) -> float:
    """Exact diameter of the (largest piece of the) graph via all-source
    sweeps; infinite if the graph is disconnected."""
    stats = path_length_stats(g, num_sources=None)
    if stats.unreachable_pairs > 0:
        return float("inf")
    return stats.eccentricity_max
