"""Triangle listing, counting, and approximate counting.

Triangle Reduction (§4.3) makes triangles "the smallest unit of graph
compression", so exact listing is on the compression hot path.  We use the
*forward* (degree-ordered) algorithm: orient every edge from the
lower-ranked to the higher-ranked endpoint (rank = (degree, id)), then for
every oriented edge (u, v) intersect the out-neighborhoods of u and v.
Work is O(m^{3/2}) — exactly the complexity the paper quotes for TR — and
each triangle is emitted exactly once.

Approximate counters (DOULION edge sparsification and wedge sampling,
§4.3's "numerous approximate schemes") are provided for the accuracy
analytics, and per-vertex counts back Table 6 (average triangles per
vertex) and the reordered-pairs metric for TC.

Because triangle structure is consumed repeatedly on the *same* graph
(TR across seeds, the ``tc`` baseline, ``summarize``, Table 3 bound
checks), the expensive derived structures here — the full triangle list,
the degree-oriented arc arrays with their sorted membership keys, the
edge-id lookup index, and per-edge triangle counts — are memoized through
the graph-keyed :mod:`repro.graphs.analysis` cache.  The cache is keyed
by graph identity and graphs are immutable, so a compressed graph never
sees its original's triangles; it recomputes (and caches) its own.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.analysis import analysis_cache, cached_analysis
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = [
    "TriangleList",
    "list_triangles",
    "count_triangles",
    "triangles_per_vertex",
    "edge_triangle_counts",
    "approx_count_doulion",
    "approx_count_wedge_sampling",
    "edge_ids_of_pairs",
]


@dataclass(frozen=True)
class TriangleList:
    """All triangles of a graph.

    ``vertices[t] = (u, v, w)`` with rank(u) < rank(v) < rank(w) in the
    degree ordering used for listing, and ``edge_ids[t]`` holds the
    canonical ids of edges (u,v), (u,w), (v,w) in that order, ready for
    triangle kernels to delete.
    """

    vertices: np.ndarray  # (T, 3) int64
    edge_ids: np.ndarray  # (T, 3) int64

    @property
    def count(self) -> int:
        return len(self.vertices)

    def __len__(self) -> int:
        return len(self.vertices)


def _oriented_adjacency(g: CSRGraph):
    """Out-neighborhoods under the (degree, id) total order, CSR-shaped.

    Returns ``(optr, onbr, rank)``: for each vertex the higher-ranked
    neighbors (the "forward" orientation that makes every triangle appear
    as exactly one directed wedge u→v→w closed by arc u→w).
    """
    deg = g.degrees
    # rank key: degree-major, id-minor; encoded so np comparisons work.
    rank = np.argsort(np.argsort(deg * np.int64(g.n) + np.arange(g.n), kind="stable"))
    heads = g.arc_heads
    tails = g.indices
    forward = rank[tails] > rank[heads]
    fh, ft = heads[forward], tails[forward]
    order = np.lexsort((rank[ft], fh))
    fh, ft = fh[order], ft[order]
    counts = np.bincount(fh, minlength=g.n)
    optr = np.zeros(g.n + 1, dtype=np.int64)
    np.cumsum(counts, out=optr[1:])
    return optr, ft, rank


@cached_analysis("oriented_arcs")
def _oriented_arcs(g: CSRGraph):
    """The degree-oriented arc arrays plus their sorted membership keys.

    ``(optr, onbr, arc_u, sorted_keys)``: the CSR-shaped forward
    orientation of :func:`_oriented_adjacency`, the head of every
    oriented arc, and the sorted ``u·n+v`` key array used for
    closed-wedge membership tests.  Cached per graph — exact triangle
    listing and count-only passes share one orientation build.
    """
    optr, onbr, _ = _oriented_adjacency(g)
    arc_u = np.repeat(np.arange(g.n), np.diff(optr))
    sorted_keys = np.sort(arc_u * np.int64(g.n) + onbr)
    return _frozen(optr), _frozen(onbr), _frozen(arc_u), _frozen(sorted_keys)


def _frozen(a: np.ndarray) -> np.ndarray:
    """Mark an array read-only before it enters the analysis cache.

    Cached analyses hand the *same* arrays to every caller; an in-place
    mutation would silently poison all future results for that graph, so
    cached buffers refuse writes outright (mirroring ``CSRGraph``'s
    cached ``degrees``/``arc_heads``).
    """
    a.flags.writeable = False
    return a


_WEDGE_CHUNK = 1 << 21  # arcs per block: bounds peak wedge-buffer memory


def _iter_wedge_blocks(g: CSRGraph):
    """Yield (us, vs, ws) triangle blocks via a vectorized wedge join.

    For every oriented arc (u, v), all candidate wedges (u, v, w ∈ N⁺(v))
    are materialized with one scatter-gather, then closed-wedge membership
    (u, w) ∈ E⁺ is tested with one sorted-key search.  No per-edge Python
    loop; arcs are processed in blocks so memory stays bounded.
    """
    optr, onbr, arc_u, sorted_keys = _oriented_arcs(g)
    arc_v = onbr
    m_arcs = len(arc_v)

    for lo in range(0, m_arcs, _WEDGE_CHUNK):
        hi = min(lo + _WEDGE_CHUNK, m_arcs)
        u_blk, v_blk = arc_u[lo:hi], arc_v[lo:hi]
        counts = optr[v_blk + 1] - optr[v_blk]
        total = int(counts.sum())
        if total == 0:
            continue
        rep_starts = np.repeat(optr[v_blk], counts)
        rep_bases = np.repeat(np.cumsum(counts) - counts, counts)
        flat = rep_starts + (np.arange(total) - rep_bases)
        ws = onbr[flat]
        us = np.repeat(u_blk, counts)
        vs = np.repeat(v_blk, counts)
        want = us * np.int64(g.n) + ws
        pos = np.searchsorted(sorted_keys, want)
        closed = (pos < len(sorted_keys)) & (
            sorted_keys[np.minimum(pos, len(sorted_keys) - 1)] == want
        )
        if closed.any():
            yield us[closed], vs[closed], ws[closed]


@cached_analysis("triangle_list")
def list_triangles(g: CSRGraph) -> TriangleList:
    """Enumerate every triangle exactly once (vectorized forward join).

    The result is memoized per graph: TR compression across S seeds, the
    per-vertex/per-edge counters, and the exact global counter all share
    one O(m^{3/2}) listing of the same graph.
    """
    if g.directed:
        raise ValueError("triangle listing expects an undirected graph")
    blocks = list(_iter_wedge_blocks(g))
    if not blocks:
        empty = np.empty((0, 3), dtype=np.int64)
        return TriangleList(vertices=_frozen(empty), edge_ids=_frozen(empty.copy()))
    tri = np.stack(
        [
            np.concatenate([b[0] for b in blocks]),
            np.concatenate([b[1] for b in blocks]),
            np.concatenate([b[2] for b in blocks]),
        ],
        axis=1,
    )
    eids = np.stack(
        [
            edge_ids_of_pairs(g, tri[:, 0], tri[:, 1]),
            edge_ids_of_pairs(g, tri[:, 0], tri[:, 2]),
            edge_ids_of_pairs(g, tri[:, 1], tri[:, 2]),
        ],
        axis=1,
    )
    return TriangleList(vertices=_frozen(tri), edge_ids=_frozen(eids))


@register_algorithm(
    "count_triangles",
    adapter="scalar",
    aliases=("tc",),
    summary="exact global triangle count (forward wedge join, O(m^{3/2}))",
    example="tc",
)
def count_triangles(g: CSRGraph) -> int:
    """Exact triangle count; the same wedge join, count-only.

    Reuses a cached triangle list when one exists (e.g. after TR
    compression of the same graph); otherwise runs the count-only join —
    which never materializes the (T, 3) arrays — and caches the scalar.
    """
    if g.directed:
        raise ValueError("triangle counting expects an undirected graph")
    cached = analysis_cache().peek(g, "triangle_list")
    if cached is not None:
        return cached.count
    return analysis_cache().lookup(
        g, "triangle_count", lambda h: sum(len(b[0]) for b in _iter_wedge_blocks(h))
    )


@register_algorithm(
    "triangles_per_vertex",
    adapter="ordering",
    aliases=("tc_per_vertex", "tpv"),
    summary="triangles through each vertex (Table 6's quantity / n)",
    example="tc_per_vertex",
)
def triangles_per_vertex(g: CSRGraph) -> np.ndarray:
    """Number of triangles through each vertex (Table 6's quantity / n)."""
    tl = list_triangles(g)
    out = np.zeros(g.n, dtype=np.int64)
    if tl.count:
        np.add.at(out, tl.vertices.ravel(), 1)
    return out


@cached_analysis("edge_triangle_counts")
def edge_triangle_counts(g: CSRGraph) -> np.ndarray:
    """Number of triangles containing each canonical edge.

    Drives the CT Triangle-Reduction variant (remove edges belonging to
    the fewest triangles first, Fig. 6 right).  Cached per graph, so CT
    sweeps across seeds pay for one counting pass.
    """
    tl = list_triangles(g)
    out = np.zeros(g.num_edges, dtype=np.int64)
    if tl.count:
        np.add.at(out, tl.edge_ids.ravel(), 1)
    return _frozen(out)


@cached_analysis("edge_key_index")
def _edge_key_index(g: CSRGraph):
    """``(sorted_keys, order)`` of the canonical ``src·n+dst`` edge keys —
    the binary-search index behind :func:`edge_ids_of_pairs`, built once
    per graph."""
    keys = g.edge_src * np.int64(g.n) + g.edge_dst
    order = np.argsort(keys, kind="stable")
    return _frozen(keys[order]), _frozen(order)


def edge_ids_of_pairs(g: CSRGraph, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vectorized lookup of canonical edge ids for endpoint arrays.

    Raises ``KeyError`` if any pair is not an edge.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if not g.directed:
        lo, hi = np.minimum(u, v), np.maximum(u, v)
    else:
        lo, hi = u, v
    if g.num_edges == 0:
        if len(u):
            raise KeyError(f"pair ({u[0]}, {v[0]}) is not an edge")
        return np.empty(0, dtype=np.int64)
    sorted_keys, order = _edge_key_index(g)
    want = lo * np.int64(g.n) + hi
    pos = np.searchsorted(sorted_keys, want)
    ok = (pos < len(sorted_keys)) & (
        sorted_keys[np.minimum(pos, len(sorted_keys) - 1)] == want
    )
    if not ok.all():
        bad = int(np.flatnonzero(~ok)[0])
        raise KeyError(f"pair ({u[bad]}, {v[bad]}) is not an edge")
    return order[pos]


def approx_count_doulion(g: CSRGraph, p: float, *, seed=None) -> float:
    """DOULION estimator: sparsify with probability ``p``, count, scale 1/p³.

    Unbiased for the global triangle count; the same "coin" the paper cites
    for uniform sampling preserving triangle counts (§4.2.2).
    """
    check_probability(p, "p")
    if p == 0.0:
        return 0.0
    rng = as_generator(seed)
    keep = rng.random(g.num_edges) < p
    return count_triangles(g.keep_edges(keep)) / p**3


def approx_count_wedge_sampling(g: CSRGraph, samples: int = 10_000, *, seed=None) -> float:
    """Wedge-sampling estimator of the triangle count.

    Samples wedges (paths of length 2) proportionally to d(v)·(d(v)-1)/2,
    checks closure, and scales: T ≈ closed_fraction × total_wedges / 3.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = as_generator(seed)
    deg = g.degrees.astype(np.float64)
    wedges_per_vertex = deg * (deg - 1) / 2.0
    total_wedges = wedges_per_vertex.sum()
    if total_wedges == 0:
        return 0.0
    prob = wedges_per_vertex / total_wedges
    centers = rng.choice(g.n, size=samples, p=prob)
    closed = 0
    for c in centers:
        row = g.neighbors(c)
        i, j = rng.choice(len(row), size=2, replace=False)
        if g.has_edge(int(row[i]), int(row[j])):
            closed += 1
    return (closed / samples) * total_wedges / 3.0
