"""Betweenness centrality (Brandes' algorithm).

BC is the paper's canonical "output is a per-vertex score vector"
algorithm: §5 proposes counting reordered vertex pairs of the BC ranking
before/after compression, and §4.4 proves degree-1 removal preserves BC
exactly.  Exact BC runs one BFS + dependency accumulation per source
(Θ(nm)); the sampled estimator uses a random subset of sources, as in the
approximate-BC literature the paper cites.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["betweenness_centrality"]


@register_algorithm(
    "betweenness",
    adapter="ordering",
    aliases=("bc", "betweenness_centrality"),
    summary="Brandes betweenness centrality (exact or source-sampled)",
    example="betweenness(num_sources=32, seed=0)",
)
def betweenness_centrality(
    g: CSRGraph,
    *,
    num_sources: int | None = None,
    seed=None,
    normalized: bool = True,
) -> np.ndarray:
    """Brandes BC over hop-count shortest paths.

    ``num_sources=None`` computes the exact centrality; otherwise the
    estimator sums dependencies over a sampled source set and rescales by
    n / num_sources (unbiased for the exact value).
    """
    if g.directed:
        raise ValueError("this implementation targets undirected graphs")
    n = g.n
    rng = as_generator(seed)
    if num_sources is None or num_sources >= n:
        sources = np.arange(n, dtype=np.int64)
        scale_sources = 1.0
    else:
        sources = rng.choice(n, size=num_sources, replace=False)
        scale_sources = n / num_sources

    bc = np.zeros(n, dtype=np.float64)
    indptr, indices = g.indptr, g.indices
    for s in sources:
        # --- forward BFS computing sigma (path counts) and levels.
        level = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        level[s] = 0
        sigma[s] = 1.0
        frontiers = [np.array([s], dtype=np.int64)]
        frontier = frontiers[0]
        depth = 0
        while len(frontier):
            depth += 1
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            rep_starts = np.repeat(starts, counts)
            rep_bases = np.repeat(np.cumsum(counts) - counts, counts)
            flat = rep_starts + (np.arange(total) - rep_bases)
            heads = indices[flat]
            tails = np.repeat(frontier, counts)
            fresh = level[heads] == -1
            level[heads[fresh]] = depth
            on_level = level[heads] == depth
            # sigma accumulates along all arcs into the next level.
            np.add.at(sigma, heads[on_level], sigma[tails[on_level]])
            nxt = np.unique(heads[fresh])
            if len(nxt) == 0:
                break
            frontiers.append(nxt)
            frontier = nxt
        # --- backward accumulation of dependencies.
        delta = np.zeros(n, dtype=np.float64)
        for frontier in reversed(frontiers[1:]):
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            rep_starts = np.repeat(starts, counts)
            rep_bases = np.repeat(np.cumsum(counts) - counts, counts)
            flat = rep_starts + (np.arange(total) - rep_bases)
            heads = indices[flat]
            tails = np.repeat(frontier, counts)
            pred = level[heads] == level[tails] - 1
            contrib = np.zeros(len(tails))
            contrib[pred] = (
                sigma[heads[pred]] / sigma[tails[pred]] * (1.0 + delta[tails[pred]])
            )
            np.add.at(delta, heads, contrib)
        delta[s] = 0.0
        bc += delta
    bc *= scale_sources
    bc /= 2.0  # undirected: each pair counted twice
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2) / 2.0
    return bc
