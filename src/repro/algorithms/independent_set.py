"""Maximal independent sets.

Table 3 tracks the maximum independent set size ÎS under compression;
exact MIS is NP-hard, so the substrate reports the greedy (min-degree)
maximal independent set — the standard comparable proxy when the same
heuristic runs on original and compressed graphs — plus Luby's
random-priority parallel MIS for the engine-flavored variant.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["greedy_mis", "luby_mis"]


@register_algorithm(
    "mis",
    adapter="vertex_set",
    aliases=("greedy_mis", "independent_set"),
    summary="min-degree greedy maximal independent set (Table 3's ÎS proxy)",
    example="mis",
)
def greedy_mis(g: CSRGraph) -> np.ndarray:
    """Min-degree greedy maximal independent set; returns vertex ids.

    Deterministic: ties broken by vertex id.  Uses lazy degree updates
    (heap entries are revalidated on pop).
    """
    if g.directed:
        raise ValueError("independent set expects an undirected graph")
    import heapq

    deg = g.degrees.copy()
    alive = np.ones(g.n, dtype=bool)
    heap = [(int(d), v) for v, d in enumerate(deg)]
    heapq.heapify(heap)
    chosen = []
    while heap:
        d, v = heapq.heappop(heap)
        if not alive[v]:
            continue
        if d != deg[v]:
            heapq.heappush(heap, (int(deg[v]), v))
            continue
        chosen.append(v)
        alive[v] = False
        for u in g.neighbors(v):
            if alive[u]:
                alive[u] = False
                for w in g.neighbors(u):
                    if alive[w]:
                        deg[w] -= 1
    return np.array(sorted(chosen), dtype=np.int64)


def luby_mis(g: CSRGraph, *, seed=None) -> np.ndarray:
    """Luby's algorithm: rounds of random priorities, local minima join.

    Each round is vectorized over edges; expected O(log n) rounds.
    """
    if g.directed:
        raise ValueError("independent set expects an undirected graph")
    rng = as_generator(seed)
    n = g.n
    in_set = np.zeros(n, dtype=bool)
    alive = np.ones(n, dtype=bool)
    src, dst = g.edge_src, g.edge_dst
    while alive.any():
        pri = rng.random(n)
        pri[~alive] = np.inf
        # A vertex joins if it beats every live neighbor.
        loses = np.zeros(n, dtype=bool)
        live_edge = alive[src] & alive[dst]
        es, ed = src[live_edge], dst[live_edge]
        src_wins = pri[es] < pri[ed]
        loses[ed[src_wins]] = True
        loses[es[~src_wins]] = True
        winners = alive & ~loses
        in_set[winners] = True
        # Remove winners and their neighborhoods.
        alive[winners] = False
        kill_edge = in_set[src] | in_set[dst]
        alive[src[kill_edge]] = False
        alive[dst[kill_edge]] = False
        alive[winners] = False
    return np.flatnonzero(in_set)
