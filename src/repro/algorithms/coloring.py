"""Greedy vertex coloring and the coloring number.

§6.1 analyzes how compression affects the *coloring number* — the fewest
colors greedy coloring attains over all vertex orderings.  That optimum is
achieved by the reverse degeneracy order and equals degeneracy + 1, so
:func:`coloring_number` peels first and colors second.  Arbitrary orderings
are supported for the "some predetermined ordering" experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.algorithms.kcore import core_numbers
from repro.algorithms.registry import register_algorithm
from repro.utils.rng import as_generator

__all__ = ["ColoringResult", "greedy_coloring", "coloring_number"]


@dataclass(frozen=True)
class ColoringResult:
    colors: np.ndarray
    num_colors: int

    def is_proper(self, g: CSRGraph) -> bool:
        return bool(np.all(self.colors[g.edge_src] != self.colors[g.edge_dst]))


@register_algorithm(
    "coloring",
    adapter="scalar",
    aliases=("greedy_coloring",),
    extract=lambda res: res.num_colors,
    summary="first-fit greedy coloring; output is the color count",
    example="coloring(order=degeneracy)",
)
def greedy_coloring(g: CSRGraph, order=None, *, seed=None) -> ColoringResult:
    """First-fit coloring in the given vertex order.

    ``order`` may be an explicit permutation, ``"degeneracy"`` (reverse
    peeling order — optimal for the coloring number), ``"degree"``
    (descending), ``"random"``, or ``None`` (vertex id order).
    """
    if g.directed:
        raise ValueError("coloring expects an undirected graph")
    n = g.n
    if order is None or (isinstance(order, str) and order == "id"):
        sequence = np.arange(n, dtype=np.int64)
    elif isinstance(order, str):
        if order == "degeneracy":
            sequence = core_numbers(g).order[::-1]
        elif order == "degree":
            sequence = np.argsort(-g.degrees, kind="stable")
        elif order == "random":
            sequence = as_generator(seed).permutation(n)
        else:
            raise ValueError(f"unknown order {order!r}")
    else:
        sequence = np.asarray(order, dtype=np.int64)
        if sorted(sequence.tolist()) != list(range(n)):
            raise ValueError("order must be a permutation of all vertices")
    colors = np.full(n, -1, dtype=np.int64)
    for v in sequence:
        used = colors[g.neighbors(v)]
        used = used[used >= 0]
        if len(used) == 0:
            colors[v] = 0
            continue
        used = np.unique(used)
        # Smallest color not in `used`: first gap in the sorted array.
        gap = np.flatnonzero(used != np.arange(len(used)))
        colors[v] = int(gap[0]) if len(gap) else len(used)
    return ColoringResult(colors=colors, num_colors=int(colors.max()) + 1 if n else 0)


@register_algorithm(
    "coloring_number",
    adapter="scalar",
    summary="the coloring number C_G = degeneracy + 1 (§6.1's bound target)",
    example="coloring_number",
)
def coloring_number(g: CSRGraph) -> int:
    """The coloring number C_G (best greedy over orderings) = degeneracy + 1.

    The paper uses α ≤ C_G ≤ 2α (arboricity sandwich, §6.1); this returns
    the exact combinatorial quantity, not a greedy-run color count.
    """
    if g.n == 0:
        return 0
    return core_numbers(g).degeneracy + 1
