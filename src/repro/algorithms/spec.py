"""Declarative algorithm specifications — the scheme-spec API mirrored
onto the algorithm axis.

An :class:`AlgorithmSpec` is the serializable description of a configured
algorithm: a canonical registry name plus a parameter mapping.  Every
string the benchmark harness, the session grid, or a remote caller uses to
name an algorithm parses into an ``AlgorithmSpec``, and every spec formats
back to the identical string::

    AlgorithmSpec.parse("pagerank(iterations=50)")
    AlgorithmSpec.parse("sssp(delta=2.0, source=0)")

Values are type-preserving exactly as for schemes: ``iterations=50`` stays
``int``, ``delta=2.0`` stays ``float``, booleans and ``none`` survive.
``to_dict``/``from_dict`` give the JSON-safe transport form.  ``parse``
resolves registry aliases (``"pr"`` → ``pagerank``) and per-algorithm
parameter aliases (``iterations`` → ``max_iterations``), so equal
configurations compare equal regardless of which surface spelled them.

This class intentionally shares its grammar with
:class:`repro.compress.spec.SchemeSpec` (minus pipelines and TR labels,
which have no algorithm analogue); the legacy *executable* triple
:class:`repro.analytics.evaluation.AlgorithmSpec` (name, fn, kind) remains
as a deprecated shim for hand-rolled battery entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.compress.spec import _NAMED_FORM, _format_value, _freeze, _parse_params

__all__ = ["AlgorithmSpec"]


@dataclass(frozen=True, eq=False)
class AlgorithmSpec:
    """An algorithm name + parameters; value-like and JSON-transportable."""

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))

    # -- identity ---------------------------------------------------------- #

    def __eq__(self, other) -> bool:
        if not isinstance(other, AlgorithmSpec):
            return NotImplemented
        return self.name == other.name and self.params == other.params

    def __hash__(self) -> int:
        return hash((self.name, _freeze(self.params)))

    def __repr__(self) -> str:
        return f"AlgorithmSpec({self.to_string()!r})"

    # -- parsing ----------------------------------------------------------- #

    @classmethod
    def parse(cls, text: str) -> "AlgorithmSpec":
        """Parse ``"name"`` or ``"name(key=value, …)"`` (alias-aware)."""
        text = text.strip()
        if not text:
            raise ValueError("empty algorithm spec")
        m = _NAMED_FORM.match(text)
        if not m:
            raise ValueError(f"cannot parse algorithm spec {text!r}")
        name, args = m.groups()
        name = _canonical_name(name)
        params: dict[str, Any] = {}
        if args and args.strip():
            params = _parse_params(
                name,
                args,
                text,
                positional=_positional_name,
                canonical=_canonical_param,
                label="algorithm",
            )
        return cls(name, params)

    # -- formatting -------------------------------------------------------- #

    def to_string(self) -> str:
        """The canonical spec string; ``parse(s).to_string()`` is stable."""
        if not self.params:
            return self.name
        inner = ", ".join(
            f"{k}={_format_value(v)}" for k, v in self.params.items()
        )
        return f"{self.name}({inner})"

    # -- JSON transport ---------------------------------------------------- #

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "AlgorithmSpec":
        return cls(data["name"], dict(data.get("params", {})))

    # -- construction ------------------------------------------------------ #

    def build(self, **overrides):
        """Bind through the registry; returns a runnable
        :class:`~repro.algorithms.registry.BoundAlgorithm`."""
        from repro.algorithms.registry import build_algorithm

        return build_algorithm(self, **overrides)


def _canonical_name(name: str) -> str:
    """Resolve registry aliases; unknown names pass through lowercased
    (validation happens at build time, not parse time)."""
    from repro.algorithms.registry import resolve_algorithm

    return resolve_algorithm(name) or name.lower()


def _positional_name(name: str) -> str | None:
    from repro.algorithms.registry import algorithm_positional

    return algorithm_positional(name)


def _canonical_param(name: str, key: str) -> str:
    from repro.algorithms.registry import canonical_param

    return canonical_param(name, key)
