"""Typed result adapters: the bridge from algorithm outputs to metrics.

Every registered algorithm declares what *shape* its output has, and that
shape — not the algorithm — decides which §5 accuracy metrics apply:

- ``scalar`` — one number (CC count, MST weight, triangle count);
- ``distribution`` — a nonnegative per-vertex mass vector that normalizes
  to a probability distribution (PageRank, Laplacian spectra);
- ``ordering`` — a per-vertex score vector judged by relative order
  (betweenness, triangles per vertex, SSSP distances);
- ``vertex_set`` — a set of vertex ids (maximal independent sets);
- ``traversal`` — a rooted traversal whose accuracy is judged on the
  *graphs* (BFS critical edges), not on the output value itself.

An adapter owns the output coercion that used to live as ad-hoc
``.ranks``-aware ``_as_float_array`` hacks inside the session: it
canonicalizes raw results into comparable values and aligns per-vertex
vectors across a vertex-set-changing compression via the scheme's vertex
mapping (see :func:`repro.compress.mappings.vertex_alignment`) instead of
naive zero-padding.

The compatible-metric sets live on the other side of the bridge: each
:func:`repro.metrics.registry.register_metric` call names the adapters it
applies to, and ``default_metric`` here picks the §5 routing default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["ResultAdapter", "get_adapter", "registered_adapters"]


def _as_float_vector(value) -> np.ndarray:
    """1-D float view of a per-vertex output (``.ranks``-result aware)."""
    if hasattr(value, "ranks"):
        value = value.ranks
    out = np.asarray(value, dtype=np.float64)
    if out.ndim != 1:
        raise ValueError(f"expected a 1-D per-vertex vector, got shape {out.shape}")
    return out


def _as_scalar(value) -> float:
    if hasattr(value, "__len__") and not isinstance(value, str):
        raise ValueError(f"expected a scalar output, got {type(value).__name__}")
    return float(value)


def _as_vertex_set(value) -> frozenset:
    if isinstance(value, frozenset):
        return value
    return frozenset(int(v) for v in np.asarray(value, dtype=np.int64).ravel())


def _align_vectors(a: np.ndarray, b: np.ndarray, mapping) -> tuple:
    """Bring ``b`` (compressed-graph vector) onto the original vertex ids.

    ``mapping[v]`` is the compressed vertex carrying original vertex ``v``
    (-1 when the vertex was dropped outright; those positions read 0, the
    "no mass / no score" value).  Without a mapping, a shorter ``b`` is
    zero-padded — the legacy fallback for schemes that shrink the vertex
    set without recording provenance.
    """
    if len(b) == len(a):
        return a, b
    if mapping is not None and len(mapping) == len(a):
        idx = np.asarray(mapping, dtype=np.int64)
        if idx.size and idx.max() < len(b):
            aligned = np.zeros(len(a), dtype=np.float64)
            present = idx >= 0
            aligned[present] = b[idx[present]]
            return a, aligned
    if len(b) > len(a):
        raise ValueError("compressed output longer than original")
    padded = np.zeros(len(a), dtype=np.float64)
    padded[: len(b)] = b
    return a, padded


def _identity_align(a, b, mapping):
    return a, b


def _align_vertex_sets(a: frozenset, b: frozenset, mapping) -> tuple:
    """Translate a compressed-graph vertex set back to original ids.

    Under a relabeling/collapsing scheme, ``b`` holds compressed ids;
    each is replaced by the (first) original vertex it carries so both
    sets live in the original id space.  Identity when no mapping.
    """
    if mapping is None:
        return a, b
    idx = np.asarray(mapping, dtype=np.int64)
    alive = np.flatnonzero(idx >= 0)
    compressed_ids, first = np.unique(idx[alive], return_index=True)
    originals = alive[first]
    lookup = dict(zip(compressed_ids.tolist(), originals.tolist()))
    return a, frozenset(lookup[c] for c in b if c in lookup)


@dataclass(frozen=True)
class ResultAdapter:
    """How one output shape is canonicalized, aligned, and scored."""

    name: str
    canonicalize: Callable[[Any], Any]
    align: Callable[[Any, Any, Any], tuple]
    default_metric: str
    legacy_kind: str
    summary: str = ""


_ADAPTERS: dict[str, ResultAdapter] = {
    a.name: a
    for a in (
        ResultAdapter(
            name="scalar",
            canonicalize=_as_scalar,
            align=_identity_align,
            default_metric="relative_change",
            legacy_kind="scalar",
            summary="one number (CC count, MST weight, triangle count)",
        ),
        ResultAdapter(
            name="distribution",
            canonicalize=_as_float_vector,
            align=_align_vectors,
            default_metric="kl_divergence",
            legacy_kind="distribution",
            summary="nonnegative mass vector; normalized before divergences",
        ),
        ResultAdapter(
            name="ordering",
            canonicalize=_as_float_vector,
            align=_align_vectors,
            default_metric="reordered_neighbor_pairs",
            legacy_kind="vector",
            summary="per-vertex scores judged by relative order",
        ),
        ResultAdapter(
            name="vertex_set",
            canonicalize=_as_vertex_set,
            align=_align_vertex_sets,
            default_metric="jaccard_overlap",
            legacy_kind="vertex_set",
            summary="a set of vertex ids (independent sets, matchings)",
        ),
        ResultAdapter(
            name="traversal",
            canonicalize=lambda value: value,
            align=_identity_align,
            default_metric="critical_edge_preservation",
            legacy_kind="bfs",
            summary="rooted traversal; scored on the graphs (critical edges)",
        ),
    )
}

_BY_LEGACY_KIND = {a.legacy_kind: a for a in _ADAPTERS.values()}


def get_adapter(name: str) -> ResultAdapter:
    """Adapter by name; legacy ``AlgorithmSpec.kind`` values also resolve
    (``"vector"`` → ordering, ``"bfs"`` → traversal)."""
    adapter = _ADAPTERS.get(name) or _BY_LEGACY_KIND.get(name)
    if adapter is None:
        raise ValueError(
            f"unknown result adapter {name!r}; known: {sorted(_ADAPTERS)}"
        )
    return adapter


def registered_adapters() -> dict[str, ResultAdapter]:
    return dict(sorted(_ADAPTERS.items()))
