"""The open algorithm registry — the scheme registry mirrored onto the
"which algorithm do we run" axis.

Algorithms declare themselves with the :func:`register_algorithm` function
decorator::

    @register_algorithm(
        "pagerank",
        adapter="distribution",
        aliases=("pr",),
        extract=lambda res: res.ranks,
        param_aliases={"iterations": "max_iterations"},
        summary="power-iteration PageRank; output is a rank distribution",
        example="pagerank(iterations=50)",
    )
    def pagerank(g, *, damping=0.85, ...):
        ...

Registration makes an algorithm runnable from any spec surface —
``build_algorithm("pagerank(iterations=50)")``, an
:class:`~repro.algorithms.spec.AlgorithmSpec`, a JSON dict — and declares
the **typed result adapter** (:mod:`repro.algorithms.adapters`) that
canonicalizes its output and selects compatible metrics from the metric
registry (:mod:`repro.metrics.registry`).  The paper-style TR table names
(``pr``, ``cc``, ``tc``, ``bfs``, ``sssp``, ``mst``, ``bc``, …) are the
registered aliases, so benchmark/CLI strings match the paper's tables.

External code extends the battery with the same decorator the ~17
built-ins use; name/alias collisions are rejected at registration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.algorithms.adapters import ResultAdapter, get_adapter
from repro.algorithms.spec import AlgorithmSpec
from repro.utils.registry import AliasNamespace

__all__ = [
    "AlgorithmEntry",
    "BoundAlgorithm",
    "register_algorithm",
    "unregister_algorithm",
    "registered_algorithms",
    "get_algorithm_entry",
    "resolve_algorithm",
    "algorithm_positional",
    "canonical_param",
    "build_algorithm",
]


@dataclass(frozen=True)
class AlgorithmEntry:
    """Everything the registry knows about one algorithm."""

    name: str
    fn: Callable
    adapter: str
    positional: str | None = None
    aliases: tuple[str, ...] = ()
    extract: Callable | None = None
    param_aliases: Mapping[str, str] = field(default_factory=dict)
    summary: str = ""
    example: str = ""


_NAMESPACE = AliasNamespace(
    "algorithm",
    describe=lambda entry: entry.fn.__qualname__,
    # Re-decorating the same function (module reload) is idempotent.
    same=lambda old, new: old.fn is new.fn,
)
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in algorithm modules so their decorators run.

    Lazy so ``repro.algorithms.registry`` can be imported by the algorithm
    modules themselves without a cycle; triggered by every lookup.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.algorithms.arboricity  # noqa: F401
    import repro.algorithms.betweenness  # noqa: F401
    import repro.algorithms.bfs  # noqa: F401
    import repro.algorithms.coloring  # noqa: F401
    import repro.algorithms.components  # noqa: F401
    import repro.algorithms.independent_set  # noqa: F401
    import repro.algorithms.kcore  # noqa: F401
    import repro.algorithms.matching  # noqa: F401
    import repro.algorithms.mst  # noqa: F401
    import repro.algorithms.pagerank  # noqa: F401
    import repro.algorithms.paths  # noqa: F401
    import repro.algorithms.spectrum  # noqa: F401
    import repro.algorithms.sssp  # noqa: F401
    import repro.algorithms.triangles  # noqa: F401


def register_algorithm(
    name: str,
    *,
    adapter: str,
    positional: str | None = None,
    aliases: tuple[str, ...] | list[str] = (),
    extract: Callable | None = None,
    param_aliases: Mapping[str, str] | None = None,
    summary: str = "",
    example: str = "",
):
    """Function decorator adding an algorithm to the registry.

    Parameters
    ----------
    name:
        Canonical registry name.
    adapter:
        Result-adapter name (``scalar`` / ``distribution`` / ``ordering``
        / ``vertex_set`` / ``traversal``): the output's type, which routes
        it to compatible metrics.
    positional:
        The conventional first parameter; bare values in specs
        (``"bfs(3)"``) bind to it.
    aliases:
        Additional names resolving here (the paper's table labels:
        ``"pr"``, ``"cc"``, ``"tc"``…).
    extract:
        Maps the function's raw result to the adapter's value (e.g.
        ``res.num_components`` for CC).  ``None`` hands the raw result to
        the adapter unchanged.
    param_aliases:
        Spec-surface parameter spellings → real keyword names (e.g. the
        paper-friendly ``iterations`` → ``max_iterations``).
    summary, example:
        One-line description and a representative spec string for docs,
        tests, and the README algorithm table.

    The decorated function is returned unchanged, so stacking several
    registrations over one function (e.g. ``core_numbers`` serving both
    ``kcore`` and ``degeneracy``) works.
    """
    get_adapter(adapter)  # fail fast on typos

    def decorator(fn):
        entry = AlgorithmEntry(
            name=name.lower(),
            fn=fn,
            adapter=get_adapter(adapter).name,
            positional=positional,
            aliases=tuple(a.lower() for a in aliases),
            extract=extract,
            param_aliases=dict(param_aliases or {}),
            summary=summary,
            example=example or name.lower(),
        )
        _NAMESPACE.register(name, entry.aliases, entry)
        return fn

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove an algorithm (and its aliases) from the registry."""
    _ensure_builtins()
    _NAMESPACE.unregister(name)


def resolve_algorithm(name: str) -> str | None:
    """Canonical name for ``name`` (alias-aware), or None if unknown."""
    _ensure_builtins()
    return _NAMESPACE.resolve(name)


def algorithm_positional(name: str) -> str | None:
    """The registered positional parameter of ``name``, if any."""
    key = resolve_algorithm(name)
    return _NAMESPACE.entry_of(key).positional if key else None


def canonical_param(name: str, key: str) -> str:
    """Resolve a spec-surface parameter spelling to the real keyword."""
    canonical = resolve_algorithm(name)
    if canonical is None:
        return key
    return _NAMESPACE.entry_of(canonical).param_aliases.get(key, key)


def get_algorithm_entry(name: str) -> AlgorithmEntry:
    _ensure_builtins()
    return _NAMESPACE.get_known(name)


def registered_algorithms() -> dict[str, AlgorithmEntry]:
    """Canonical name -> entry, for iteration (docs, round-trip tests)."""
    _ensure_builtins()
    return _NAMESPACE.items()


class BoundAlgorithm:
    """A registered algorithm bound to one parameter configuration.

    Value-like (equality and hash follow the canonical spec), callable on
    a graph (returns the raw result), with :meth:`compute` for the
    adapter-canonicalized value.  This is the unit the session's baseline
    cache and grid sweeps key on.
    """

    __slots__ = ("entry", "spec")

    def __init__(self, entry: AlgorithmEntry, spec: AlgorithmSpec):
        self.entry = entry
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def adapter(self) -> ResultAdapter:
        return get_adapter(self.entry.adapter)

    def __call__(self, g):
        kwargs = {
            self.entry.param_aliases.get(k, k): v
            for k, v in self.spec.params.items()
        }
        return self.entry.fn(g, **kwargs)

    def compute(self, g):
        """Run on ``g`` and return the adapter-canonical value."""
        return self.extract(self(g))

    def extract(self, raw):
        """Canonicalize an already-computed raw result."""
        value = self.entry.extract(raw) if self.entry.extract else raw
        return self.adapter.canonicalize(value)

    def __repr__(self) -> str:
        return f"BoundAlgorithm({self.spec.to_string()!r}, adapter={self.entry.adapter!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, BoundAlgorithm):
            return NotImplemented
        return self.spec == other.spec

    def __hash__(self) -> int:
        return hash(self.spec)


def build_algorithm(spec, **overrides) -> BoundAlgorithm:
    """Bind an algorithm from any spec surface.

    ``spec`` may be a spec string (``"pagerank(iterations=50)"``, an alias
    like ``"pr"``), an :class:`AlgorithmSpec`, a dict (JSON transport
    form), or an existing :class:`BoundAlgorithm` (rebound with
    ``overrides`` applied).
    """
    _ensure_builtins()
    if isinstance(spec, BoundAlgorithm):
        spec = spec.spec
    if isinstance(spec, str):
        spec = AlgorithmSpec.parse(spec)
    elif isinstance(spec, Mapping):
        spec = AlgorithmSpec.from_dict(spec)
    if not isinstance(spec, AlgorithmSpec):
        raise TypeError(
            f"expected spec string, AlgorithmSpec, dict, or BoundAlgorithm; "
            f"got {spec!r}"
        )
    entry = get_algorithm_entry(spec.name)
    params: dict[str, Any] = {
        entry.param_aliases.get(k, k): v for k, v in spec.params.items()
    }
    for k, v in overrides.items():
        params[entry.param_aliases.get(k, k)] = v
    canonical = AlgorithmSpec(entry.name, params)
    return BoundAlgorithm(entry, canonical)
