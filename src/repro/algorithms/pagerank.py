"""PageRank by power iteration.

PageRank is the paper's canonical "output is a probability distribution"
algorithm: Table 5 compares PageRank distributions on original vs
compressed graphs with the Kullback-Leibler divergence.  The returned rank
vector always sums to 1 (dangling mass is redistributed uniformly), so it
can be fed to :mod:`repro.metrics.divergences` directly.

The iteration is one sparse matvec per round (scipy CSR), i.e. Θ(m) work
per iteration — the same scaling as the paper's substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph

__all__ = ["PageRankResult", "pagerank"]


@dataclass(frozen=True)
class PageRankResult:
    ranks: np.ndarray
    iterations: int
    converged: bool

    def top(self, k: int = 10) -> np.ndarray:
        """Vertex ids of the k highest-ranked vertices (descending)."""
        order = np.argsort(-self.ranks, kind="stable")
        return order[:k]


@register_algorithm(
    "pagerank",
    adapter="distribution",
    aliases=("pr",),
    extract=lambda res: res.ranks,
    param_aliases={"iterations": "max_iterations"},
    summary="power-iteration PageRank; ranks form a probability distribution",
    example="pagerank(iterations=50)",
)
def pagerank(
    g: CSRGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
    weighted: bool = False,
) -> PageRankResult:
    """Power-iteration PageRank.

    Parameters
    ----------
    damping:
        Teleport parameter α (paper/Brin-Page default 0.85).
    tol:
        L1 convergence threshold between successive rank vectors.
    weighted:
        Distribute rank proportionally to edge weights instead of uniformly
        over out-neighbors.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = g.n
    if n == 0:
        return PageRankResult(ranks=np.empty(0), iterations=0, converged=True)

    adj = g.to_scipy()
    if not weighted and g.is_weighted:
        adj = adj.copy()
        adj.data[:] = 1.0
    out_strength = np.asarray(adj.sum(axis=1)).ravel()
    dangling = out_strength == 0
    inv_out = np.zeros(n)
    inv_out[~dangling] = 1.0 / out_strength[~dangling]
    # Row-normalized transition matrix, transposed once for fast matvec.
    P_T = adj.multiply(inv_out[:, None]).tocsc().T.tocsr()

    r = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    for it in range(1, max_iterations + 1):
        dangling_mass = damping * r[dangling].sum() / n
        new = base + dangling_mass + damping * P_T.dot(r)
        delta = np.abs(new - r).sum()
        r = new
        if delta < tol:
            return PageRankResult(ranks=r, iterations=it, converged=True)
    return PageRankResult(ranks=r, iterations=max_iterations, converged=False)
