"""Graph-algorithm substrate (the GAPBS stand-in).

Every algorithm the paper's evaluation runs over compressed graphs: BFS,
SSSP, PageRank, Connected Components, Triangle Counting, Betweenness
Centrality, MST, matchings, coloring, independent sets, k-cores, path
statistics, and graph spectra.

Each module registers its headline entry point in the open algorithm
registry (:mod:`repro.algorithms.registry`) under the paper's table names
(``pr``, ``cc``, ``tc``, ``bfs``, ``sssp``, ``mst``, ``bc``, …), declaring
a typed result adapter that routes the output to compatible §5 metrics.
Declarative :class:`~repro.algorithms.spec.AlgorithmSpec` strings —
``"pagerank(iterations=50)"`` — parse, round-trip, and build through the
same machinery as compression-scheme specs.
"""

from repro.algorithms.adapters import ResultAdapter, get_adapter, registered_adapters
from repro.algorithms.registry import (
    AlgorithmEntry,
    BoundAlgorithm,
    build_algorithm,
    register_algorithm,
    registered_algorithms,
    unregister_algorithm,
)
from repro.algorithms.spec import AlgorithmSpec
from repro.algorithms.bfs import BFSResult, bfs
from repro.algorithms.components import ComponentsResult, connected_components, largest_component
from repro.algorithms.pagerank import PageRankResult, pagerank
from repro.algorithms.triangles import (
    TriangleList,
    list_triangles,
    count_triangles,
    triangles_per_vertex,
    edge_triangle_counts,
    approx_count_doulion,
    approx_count_wedge_sampling,
)
from repro.algorithms.sssp import SSSPResult, dijkstra, delta_stepping, sssp
from repro.algorithms.mst import MSTResult, kruskal, boruvka, minimum_spanning_forest
from repro.algorithms.matching import MatchingResult, greedy_matching, maximum_matching_size
from repro.algorithms.coloring import ColoringResult, greedy_coloring, coloring_number
from repro.algorithms.independent_set import greedy_mis, luby_mis
from repro.algorithms.kcore import CoreResult, core_numbers, degeneracy_ordering
from repro.algorithms.paths import PathStats, path_length_stats, pairwise_distance, exact_diameter
from repro.algorithms.betweenness import betweenness_centrality
from repro.algorithms.spectrum import (
    laplacian,
    laplacian_eigenvalues,
    spectral_distance,
    quadratic_form,
    quadratic_form_ratio_bounds,
)
from repro.algorithms.arboricity import ArboricityEstimate, estimate_arboricity

__all__ = [
    "AlgorithmSpec",
    "AlgorithmEntry",
    "BoundAlgorithm",
    "ResultAdapter",
    "register_algorithm",
    "registered_algorithms",
    "unregister_algorithm",
    "build_algorithm",
    "get_adapter",
    "registered_adapters",
    "BFSResult",
    "bfs",
    "ComponentsResult",
    "connected_components",
    "largest_component",
    "PageRankResult",
    "pagerank",
    "TriangleList",
    "list_triangles",
    "count_triangles",
    "triangles_per_vertex",
    "edge_triangle_counts",
    "approx_count_doulion",
    "approx_count_wedge_sampling",
    "SSSPResult",
    "dijkstra",
    "delta_stepping",
    "sssp",
    "MSTResult",
    "kruskal",
    "boruvka",
    "minimum_spanning_forest",
    "MatchingResult",
    "greedy_matching",
    "maximum_matching_size",
    "ColoringResult",
    "greedy_coloring",
    "coloring_number",
    "greedy_mis",
    "luby_mis",
    "CoreResult",
    "core_numbers",
    "degeneracy_ordering",
    "PathStats",
    "path_length_stats",
    "pairwise_distance",
    "exact_diameter",
    "betweenness_centrality",
    "laplacian",
    "laplacian_eigenvalues",
    "spectral_distance",
    "quadratic_form",
    "quadratic_form_ratio_bounds",
    "ArboricityEstimate",
    "estimate_arboricity",
]
