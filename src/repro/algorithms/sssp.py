"""Single-source shortest paths.

Two engines, as in GAPBS:

- :func:`dijkstra` — binary-heap Dijkstra, the exact reference;
- :func:`delta_stepping` — bucketed relaxation whose per-bucket inner loop
  is vectorized over all arcs leaving the bucket.  The paper notes (§7.1)
  that TR-enlarged diameters can slow SSSP down and that "changing Δ can
  help but needs manual tuning"; the Δ parameter is exposed for exactly
  that experiment.

Both return the same ``SSSPResult`` (distances, parents); unreachable
vertices get ``inf`` / ``-1``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.algorithms.bfs import gather_frontier_arcs
from repro.algorithms.registry import register_algorithm

__all__ = ["SSSPResult", "dijkstra", "delta_stepping", "sssp"]


@dataclass(frozen=True)
class SSSPResult:
    source: int
    distance: np.ndarray
    parent: np.ndarray

    @property
    def num_reached(self) -> int:
        return int(np.isfinite(self.distance).sum())

    def path_to(self, v: int) -> list[int]:
        """Reconstruct the shortest path source→v (empty if unreachable)."""
        if not np.isfinite(self.distance[v]):
            return []
        path = [v]
        while path[-1] != self.source:
            path.append(int(self.parent[path[-1]]))
        return path[::-1]


def _check(g: CSRGraph, source: int) -> None:
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    if g.is_weighted and g.num_edges and g.edge_weights.min() < 0:
        raise ValueError("shortest paths require nonnegative weights")


def dijkstra(g: CSRGraph, source: int) -> SSSPResult:
    """Exact Dijkstra with a lazy-deletion binary heap.

    Stale heap entries — pushes superseded by a later, shorter tentative
    distance — are skipped by comparing the popped distance against the
    settled one.  Every push strictly improves ``dist[v]``, so at most
    one entry per vertex carries its final distance; the guard therefore
    relaxes each settled vertex exactly once without a visited array.
    """
    _check(g, source)
    dist = np.full(g.n, np.inf)
    parent = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry: u settled at a smaller distance
        nbrs = g.neighbors(u)
        wts = g.neighbor_weights(u)
        for v, w in zip(nbrs, wts):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, int(v)))
    return SSSPResult(source=source, distance=dist, parent=parent)


def delta_stepping(g: CSRGraph, source: int, *, delta: float | None = None) -> SSSPResult:
    """Δ-stepping: settle vertices in distance buckets of width Δ.

    Light/heavy edge distinction is folded into repeated relaxation of the
    current bucket (sufficient for correctness; the classic split is a
    constant-factor optimization).  Each relaxation step is one vectorized
    pass over the arcs leaving the bucket.
    """
    _check(g, source)
    if delta is None:
        # Default heuristic: average edge weight (degenerate graphs -> 1).
        delta = float(g.edge_weights.mean()) if g.is_weighted and g.num_edges else 1.0
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    dist = np.full(g.n, np.inf)
    parent = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    def bucket_of(d):
        """Bucket index for finite distances; inf maps to a sentinel."""
        out = np.full(np.shape(d), np.iinfo(np.int64).max, dtype=np.int64)
        finite = np.isfinite(d)
        out[finite] = np.floor(np.asarray(d)[finite] / delta).astype(np.int64)
        return out

    current = 0
    weights_all = g.edge_weights
    while True:
        in_bucket = np.isfinite(dist) & (bucket_of(dist) == current)
        # Relax the bucket to a fixed point (light-edge cascades).
        while in_bucket.any():
            frontier = np.flatnonzero(in_bucket)
            tails, heads = gather_frontier_arcs(g, frontier)
            if len(tails) == 0:
                break
            if weights_all is None:
                w = np.ones(len(tails))
            else:
                arc_slices = [
                    g.arc_edge_ids[g.indptr[f] : g.indptr[f + 1]] for f in frontier
                ]
                w = weights_all[np.concatenate(arc_slices)]
            cand = dist[tails] + w
            better = cand < dist[heads]
            heads, tails, cand = heads[better], tails[better], cand[better]
            if len(heads) == 0:
                break
            # Resolve duplicate heads: keep the minimum candidate.
            order = np.lexsort((cand, heads))
            heads, tails, cand = heads[order], tails[order], cand[order]
            first = np.ones(len(heads), dtype=bool)
            first[1:] = heads[1:] != heads[:-1]
            heads, tails, cand = heads[first], tails[first], cand[first]
            improved = cand < dist[heads]
            heads, tails, cand = heads[improved], tails[improved], cand[improved]
            dist[heads] = cand
            parent[heads] = tails
            in_bucket = np.zeros(g.n, dtype=bool)
            in_bucket[heads[bucket_of(cand) == current]] = True
        # Advance to the next non-empty bucket.
        pending = np.isfinite(dist) & (bucket_of(dist) > current)
        if not pending.any():
            break
        current = int(bucket_of(dist[pending]).min())
    return SSSPResult(source=source, distance=dist, parent=parent)


@register_algorithm(
    "sssp",
    adapter="ordering",
    positional="source",
    extract=lambda res: res.distance,
    summary="single-source shortest paths (Δ-stepping / Dijkstra); distance vector",
    example="sssp(delta=2.0, source=0)",
)
def sssp(g: CSRGraph, source: int, *, method: str = "auto", delta: float | None = None) -> SSSPResult:
    """Dispatch: ``"dijkstra"``, ``"delta"``, or ``"auto"`` (delta-stepping
    for weighted graphs, plain BFS-equivalent delta for unweighted)."""
    if method == "dijkstra":
        return dijkstra(g, source)
    if method == "delta":
        return delta_stepping(g, source, delta=delta)
    if method == "auto":
        return delta_stepping(g, source, delta=delta)
    raise ValueError(f"unknown method {method!r}")
