"""Breadth-first search.

The frontier expansion is fully vectorized: each round gathers all arcs out
of the frontier with one fancy-indexing pass (contiguous CSR rows), filters
unvisited heads, and deduplicates.  Work is Θ(m + n) total, matching the
GAPBS substrate the paper runs on.

BFS is the paper's special-cased algorithm for accuracy analysis (§5): its
Graph500-style output is the *parent* vector, and accuracy under compression
is judged by critical-edge preservation (:mod:`repro.metrics.bfs_quality`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph

__all__ = ["BFSResult", "bfs", "gather_frontier_arcs", "validate_bfs_tree"]

UNREACHED = -1


@dataclass(frozen=True)
class BFSResult:
    """Levels and parents of one BFS traversal.

    ``level[v] == -1`` and ``parent[v] == -1`` mark unreached vertices; the
    root's parent is itself (Graph500 convention).
    """

    source: int
    level: np.ndarray
    parent: np.ndarray

    @property
    def num_reached(self) -> int:
        return int((self.level >= 0).sum())

    def reached(self) -> np.ndarray:
        return np.flatnonzero(self.level >= 0)


def gather_frontier_arcs(g: CSRGraph, frontier: np.ndarray):
    """All arcs leaving ``frontier`` as ``(tails, heads)`` arrays.

    The vectorized scatter-gather at the heart of every traversal here:
    builds the concatenation of CSR rows without a Python loop.
    """
    starts = g.indptr[frontier]
    counts = g.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e
    # Position j of the output belongs to frontier vertex i where j falls in
    # the i-th count bucket; offset arithmetic avoids per-vertex slicing.
    rep_starts = np.repeat(starts, counts)
    rep_bases = np.repeat(np.cumsum(counts) - counts, counts)
    flat = rep_starts + (np.arange(total) - rep_bases)
    heads = g.indices[flat]
    tails = np.repeat(frontier, counts)
    return tails, heads


@register_algorithm(
    "bfs",
    adapter="traversal",
    positional="source",
    summary="Graph500-style BFS; accuracy is critical-edge preservation (§5)",
    example="bfs(source=0)",
)
@register_algorithm(
    "bfs_reach",
    adapter="scalar",
    positional="source",
    extract=lambda res: res.num_reached,
    summary="BFS reachable-vertex count; the scalar surface runtime-tradeoff "
    "sweeps time (the traversal surface delegates its work to the metric)",
    example="bfs_reach(source=0)",
)
def bfs(g: CSRGraph, source: int) -> BFSResult:
    """BFS from ``source`` over out-edges (undirected graphs use all edges)."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    level = np.full(g.n, UNREACHED, dtype=np.int64)
    parent = np.full(g.n, UNREACHED, dtype=np.int64)
    level[source] = 0
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier):
        depth += 1
        tails, heads = gather_frontier_arcs(g, frontier)
        fresh = level[heads] == UNREACHED
        heads, tails = heads[fresh], tails[fresh]
        if len(heads) == 0:
            break
        # First-wins parent assignment, deterministic: unique keeps the
        # first occurrence in the (frontier-ordered) arc stream.
        uniq, first = np.unique(heads, return_index=True)
        level[uniq] = depth
        parent[uniq] = tails[first]
        frontier = uniq
    return BFSResult(source=source, level=level, parent=parent)


def validate_bfs_tree(g: CSRGraph, result: BFSResult) -> list[str]:
    """Graph500-style output validation of a BFS parent vector.

    BFS is "of particular importance in the HPC community ... for example
    in the Graph500 benchmark" (§5); Graph500 specifies a validator rather
    than a reference output.  Checks (returns human-readable violations,
    empty list = valid):

    1. the root is its own parent at level 0;
    2. every reached non-root vertex's parent edge exists in the graph;
    3. levels increase by exactly one along parent edges;
    4. reachability agrees with the level map (no reached vertex with an
       unreached neighbor at a smaller level, no unreached vertex adjacent
       to a reached one... i.e. the reached set is closed).
    """
    errors: list[str] = []
    lvl, par, root = result.level, result.parent, result.source
    if lvl[root] != 0 or par[root] != root:
        errors.append(f"root {root} must have level 0 and itself as parent")
    reached = np.flatnonzero(lvl >= 0)
    for v in reached:
        v = int(v)
        if v == root:
            continue
        p = int(par[v])
        if p < 0:
            errors.append(f"vertex {v} reached but has no parent")
            continue
        if not g.has_edge(p, v):
            errors.append(f"parent edge ({p}, {v}) not in graph")
        if lvl[v] != lvl[p] + 1:
            errors.append(f"level[{v}]={lvl[v]} != level[{p}]+1={lvl[p] + 1}")
    # Closure: an edge between a reached and an unreached vertex is illegal.
    ls, ld = lvl[g.edge_src], lvl[g.edge_dst]
    bad = ((ls >= 0) & (ld < 0)) | ((ls < 0) & (ld >= 0))
    if not g.directed and bad.any():
        e = int(np.flatnonzero(bad)[0])
        errors.append(
            f"edge ({g.edge_src[e]}, {g.edge_dst[e]}) crosses the reached set"
        )
    # No two-level jumps across any edge within the reached set.
    both = (ls >= 0) & (ld >= 0)
    if not g.directed and np.any(np.abs(ls[both] - ld[both]) > 1):
        errors.append("an edge spans more than one BFS level")
    return errors
