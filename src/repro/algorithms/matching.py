"""Cardinality matchings.

The paper extends GAPBS with a matching kernel and proves (§6.1) that
EO p-1-TR keeps a matching of expected size ≥ (2/3)·M̂C.  We provide:

- :func:`greedy_matching` — maximal matching in edge order (≥ 1/2 of the
  maximum), the Θ(m) kernel used in performance runs;
- :func:`maximum_matching_size` — exact maximum-cardinality matching size
  via a blossom implementation (networkx) for verification on small/medium
  graphs, falling back to the greedy lower bound when networkx is absent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["MatchingResult", "greedy_matching", "maximum_matching_size"]


@dataclass(frozen=True)
class MatchingResult:
    """A matching as an array of canonical edge ids plus the mate vector."""

    edge_ids: np.ndarray
    mate: np.ndarray  # mate[v] = matched partner or -1

    @property
    def size(self) -> int:
        return len(self.edge_ids)


@register_algorithm(
    "matching",
    adapter="scalar",
    aliases=("greedy_matching",),
    extract=lambda res: res.size,
    summary="maximal-matching size (≥ 1/2 of maximum; §6.1's M̂C)",
    example="matching(order=id)",
)
def greedy_matching(g: CSRGraph, *, order: str = "id", seed=None) -> MatchingResult:
    """Maximal matching scanning edges in the given order.

    ``order``: ``"id"`` (deterministic), ``"random"``, or ``"weight"``
    (heaviest first — the weighted-matching heuristic).
    """
    if g.directed:
        raise ValueError("matching expects an undirected graph")
    m = g.num_edges
    if order == "id":
        sequence = np.arange(m, dtype=np.int64)
    elif order == "random":
        sequence = as_generator(seed).permutation(m)
    elif order == "weight":
        w = g.edge_weights if g.is_weighted else np.ones(m)
        sequence = np.argsort(-w, kind="stable")
    else:
        raise ValueError(f"unknown order {order!r}")
    mate = np.full(g.n, -1, dtype=np.int64)
    chosen = []
    src, dst = g.edge_src, g.edge_dst
    for e in sequence:
        u, v = src[e], dst[e]
        if mate[u] == -1 and mate[v] == -1:
            mate[u] = v
            mate[v] = u
            chosen.append(int(e))
    return MatchingResult(edge_ids=np.array(chosen, dtype=np.int64), mate=mate)


def maximum_matching_size(g: CSRGraph) -> int:
    """Exact maximum-cardinality matching size (blossom algorithm).

    Uses networkx as the verified oracle; on installations without it the
    greedy maximal matching size is returned (a 1/2-approximation) — the
    docstring of the caller should say which bound applies.
    """
    try:
        import networkx as nx
    except ImportError:  # pragma: no cover - networkx ships in dev env
        return greedy_matching(g).size
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n))
    nxg.add_edges_from(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
    matching = nx.algorithms.matching.max_weight_matching(nxg, maxcardinality=True)
    return len(matching)
