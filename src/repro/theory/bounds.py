"""Table 3 of the paper as executable predicates.

Every cell of Table 3 ("impact of compression schemes on graph
properties") becomes a :class:`BoundCheck`: given the measured property on
the original and compressed graph (plus scheme parameters), it reports the
bound value and whether the observation satisfies it.  Deterministic
bounds are checked exactly; expectation / w.h.p. bounds accept a ``slack``
multiplier (default 1, i.e. exact check — the property-test suite passes
slack > 1 where the paper itself only claims expectation).

Grouped by scheme row:

- ``uniform_*``   — Simple p-sampling (p = removal probability)
- ``spectral_*``  — Spectral ε-sparsifier
- ``spanner_*``   — O(k)-spanner
- ``eo_tr_*``     — Edge-Once p-1-Triangle-Reduction (§6.1)
- ``low_degree_*``— remove k degree-1 vertices
- ``summary_*``   — lossy ε-summary
- ``subgraph_monotone_*`` — the footnote invariants: any subgraph scheme
  can only decrease m, d, T, M̂C and only increase path lengths and C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BoundCheck"]


@dataclass(frozen=True)
class BoundCheck:
    """One verified Table 3 cell."""

    name: str
    kind: str  # "deterministic" | "expectation" | "whp"
    bound: float
    observed: float
    holds: bool

    def __bool__(self) -> bool:
        return self.holds


def _le(name, kind, observed, bound) -> BoundCheck:
    return BoundCheck(name=name, kind=kind, bound=float(bound), observed=float(observed),
                      holds=bool(observed <= bound + 1e-9))


def _ge(name, kind, observed, bound) -> BoundCheck:
    return BoundCheck(name=name, kind=kind, bound=float(bound), observed=float(observed),
                      holds=bool(observed >= bound - 1e-9))


def _eq(name, kind, observed, expected) -> BoundCheck:
    return BoundCheck(name=name, kind=kind, bound=float(expected), observed=float(observed),
                      holds=bool(abs(observed - expected) <= 1e-9))


# ===================================================================== #
# Subgraph-scheme monotonicity (Table 3 footnote): every scheme except
# degree-1 removal and summaries returns a subgraph, so these must hold
# deterministically for uniform/spectral/spanner/TR outputs.
# ===================================================================== #


def subgraph_monotone_edges(m_orig: int, m_comp: int) -> BoundCheck:
    return _le("subgraph: m never increases", "deterministic", m_comp, m_orig)


def subgraph_monotone_triangles(t_orig: int, t_comp: int) -> BoundCheck:
    return _le("subgraph: T never increases", "deterministic", t_comp, t_orig)


def subgraph_monotone_max_degree(d_orig: int, d_comp: int) -> BoundCheck:
    return _le("subgraph: max degree never increases", "deterministic", d_comp, d_orig)


def subgraph_monotone_components(c_orig: int, c_comp: int) -> BoundCheck:
    return _ge("subgraph: #CC never decreases", "deterministic", c_comp, c_orig)


def subgraph_monotone_path(p_orig: float, p_comp: float) -> BoundCheck:
    """Shortest-path lengths never decrease (inf allowed: disconnection)."""
    return _ge("subgraph: s-t distance never decreases", "deterministic", p_comp, p_orig)


def subgraph_monotone_matching(mc_orig: int, mc_comp: int) -> BoundCheck:
    return _le("subgraph: max matching never increases", "deterministic", mc_comp, mc_orig)


# ===================================================================== #
# Simple p-sampling (p = probability an edge is REMOVED; Table 3 row 3)
# ===================================================================== #


def uniform_edges(m_orig: int, m_comp: int, p: float, *, slack: float = 1.0) -> BoundCheck:
    """E[m'] = (1-p)·m."""
    return _le("uniform: E[m'] = (1-p)m", "expectation", abs(m_comp - (1 - p) * m_orig),
               slack * max(3.0 * math.sqrt(max((1 - p) * p * m_orig, 1.0)), 1.0))


def uniform_triangles(t_orig: int, t_comp: int, p: float, *, slack: float = 1.0) -> BoundCheck:
    """E[T'] = (1-p)³·T (each triangle survives iff its 3 edges survive)."""
    expected = (1 - p) ** 3 * t_orig
    return _le("uniform: E[T'] = (1-p)^3 T", "expectation",
               abs(t_comp - expected), slack * max(4.0 * math.sqrt(max(expected, 1.0)), 1.0))


def uniform_components(c_orig: int, c_comp: int, m_orig: int, m_comp: int) -> BoundCheck:
    """C' ≤ C + (#removed edges): each removal splits at most one CC."""
    removed = m_orig - m_comp
    return _le("uniform: C' <= C + removed", "deterministic", c_comp, c_orig + removed)


def uniform_coloring(cg_orig: int, cg_comp: int, p: float, *, slack: float = 1.0) -> BoundCheck:
    """E[C'_G] ≥ (1-p)/2 · C_G (arboricity argument)."""
    return _ge("uniform: coloring >= (1-p)/2 CG", "expectation",
               cg_comp * slack, (1 - p) / 2 * cg_orig)


def uniform_matching(mc_orig: int, mc_comp: int, p: float, *, slack: float = 1.0) -> BoundCheck:
    """E[M̂C'] ≥ (1-p)·M̂C (each matching edge survives w.p. 1-p)."""
    return _ge("uniform: matching >= (1-p) MC", "expectation",
               mc_comp * slack, (1 - p) * mc_orig)


def uniform_max_degree(d_orig: int, d_comp: int, p: float, *, slack: float = 1.0) -> BoundCheck:
    """E[d'] ≈ (1-p)·d for the max-degree vertex."""
    return _ge("uniform: max degree >= ~(1-p) d", "expectation",
               d_comp * slack, (1 - p) * d_orig - 3.0 * math.sqrt(max(p * (1 - p) * d_orig, 1.0)))


def uniform_independent_set(is_orig: int, is_comp: int, m_orig: int, m_comp: int) -> BoundCheck:
    """ÎS' ≤ ÎS + removed: deleting an edge can grow the MIS by ≤ 1."""
    removed = m_orig - m_comp
    return _le("uniform: IS' <= IS + removed", "deterministic", is_comp, is_orig + removed)


# ===================================================================== #
# Spectral sparsifier
# ===================================================================== #


def spectral_components(c_orig: int, c_comp: int) -> BoundCheck:
    """#CC preserved w.h.p. — every vertex keeps incident edges w.h.p."""
    return _eq("spectral: C' = C (w.h.p.)", "whp", c_comp, c_orig)


def spectral_max_degree(d_orig: int, d_comp: int, epsilon: float = 0.5) -> BoundCheck:
    """d' ≥ d / (2(1+ε)): Laplacian eigenvalue / max-degree relation."""
    return _ge("spectral: max degree >= d/2(1+eps)", "whp",
               d_comp, d_orig / (2.0 * (1.0 + epsilon)))


def spectral_quadratic_form(ratio_lo: float, ratio_hi: float, epsilon: float) -> BoundCheck:
    """xᵀL_Hx / xᵀL_Gx ∈ [1-ε, 1+ε] — the sparsifier definition."""
    worst = max(abs(1.0 - ratio_lo), abs(ratio_hi - 1.0))
    return _le("spectral: quadratic-form ratio within eps", "whp", worst, epsilon)


# ===================================================================== #
# O(k)-spanner
# ===================================================================== #


def spanner_edges(n: int, m_comp: int, k: float, *, constant: float = 4.0) -> BoundCheck:
    """m' = O(n^{1+1/k} log k): check against constant · n^{1+1/k}·(1+log k)."""
    bound = constant * n ** (1.0 + 1.0 / k) * (1.0 + math.log(max(k, 2)))
    return _le("spanner: m' = O(n^{1+1/k})", "expectation", m_comp, bound)


def spanner_distance_stretch(dist_orig: float, dist_comp: float, k: float, *, constant: float = 4.0) -> BoundCheck:
    """dist_H(u,v) ≤ O(k)·dist_G(u,v) for connected pairs."""
    if math.isinf(dist_orig):
        return BoundCheck("spanner: stretch O(k)", "whp", math.inf, dist_comp, True)
    bound = constant * k * max(dist_orig, 1.0)
    return _le("spanner: stretch O(k)", "whp", dist_comp, bound)


def spanner_components(c_orig: int, c_comp: int) -> BoundCheck:
    """Spanners keep one edge per adjacent cluster pair + spanning trees:
    connectivity is preserved deterministically."""
    return _eq("spanner: C' = C", "deterministic", c_comp, c_orig)


def spanner_triangles(n: int, t_comp: int, k: float, *, constant: float = 8.0) -> BoundCheck:
    """T' = O(n^{1+2/k}) in expectation."""
    bound = constant * n ** (1.0 + 2.0 / k)
    return _le("spanner: T' = O(n^{1+2/k})", "expectation", t_comp, bound)


def spanner_coloring(n: int, colors: int, k: float, *, constant: float = 4.0) -> BoundCheck:
    """Greedy coloring with O(n^{1/k} log n) colors exists (§6.2)."""
    bound = constant * n ** (1.0 / k) * math.log(max(n, 2))
    return _le("spanner: coloring O(n^{1/k} log n)", "whp", colors, bound)


# ===================================================================== #
# Edge-Once p-1-Triangle Reduction (§6.1)
# ===================================================================== #


def eo_tr_shortest_path(p_orig: float, p_comp: float, p: float, n: int, *, slack: float = 1.0) -> BoundCheck:
    """dist' ≤ (1+p)·dist w.h.p. (and ≤ 2·dist from the 2-detour argument)."""
    if math.isinf(p_orig):
        return BoundCheck("eo-tr: path <= (1+p) path", "whp", math.inf, p_comp, True)
    bound = slack * (1.0 + p) * p_orig + 2.0 * math.log(max(n, 2)) / max(p_orig, 1.0)
    return _le("eo-tr: path <= (1+p) path", "whp", p_comp, max(bound, 2.0 * p_orig))


def eo_tr_vertex_degree(deg_orig, deg_comp) -> BoundCheck:
    """Every vertex keeps ≥ ⌈d'/2⌉ edges: TR deletes ≤ d'/2 per vertex.

    Holds under §6.1's edge-disjoint-triangles assumption ("a vertex of
    degree d' is contained in at most d'/2 edge-disjoint triangles");
    general overlapping triangles can exceed it.  Accepts arrays; checks
    the worst vertex.
    """
    import numpy as np

    deg_orig = np.asarray(deg_orig, dtype=np.int64)
    deg_comp = np.asarray(deg_comp, dtype=np.int64)
    lower = np.ceil(deg_orig / 2.0)
    worst = float((deg_comp - lower).min()) if len(deg_orig) else 0.0
    return BoundCheck(
        name="eo-tr: degree >= ceil(d/2) per vertex",
        kind="deterministic",
        bound=0.0,
        observed=worst,
        holds=bool(worst >= -1e-9),
    )


def eo_tr_max_degree(d_orig: int, d_comp: int) -> BoundCheck:
    """d' ≥ d/2 (special case of the per-vertex bound; same edge-disjoint
    triangles assumption)."""
    return _ge("eo-tr: max degree >= d/2", "deterministic", d_comp, d_orig / 2.0)


def eo_tr_matching(mc_orig: int, mc_comp: int, *, slack: float = 1.0) -> BoundCheck:
    """E[M̂C'] ≥ (2/3)·M̂C (≤ one of three triangle edges dies, u.a.r.)."""
    return _ge("eo-tr: matching >= 2/3 MC", "expectation", mc_comp * slack, (2.0 / 3.0) * mc_orig)


def eo_tr_coloring(cg_orig: int, cg_comp: int, *, slack: float = 1.0) -> BoundCheck:
    """E[C'_G] ≥ (1/3)·C_G via the arboricity argument."""
    return _ge("eo-tr: coloring >= 1/3 CG", "expectation", cg_comp * slack, cg_orig / 3.0)


def eo_tr_edges(m_orig: int, m_comp: int, p: float, t: int, dmax: int, *, slack: float = 1.0) -> BoundCheck:
    """m' ≤ m − pT/(3d) in expectation (each edge shared by ≤ 3d triangles)."""
    if t == 0:
        return _le("eo-tr: m' <= m - pT/3d", "expectation", m_comp, m_orig)
    bound = m_orig - p * t / (3.0 * max(dmax, 1)) / slack
    return _le("eo-tr: m' <= m - pT/3d", "expectation", m_comp, bound)


def eo_tr_components(c_orig: int, c_comp: int) -> BoundCheck:
    """#CC preserved (exact for edge-disjoint triangles; empirical §7.2)."""
    return _eq("eo-tr: C' = C", "expectation", c_comp, c_orig)


def eo_tr_independent_set(is_orig: int, is_comp: int, p: float, t: int) -> BoundCheck:
    """ÎS' ≤ ÎS + pT (each reduced triangle frees ≤ 1 vertex)."""
    return _le("eo-tr: IS' <= IS + pT", "expectation", is_comp, is_orig + p * t + 3 * math.sqrt(max(t, 1)))


def tr_mst_weight(w_orig: float, w_comp: float) -> BoundCheck:
    """Max-weight TR: MST weight preserved exactly (cycle property)."""
    return _eq("tr-max-weight: MST weight preserved", "deterministic", w_comp, w_orig)


# ===================================================================== #
# Remove k degree-1 vertices (Table 3 last row)
# ===================================================================== #


def low_degree_counts(n_orig: int, m_orig: int, n_comp: int, m_comp: int, k: int) -> BoundCheck:
    """n' = n − k and m' = m − k (each degree-1 vertex owns one edge)."""
    ok = (n_comp == n_orig - k) and (m_comp == m_orig - k)
    return BoundCheck("deg1-removal: n-k and m-k", "deterministic",
                      float(n_orig - k), float(n_comp), bool(ok))


def low_degree_shortest_path(p_orig: float, p_comp: float) -> BoundCheck:
    """Distances between surviving vertices are unchanged."""
    return _eq("deg1-removal: distances preserved", "deterministic", p_comp, p_orig)


def low_degree_triangles(t_orig: int, t_comp: int) -> BoundCheck:
    """T unchanged: degree-1 vertices are in no triangle."""
    return _eq("deg1-removal: T preserved", "deterministic", t_comp, t_orig)


def low_degree_betweenness(bc_orig, bc_comp, survivors) -> BoundCheck:
    """BC of surviving degree->1 interior vertices is preserved exactly
    (unnormalized counts over surviving pairs; §4.4)."""
    import numpy as np

    a = np.asarray(bc_orig, dtype=float)[survivors]
    b = np.asarray(bc_comp, dtype=float)[survivors]
    diff = float(np.abs(a - b).max()) if len(a) else 0.0
    return BoundCheck("deg1-removal: BC preserved on survivors", "deterministic",
                      0.0, diff, bool(diff <= 1e-9))


def low_degree_matching(mc_orig: int, mc_comp: int, k: int) -> BoundCheck:
    """M̂C' ≥ M̂C − k."""
    return _ge("deg1-removal: matching >= MC - k", "deterministic", mc_comp, mc_orig - k)


def low_degree_coloring(cg_orig: int, cg_comp: int) -> BoundCheck:
    """C'_G ≥ C_G − 1 (a degree-1 vertex uses at most one extra color)."""
    return _ge("deg1-removal: coloring >= CG - 1", "deterministic", cg_comp, cg_orig - 1)


# ===================================================================== #
# Lossy ε-summary
# ===================================================================== #


def summary_edges(m_orig: int, m_comp: int, epsilon: float) -> BoundCheck:
    """m' ∈ m ± 2εm: total neighborhood perturbation is ≤ Σ ε·d(v) = 2εm."""
    return _le("summary: |m' - m| <= 2 eps m", "deterministic",
               abs(m_comp - m_orig), 2.0 * epsilon * m_orig + 1e-9)


def summary_neighborhoods(g_orig, g_comp, epsilon: float) -> BoundCheck:
    """|N(v) Δ N'(v)| ≤ ε·d(v) + 1 for every vertex — SWeG's guarantee."""
    import numpy as np

    worst = 0.0
    for v in range(g_orig.n):
        sym = len(np.setxor1d(g_orig.neighbors(v), g_comp.neighbors(v)))
        budget = epsilon * g_orig.degree(v)
        worst = max(worst, sym - budget)
    return BoundCheck("summary: per-vertex eps d(v) error", "deterministic",
                      0.0, float(worst), bool(worst <= 1e-9))


def eo_tr_diameter(d_orig: float, d_comp: float, p: float, n: int) -> BoundCheck:
    """D' ≤ (1+p)·D w.h.p. (§6.1: "a similar reasoning gives the bounds
    for Diameter"); the 2× detour bound holds outright for intact
    triangles, so the check uses max((1+p)D + log-slack, 2D)."""
    if math.isinf(d_orig):
        return BoundCheck("eo-tr: diameter <= (1+p) D", "whp", math.inf, d_comp, True)
    bound = max((1.0 + p) * d_orig + 2.0 * math.log(max(n, 2)), 2.0 * d_orig)
    return _le("eo-tr: diameter <= (1+p) D", "whp", d_comp, bound)


def spanner_diameter(d_orig: float, d_comp: float, k: float, *, constant: float = 4.0) -> BoundCheck:
    """D' = O(k·D) (Table 3's spanner diameter cell)."""
    if math.isinf(d_orig):
        return BoundCheck("spanner: diameter O(kD)", "whp", math.inf, d_comp, True)
    return _le("spanner: diameter O(kD)", "whp", d_comp, constant * k * max(d_orig, 1.0))


def spanner_avg_path(p_orig: float, p_comp: float, k: float, *, constant: float = 4.0) -> BoundCheck:
    """Average path length grows at most O(k)× (Table 3)."""
    if math.isinf(p_orig):
        return BoundCheck("spanner: avg path O(k P)", "whp", math.inf, p_comp, True)
    return _le("spanner: avg path O(k P)", "whp", p_comp, constant * k * max(p_orig, 1.0))


def low_degree_diameter(d_orig: float, d_comp: float) -> BoundCheck:
    """D' ≥ D − 2: removing degree-1 leaves can shorten the diameter by at
    most the two pendant hops at its endpoints (Table 3, last row)."""
    if math.isinf(d_orig) or math.isinf(d_comp):
        return BoundCheck("deg1-removal: D' >= D - 2", "deterministic",
                          d_orig - 2, d_comp, True)
    return _ge("deg1-removal: D' >= D - 2", "deterministic", d_comp, d_orig - 2.0)
