"""Theoretical bounds of Table 3 as executable predicates."""

from repro.theory import bounds
from repro.theory.bounds import BoundCheck

__all__ = ["bounds", "BoundCheck"]
