"""``python -m repro.faults`` — the chaos CLI.

Runs a named fault scenario (:mod:`repro.faults.scenarios`) against a
real store-backed parallel sweep and asserts the fault-tolerance
contract: the faulted run must finish *and* produce cells
value-identical to a clean run (wall-clock fields excluded, exactly the
comparison the test suite uses).

Examples::

    python -m repro.faults list
    python -m repro.faults run chaos-smoke --jobs 3 --seed 7
    python -m repro.faults run worker-kill --graph s-flx --report chaos.json

Exit status is 0 when the faulted sweep completed with identical values,
1 otherwise — CI's ``chaos-smoke`` job is exactly ``run chaos-smoke``
plus the report artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.faults.plan import clear_plan, install_plan, reset_fault_state
from repro.faults.scenarios import SCENARIOS, available_scenarios, build_scenario

SCHEMES = ["uniform(p=0.5)", "spanner(k=4)"]
ALGORITHMS = ["pr", "cc"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Chaos-test sweep execution: inject a deterministic "
        "fault scenario and assert the run still produces clean-identical "
        "results.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available scenarios")
    run = sub.add_parser("run", help="run one scenario and verify recovery")
    run.add_argument("scenario", choices=available_scenarios())
    run.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="scenario seed — moves *where* the faults land (default 0)",
    )
    run.add_argument(
        "--graph", default="s-flx", metavar="NAME",
        help="dataset to sweep (repro.graphs.datasets name, default s-flx)",
    )
    run.add_argument(
        "--jobs", type=int, default=3, metavar="N",
        help="worker processes for the sweep (default 3)",
    )
    run.add_argument(
        "--max-attempts", type=int, default=4, metavar="N",
        help="retry budget per task / store write (default 4)",
    )
    run.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task timeout (needed for 'hang' faults; default off)",
    )
    run.add_argument(
        "--report", metavar="PATH",
        help="write a JSON report (verdict, fault + retry accounting)",
    )
    return parser


def _comparable(table) -> list[tuple]:
    """The deterministic face of a sweep (drop wall-clock noise)."""
    return sorted(
        (c.scheme, c.algorithm, c.metric, c.value, c.compression_ratio, c.seed)
        for c in table
    )


def _sweep(graph, store_dir: Path, args) -> tuple[list[tuple], dict]:
    from repro.analytics.session import Session

    session = Session(
        graph,
        seed=0,
        store=str(store_dir),
        jobs=args.jobs,
        retry={
            "max_attempts": args.max_attempts,
            "backoff_base": 0.01,
            "task_timeout": args.task_timeout,
        },
    )
    # Default metric plans: each algorithm scores its natural metrics.
    table = session.grid(schemes=SCHEMES, algorithms=ALGORITHMS)
    return _comparable(table), session.last_grid_perf


def _run(args) -> int:
    from repro.graphs.datasets import load
    from repro.obs.metrics import snapshot

    graph = load(args.graph, seed=0)
    print(
        f"chaos run: scenario={args.scenario} seed={args.seed} "
        f"graph={args.graph} jobs={args.jobs}"
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        root = Path(tmp)
        reset_fault_state()
        clean, clean_perf = _sweep(graph, root / "clean-store", args)
        print(
            f"clean run: {len(clean)} cells in {clean_perf['wall_seconds']:.2f}s"
        )

        plan = build_scenario(
            args.scenario, seed=args.seed, token_dir=str(root / "tokens")
        )
        for spec in plan.faults:
            print(
                f"  fault: {spec.mode} at {spec.site} "
                f"(start={spec.start}, times={spec.times})"
            )
        install_plan(plan)
        try:
            faulted, faulted_perf = _sweep(graph, root / "faulted-store", args)
        finally:
            clear_plan()
            reset_fault_state()

    equal = clean == faulted
    print(
        f"faulted run: {len(faulted)} cells in "
        f"{faulted_perf['wall_seconds']:.2f}s — retries={faulted_perf['retries']} "
        f"pool_rebuilds={faulted_perf['pool_rebuilds']} "
        f"failed_cells={len(faulted_perf['failed_cells'])} "
        f"store_write_retries={faulted_perf['store_write_retries']}"
    )
    metrics = {
        name: value
        for name, value in snapshot().items()
        if name.startswith("repro.faults.") or name.startswith("repro.runner.")
    }
    if args.report:
        report = {
            "scenario": args.scenario,
            "seed": args.seed,
            "graph": args.graph,
            "jobs": args.jobs,
            "equal": equal,
            "cells": len(faulted),
            "plan": json.loads(plan.to_json()),
            "clean_perf": clean_perf,
            "faulted_perf": faulted_perf,
            "metrics": metrics,
        }
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report: {path}")
    if equal:
        print("VERDICT: PASS — faulted sweep is value-identical to clean run")
        return 0
    print("VERDICT: FAIL — faulted sweep diverged from the clean run")
    for row in sorted(set(clean) - set(faulted))[:10]:
        print(f"  missing/changed: {row}")
    for row in sorted(set(faulted) - set(clean))[:10]:
        print(f"  unexpected:      {row}")
    return 1


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        for name in available_scenarios():
            doc = (SCENARIOS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:16s} {doc}")
        return 0
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
