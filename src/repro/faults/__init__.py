"""Deterministic fault injection and chaos scenarios.

See :mod:`repro.faults.plan` for the injection machinery,
:mod:`repro.faults.scenarios` for the named chaos scenarios, and
``python -m repro.faults`` for the chaos CLI that runs a scenario
against a sweep and asserts clean-vs-faulted result equality.
"""

from repro.faults.plan import (
    ENV_VAR,
    MODES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_point,
    injected_faults,
    install_plan,
    reset_fault_state,
    site_calls,
)
from repro.faults.scenarios import SCENARIOS, available_scenarios, build_scenario

__all__ = [
    "ENV_VAR",
    "MODES",
    "SCENARIOS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "available_scenarios",
    "build_scenario",
    "clear_plan",
    "fault_point",
    "injected_faults",
    "install_plan",
    "reset_fault_state",
    "site_calls",
]
