"""Deterministic, process-global fault injection.

Long sweeps die in ways unit tests never exercise: a worker OOM-killed
mid-cell, a disk filling up during a store write, a power loss between
``write`` and ``rename``.  This module makes those failures *schedulable*
so the recovery paths around them can be tested for correctness — a
sweep that rides through injected faults must produce cells
value-identical to a clean run (the chaos CLI in
:mod:`repro.faults.__main__` asserts exactly that).

The model: production code declares **sites** by calling
:func:`fault_point("runner.worker_cell") <fault_point>` at the places
where real systems fail.  With no plan installed the call is a counter
bump short-circuited to ``None`` — the hot path costs one dict lookup.
A :class:`FaultPlan` maps sites to :class:`FaultSpec` schedules, each
with one of four modes:

``raise``
    raise :class:`InjectedFault` at the site (a transient error — the
    stand-in for flaky disks, OOM of a child allocation, network blips);
``hang``
    sleep ``delay`` seconds at the site (trips per-task timeouts);
``kill``
    ``SIGKILL`` the calling process (a worker crash — the parent sees
    ``BrokenProcessPool``);
``torn_write``
    returned to the caller instead of acted on; only file-writing sites
    (:func:`repro.utils.fileio.atomic_write`) honor it by truncating the
    payload mid-write and surfacing the torn file, simulating a power
    loss before fsync.

Determinism and scope: a spec fires on invocations ``start, start+1, …``
of its site, at most ``times`` times.  With a ``token_dir`` the budget is
shared **across processes** through exclusive-create token files — "kill
one worker, once, wherever it lands" — which is what lets a plan built
from a seed replay the same failure schedule run after run.  Plans
propagate to pool workers through the ``REPRO_FAULTS`` environment
variable (JSON), inherited by fork and spawn alike.

Every trigger bumps ``repro.faults.injected`` plus a per-mode counter in
the process-global registry (:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "ENV_VAR",
    "MODES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "fault_point",
    "injected_faults",
    "install_plan",
    "reset_fault_state",
    "site_calls",
]

#: Environment variable carrying the active plan's JSON to worker
#: processes (set by :func:`install_plan`, cleared by :func:`clear_plan`).
ENV_VAR = "REPRO_FAULTS"

MODES = ("raise", "hang", "kill", "torn_write")


class InjectedFault(RuntimeError):
    """A failure raised by fault injection (never by real breakage).

    Recovery code treats it like any other exception — that is the point
    — but tests and failure manifests can tell injected faults from
    genuine bugs by type/name.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure: which site, how, and when.

    ``start`` skips the first ``start`` invocations of the site,
    ``times`` caps how often the spec fires.  Both are measured across
    *all* processes when the plan has a ``token_dir`` (each invocation
    claims a globally unique index; each firing a token), per process
    otherwise.
    """

    site: str
    mode: str = "raise"
    times: int = 1
    start: int = 0
    delay: float = 30.0
    message: str = ""

    def __post_init__(self) -> None:
        if not self.site or not isinstance(self.site, str):
            raise ValueError(f"fault site must be a non-empty string, got {self.site!r}")
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; known: {MODES}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "mode": self.mode,
            "times": self.times,
            "start": self.start,
            "delay": self.delay,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        known = {"site", "mode", "times", "start", "delay", "message"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fault fields {unknown}; known: {sorted(known)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault specs plus the state they share.

    ``seed`` records how the schedule was derived (scenario builders fold
    it into ``start`` offsets); ``token_dir`` — a directory, created on
    first claim — makes ``times`` budgets global across processes.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0
    token_dir: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def sites(self) -> list[str]:
        return sorted({spec.site for spec in self.faults})

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "token_dir": self.token_dir,
                "faults": [spec.to_dict() for spec in self.faults],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            faults=tuple(FaultSpec.from_dict(d) for d in data.get("faults", ())),
            seed=data.get("seed", 0),
            token_dir=data.get("token_dir"),
        )


# ---------------------------------------------------------------------- #
# process-global state
# ---------------------------------------------------------------------- #

_LOCK = threading.Lock()
_PLAN: FaultPlan | None = None
#: Per-site invocation counts in this process (also useful to tests as
#: "did the site actually run" evidence; see :func:`site_calls`).
_CALLS: dict[str, int] = {}
#: Per-spec trigger counts in this process (tokenless budget).
_FIRED: dict[int, int] = {}
#: Per-site scan position for global (token-dir) index claims: indices
#: below this are known-taken, so claims resume scanning from here.
_SCAN: dict[str, int] = {}
#: Cache of the env-var plan keyed by the raw JSON, so workers parse once.
_ENV_CACHE: tuple[str, FaultPlan] | None = None


def install_plan(plan: FaultPlan, *, propagate: bool = True) -> FaultPlan:
    """Make ``plan`` the active plan for this process (and, with
    ``propagate``, for child processes via the environment)."""
    global _PLAN
    with _LOCK:
        _PLAN = plan
        _CALLS.clear()
        _FIRED.clear()
        _SCAN.clear()
    if propagate:
        os.environ[ENV_VAR] = plan.to_json()
    return plan


def clear_plan() -> None:
    """Remove the active plan (and the environment propagation)."""
    global _PLAN, _ENV_CACHE
    with _LOCK:
        _PLAN = None
        _CALLS.clear()
        _FIRED.clear()
        _SCAN.clear()
        _ENV_CACHE = None
    os.environ.pop(ENV_VAR, None)


def reset_fault_state() -> None:
    """Zero invocation/trigger counters without touching the plan."""
    with _LOCK:
        _CALLS.clear()
        _FIRED.clear()
        _SCAN.clear()


def active_plan() -> FaultPlan | None:
    """The plan this process would inject from (installed or inherited)."""
    return _PLAN if _PLAN is not None else _env_plan()


def site_calls(site: str) -> int:
    """How many times ``site`` was reached in this process (plan active)."""
    with _LOCK:
        return _CALLS.get(site, 0)


@contextmanager
def injected_faults(plan: FaultPlan, *, propagate: bool = True):
    """Scope ``plan`` to a ``with`` block (tests; always clears on exit)."""
    install_plan(plan, propagate=propagate)
    try:
        yield plan
    finally:
        clear_plan()


def _env_plan() -> FaultPlan | None:
    """The plan inherited from :data:`ENV_VAR`, parsed once per value."""
    global _ENV_CACHE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    cached = _ENV_CACHE
    if cached is not None and cached[0] == raw:
        return cached[1]
    try:
        plan = FaultPlan.from_json(raw)
    except (ValueError, TypeError):
        # A mangled env var must never take the host process down.
        return None
    _ENV_CACHE = (raw, plan)
    return plan


# ---------------------------------------------------------------------- #
# the injection point
# ---------------------------------------------------------------------- #


def _claim(plan: FaultPlan, index: int, spec: FaultSpec) -> bool:
    """Consume one firing of ``spec`` (spec ``index`` in ``plan``).

    With a token directory the budget is shared across every process
    running this plan: firing k (of ``times``) is an exclusive-create of
    ``token-<index>-<k>``, so exactly one process wins each k.  Without
    one, the budget is a per-process counter.
    """
    if plan.token_dir is None:
        with _LOCK:
            fired = _FIRED.get(index, 0)
            if fired >= spec.times:
                return False
            _FIRED[index] = fired + 1
        return True
    os.makedirs(plan.token_dir, exist_ok=True)
    for k in range(spec.times):
        token = os.path.join(plan.token_dir, f"token-{index}-{k}")
        try:
            fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.write(fd, f"pid={os.getpid()} site={spec.site}\n".encode())
        os.close(fd)
        return True
    return False


def _site_index(plan: FaultPlan, site: str) -> int:
    """This invocation's index for ``site``.

    With a token directory the index is claimed globally — exactly one
    process owns each n, so ``start`` offsets select the n-th invocation
    *across the whole run* regardless of which worker reaches it (crucial
    for worker-site faults: per-process counts would never reach the
    offset once tasks shard over a pool).  Tokenless plans count per
    process.
    """
    with _LOCK:
        local = _CALLS.get(site, 0)
        _CALLS[site] = local + 1
        scan = _SCAN.get(site, 0)
    if plan.token_dir is None:
        return local
    os.makedirs(plan.token_dir, exist_ok=True)
    n = scan
    while True:
        token = os.path.join(plan.token_dir, f"call-{site}-{n}")
        try:
            fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            n += 1
            continue
        os.write(fd, f"pid={os.getpid()}\n".encode())
        os.close(fd)
        with _LOCK:
            _SCAN[site] = max(_SCAN.get(site, 0), n + 1)
        return n


def fault_point(site: str, **context) -> FaultSpec | None:
    """Declare an injection site; act out the plan's fault, if any.

    Returns ``None`` when nothing fires.  ``raise`` mode raises
    :class:`InjectedFault`, ``hang`` sleeps then returns the spec,
    ``kill`` never returns; ``torn_write`` returns the spec so the
    calling writer can perform the tear itself (non-file sites may
    ignore it).  ``context`` is folded into the raise message for
    failure-manifest readability.
    """
    plan = active_plan()
    if plan is None:
        return None
    index = _site_index(plan, site)
    fired: FaultSpec | None = None
    for i, spec in enumerate(plan.faults):
        if spec.site != site or index < spec.start:
            continue
        if _claim(plan, i, spec):
            fired = spec
            break
    if fired is None:
        return None

    from repro.obs.metrics import counter

    counter("repro.faults.injected").inc()
    counter(f"repro.faults.{fired.mode}").inc()

    detail = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
    label = fired.message or (
        f"injected {fired.mode} at {site} (invocation {index}"
        + (f"; {detail}" if detail else "")
        + ")"
    )
    if fired.mode == "raise":
        raise InjectedFault(label)
    if fired.mode == "hang":
        time.sleep(fired.delay)
        return fired
    if fired.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    return fired
