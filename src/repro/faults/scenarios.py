"""Named chaos scenarios: seed-parameterized fault plans.

Each scenario is a function ``(seed, token_dir) -> FaultPlan`` targeting
the injection sites wired through the stack:

==========================  ==================================================
``runner.worker_cell``      inside a pool worker, before it computes a cell
                            (``kill`` here = an OOM-killed worker)
``runner.compute_cell``     inside cell computation, pooled *or* in-process
``store.put_cells``         the parent-side artifact-store record write
``store.get_cells``         the artifact-store record read
``fileio.atomic_write``     the atomic temp-file writer (``torn_write`` here
                            = power loss surfacing a half-written file)
``service.run_job``         a service worker thread starting a job
``stream.apply``            a streaming generation advance
==========================  ==================================================

The seed perturbs *when* a fault lands (the ``start`` offset), not
whether it lands, so one scenario name sweeps distinct-but-reproducible
failure points across seeds.  All scenarios keep budgets global via the
token directory — "kill one worker" means one worker per run, not one
per pool rebuild, which is what guarantees the run eventually completes.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan, FaultSpec

__all__ = ["SCENARIOS", "available_scenarios", "build_scenario"]


def _worker_kill(rng: random.Random) -> tuple[FaultSpec, ...]:
    """SIGKILL one pool worker mid-sweep (BrokenProcessPool recovery)."""
    return (
        FaultSpec("runner.worker_cell", mode="kill", times=1, start=rng.randrange(3)),
    )


def _torn_write(rng: random.Random) -> tuple[FaultSpec, ...]:
    """Tear one store write mid-file (power-loss torn-file recovery)."""
    return (
        FaultSpec(
            "fileio.atomic_write", mode="torn_write", times=1, start=rng.randrange(3)
        ),
    )


def _store_flaky(rng: random.Random) -> tuple[FaultSpec, ...]:
    """Two transient store-write errors (flaky-disk retry path)."""
    return (
        FaultSpec("store.put_cells", mode="raise", times=2, start=rng.randrange(3)),
    )


def _compute_flaky(rng: random.Random) -> tuple[FaultSpec, ...]:
    """Two transient cell-compute errors (task retry/backoff path)."""
    return (
        FaultSpec("runner.compute_cell", mode="raise", times=2, start=rng.randrange(3)),
    )


def _job_flaky(rng: random.Random) -> tuple[FaultSpec, ...]:
    """One transient service-job error (queue retry path)."""
    return (FaultSpec("service.run_job", mode="raise", times=1, start=rng.randrange(2)),)


def _chaos_smoke(rng: random.Random) -> tuple[FaultSpec, ...]:
    """The CI gauntlet: worker kill + torn write + transient store error."""
    return (
        FaultSpec("runner.worker_cell", mode="kill", times=1, start=rng.randrange(3)),
        FaultSpec("fileio.atomic_write", mode="torn_write", times=1, start=rng.randrange(3)),
        FaultSpec("store.put_cells", mode="raise", times=1, start=rng.randrange(3)),
    )


SCENARIOS = {
    "worker-kill": _worker_kill,
    "torn-write": _torn_write,
    "store-flaky": _store_flaky,
    "compute-flaky": _compute_flaky,
    "job-flaky": _job_flaky,
    "chaos-smoke": _chaos_smoke,
}


def available_scenarios() -> list[str]:
    return sorted(SCENARIOS)


def build_scenario(name: str, *, seed: int = 0, token_dir: str | None = None) -> FaultPlan:
    """The named scenario's plan for ``seed`` (deterministic per seed)."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from None
    rng = random.Random(seed)
    return FaultPlan(faults=builder(rng), seed=seed, token_dir=token_dir)
