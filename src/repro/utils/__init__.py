"""Shared utilities: deterministic RNG plumbing, timing, chunking, validation."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.chunking import chunk_ranges, balanced_chunks
from repro.utils.validation import (
    check_probability,
    check_positive,
    check_nonnegative,
    check_in_range,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Timer",
    "chunk_ranges",
    "balanced_chunks",
    "check_probability",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
]
