"""Shared name/alias bookkeeping for the library's open registries.

The scheme (:mod:`repro.compress.registry`), algorithm
(:mod:`repro.algorithms.registry`), and metric
(:mod:`repro.metrics.registry`) registries all follow the same contract:
case-insensitive canonical names plus aliases, collision rejection at
registration time, alias-aware resolution, and unregistration that also
drops the aliases.  :class:`AliasNamespace` is that contract in one
place, so the collision semantics cannot drift between the three axes.

Entries are opaque to the namespace except for an optional ``aliases``
attribute (consulted on unregister).
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = ["AliasNamespace"]


class AliasNamespace:
    """Canonical-name → entry store with alias resolution.

    Parameters
    ----------
    kind:
        The noun used in error messages (``"scheme"``, ``"algorithm"``,
        ``"metric"``).
    describe:
        Renders an existing entry in duplicate-name errors (e.g. its
        factory's qualname).
    same:
        Equivalence test making re-registration of the *same* underlying
        object idempotent instead of a collision (module reloads).
    """

    def __init__(
        self,
        kind: str,
        *,
        describe: Callable = repr,
        same: Callable | None = None,
    ):
        self.kind = kind
        self._describe = describe
        self._same = same
        self._entries: dict[str, object] = {}
        self._aliases: dict[str, str] = {}  # lowercase alias (incl. canonical) -> canonical

    # -- registration ------------------------------------------------------ #

    def register(self, name: str, aliases: Iterable[str], entry) -> str:
        """Insert ``entry`` under ``name`` + ``aliases``; returns the key.

        Rejects names already owned by another entry, names shadowing an
        existing alias, and aliases owned by another canonical name.
        """
        key = name.lower()
        existing = self._entries.get(key)
        if existing is not None and not (self._same and self._same(existing, entry)):
            raise ValueError(
                f"{self.kind} name {name!r} already registered to "
                f"{self._describe(existing)}"
            )
        owner = self._aliases.get(key)
        if owner is not None and owner != key:
            raise ValueError(
                f"{self.kind} name {name!r} already registered as an alias "
                f"of {owner!r}"
            )
        lowered = tuple(a.lower() for a in aliases)
        for alias in lowered:
            owner = self._aliases.get(alias)
            if owner is not None and owner != key:
                raise ValueError(
                    f"alias {alias!r} already registered to {self.kind} {owner!r}"
                )
        self._entries[key] = entry
        self._aliases[key] = key
        for alias in lowered:
            self._aliases[alias] = key
        return key

    def unregister(self, name: str):
        """Remove an entry and its aliases; returns the entry."""
        key = self.resolve(name)
        if key is None:
            raise ValueError(f"unknown {self.kind} {name!r}")
        entry = self._entries.pop(key)
        for alias in (key, *getattr(entry, "aliases", ())):
            self._aliases.pop(alias, None)
        return entry

    # -- lookup -------------------------------------------------------------#

    def resolve(self, name: str) -> str | None:
        """Canonical name for ``name`` (alias-aware), or None if unknown."""
        return self._aliases.get(name.lower())

    def get_known(self, name: str):
        """Entry for a resolvable name; raises listing the known names."""
        key = self.resolve(name)
        if key is None:
            raise ValueError(
                f"unknown {self.kind} {name.lower()!r}; "
                f"known: {self.known_names()}"
            )
        return self._entries[key]

    def entry_of(self, canonical: str):
        """Entry by canonical key (no alias resolution, no error text)."""
        return self._entries[canonical]

    def items(self) -> dict:
        """Canonical name -> entry, sorted."""
        return dict(sorted(self._entries.items()))

    def known_names(self) -> list[str]:
        """Every resolvable name (canonical + aliases), sorted."""
        return sorted(self._aliases)

    def __len__(self) -> int:
        return len(self._aliases)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._aliases
