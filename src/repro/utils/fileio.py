"""Atomic, durable file writes shared by every on-disk artifact producer.

The artifact store, the graph snapshotter, and the service job ledger
all promise that a reader never observes a half-written file: content
goes to a temp file in the target directory (same filesystem, so the
final rename cannot cross a device boundary) and is moved into place
with ``os.replace``.  A crash mid-write leaves either the previous file
or an orphaned ``*.tmp`` that the next write ignores.

Durability goes beyond the rename: the temp file is **fsynced before**
``os.replace`` and the parent directory is **fsynced after**, so a power
loss cannot surface an empty (or stale-length) renamed file — without
the first fsync the rename can land while the data blocks are still in
the page cache; without the second the rename itself can be lost.

``fileio.atomic_write`` is also a fault-injection site
(:func:`repro.faults.fault_point`): a scheduled ``torn_write`` fault
truncates the payload mid-file, makes the torn file *visible*, and then
raises — exactly the failure the fsync discipline exists to prevent —
so corruption-tolerant readers can be tested against real torn files.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable

__all__ = ["atomic_write"]


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename) to disk; best-effort on
    filesystems/platforms that cannot open directories."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path, write: Callable, *, durable: bool = True) -> Path:
    """Run ``write(fh)`` against a temp file, then rename onto ``path``.

    ``fh`` is a binary-mode file object.  Parent directories are created.
    On any failure the temp file is removed and the target is untouched.
    ``durable=True`` (the default) fsyncs the temp file before the rename
    and the parent directory after it; pass ``False`` only for scratch
    output where a post-crash empty file is acceptable.
    """
    from repro.faults.plan import InjectedFault, fault_point

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            write(fh)
            fh.flush()
            fault = fault_point("fileio.atomic_write", path=str(path))
            if fault is not None and fault.mode == "torn_write":
                # Simulate a power loss with no fsync: half the payload
                # reaches disk, yet the rename becomes visible.  The torn
                # file replaces the target, then the "crash" surfaces as
                # an InjectedFault for the caller's retry path.
                size = fh.tell()
                fh.truncate(max(1, size // 2))
                fh.close()
                os.replace(tmp, path)
                raise InjectedFault(f"torn write surfaced at {path}")
            if durable:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if durable:
            _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
