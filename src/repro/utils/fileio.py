"""Atomic file writes shared by every on-disk artifact producer.

The artifact store and the graph snapshotter both promise that a reader
never observes a half-written file: content goes to a temp file in the
target directory (same filesystem, so the final rename cannot cross a
device boundary) and is moved into place with ``os.replace``.  A crash
mid-write leaves either the previous file or an orphaned ``*.tmp`` that
the next write ignores.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable

__all__ = ["atomic_write"]


def atomic_write(path, write: Callable) -> Path:
    """Run ``write(fh)`` against a temp file, then rename onto ``path``.

    ``fh`` is a binary-mode file object.  Parent directories are created.
    On any failure the temp file is removed and the target is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            write(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
