"""Work partitioning helpers for the kernel execution engine.

The engine runs one kernel instance per graph element (vertex, edge,
triangle, subgraph).  Elements are split into contiguous chunks so each
worker processes a dense range — contiguous access patterns are much faster
on CSR arrays than scattered ones (cache effects; see the optimization
guide), and contiguity also lets the engine hand each chunk an independent
RNG stream.
"""

from __future__ import annotations

import numpy as np


def chunk_ranges(total: int, num_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``num_chunks`` contiguous ranges.

    Sizes differ by at most one element.  Empty ranges are never returned.

    >>> chunk_ranges(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if num_chunks <= 0:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    num_chunks = min(num_chunks, total) or (1 if total == 0 else num_chunks)
    if total == 0:
        return []
    base, extra = divmod(total, num_chunks)
    out = []
    start = 0
    for i in range(num_chunks):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def balanced_chunks(weights: np.ndarray, num_chunks: int) -> list[tuple[int, int]]:
    """Split indices into contiguous ranges with approximately equal weight.

    Used to balance edge work across chunks when vertex degrees are skewed
    (power-law graphs put most of the edges on few vertices).  Greedy prefix
    splitting against the ideal per-chunk weight.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if num_chunks <= 0:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    n = len(weights)
    if n == 0:
        return []
    cumulative = np.cumsum(weights)
    total = cumulative[-1]
    if total <= 0:
        return chunk_ranges(n, num_chunks)
    boundaries = [0]
    for i in range(1, num_chunks):
        target = total * i / num_chunks
        idx = int(np.searchsorted(cumulative, target))
        boundaries.append(max(boundaries[-1], min(idx, n)))
    boundaries.append(n)
    return [
        (boundaries[i], boundaries[i + 1])
        for i in range(len(boundaries) - 1)
        if boundaries[i + 1] > boundaries[i]
    ]
