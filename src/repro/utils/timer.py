"""Lightweight wall-clock timing used by the analytics subsystem.

The paper reports *relative* runtime differences between algorithms running
on compressed and original graphs (Fig. 5) and relative compression-routine
costs (§7.4).  ``Timer`` keeps per-label samples so harness code can compute
means and non-parametric confidence intervals the way the paper's methodology
section prescribes (first 1% treated as warmup, arithmetic means).
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from contextlib import contextmanager

__all__ = ["Timer", "Stopwatch", "stopwatch", "timed_call"]


class Stopwatch:
    """Elapsed wall-clock seconds of one measured region.

    ``seconds`` is 0.0 until the :func:`stopwatch` block exits, then holds
    the region's duration.  Shared by the evaluation session and the sweep
    runner so every timing in the codebase goes through one clock.
    """

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = time.perf_counter()

    def stop(self) -> float:
        self.seconds = time.perf_counter() - self._start
        return self.seconds


@contextmanager
def stopwatch():
    """Context manager measuring one region: ``with stopwatch() as sw: …``.

    ``sw.seconds`` holds the elapsed wall time after the block (including
    when the block raises, so failure paths can still be accounted).
    """
    sw = Stopwatch()
    try:
        yield sw
    finally:
        sw.stop()


def timed_call(fn, *args, **kwargs):
    """``(result, seconds)`` of one call — the one-shot form of
    :func:`stopwatch`, used wherever a single (output, duration) pair is
    recorded (session baselines, grid cells, runner workers)."""
    with stopwatch() as sw:
        out = fn(*args, **kwargs)
    return out, sw.seconds


class Timer:
    """Accumulates named wall-clock samples.

    Example
    -------
    >>> t = Timer()
    >>> with t.measure("pagerank"):
    ...     _ = sum(range(1000))
    >>> t.mean("pagerank") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = defaultdict(list)

    @contextmanager
    def measure(self, label: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self._samples[label].append(time.perf_counter() - start)

    def add_sample(self, label: str, seconds: float) -> None:
        self._samples[label].append(float(seconds))

    def samples(self, label: str) -> list[float]:
        return list(self._samples[label])

    def mean(self, label: str, *, warmup_fraction: float = 0.0) -> float:
        """Arithmetic mean, optionally discarding a leading warmup fraction.

        The paper treats the first 1% of performance data as warmup; pass
        ``warmup_fraction=0.01`` to follow that methodology.
        """
        data = self._samples[label]
        if not data:
            raise KeyError(f"no samples recorded for {label!r}")
        skip = math.floor(len(data) * warmup_fraction)
        kept = data[skip:] or data
        return sum(kept) / len(kept)

    def total(self, label: str) -> float:
        return sum(self._samples[label])

    def labels(self) -> list[str]:
        return sorted(self._samples)

    def confidence_interval(self, label: str, *, level: float = 0.95):
        """Non-parametric (order-statistic) CI on the median.

        Mirrors the paper's "95% non-parametric confidence intervals".
        Returns ``(low, high)``; degenerates to (min, max) for tiny samples.
        """
        data = sorted(self._samples[label])
        n = len(data)
        if n == 0:
            raise KeyError(f"no samples recorded for {label!r}")
        if n < 6:
            return data[0], data[-1]
        # Normal approximation to binomial order statistics around the median.
        z = 1.959963984540054 if abs(level - 0.95) < 1e-9 else _z_for(level)
        half = z * math.sqrt(n) / 2.0
        lo = max(0, math.floor(n / 2 - half))
        hi = min(n - 1, math.ceil(n / 2 + half))
        return data[lo], data[hi]


def _z_for(level: float) -> float:
    """Inverse normal CDF for the two-sided confidence ``level``."""
    from scipy.stats import norm

    return float(norm.ppf(0.5 + level / 2.0))
