"""Lightweight wall-clock timing used by the analytics subsystem.

The paper reports *relative* runtime differences between algorithms running
on compressed and original graphs (Fig. 5) and relative compression-routine
costs (§7.4).  ``Timer`` keeps per-label samples so harness code can compute
means and non-parametric confidence intervals the way the paper's methodology
section prescribes (first 1% treated as warmup, arithmetic means).
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from contextlib import contextmanager

__all__ = ["Timer", "Stopwatch", "stopwatch", "timed_call", "inverse_normal_cdf"]


class Stopwatch:
    """Elapsed wall-clock seconds of one measured region.

    ``seconds`` is 0.0 until the :func:`stopwatch` block exits, then holds
    the region's duration.  Shared by the evaluation session and the sweep
    runner so every timing in the codebase goes through one clock.
    """

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = time.perf_counter()

    def stop(self) -> float:
        self.seconds = time.perf_counter() - self._start
        return self.seconds


@contextmanager
def stopwatch():
    """Context manager measuring one region: ``with stopwatch() as sw: …``.

    ``sw.seconds`` holds the elapsed wall time after the block (including
    when the block raises, so failure paths can still be accounted).
    """
    sw = Stopwatch()
    try:
        yield sw
    finally:
        sw.stop()


def timed_call(fn, *args, **kwargs):
    """``(result, seconds)`` of one call — the one-shot form of
    :func:`stopwatch`, used wherever a single (output, duration) pair is
    recorded (session baselines, grid cells, runner workers)."""
    with stopwatch() as sw:
        out = fn(*args, **kwargs)
    return out, sw.seconds


class Timer:
    """Accumulates named wall-clock samples.

    Example
    -------
    >>> t = Timer()
    >>> with t.measure("pagerank"):
    ...     _ = sum(range(1000))
    >>> t.mean("pagerank") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = defaultdict(list)

    @contextmanager
    def measure(self, label: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self._samples[label].append(time.perf_counter() - start)

    def add_sample(self, label: str, seconds: float) -> None:
        self._samples[label].append(float(seconds))

    def samples(self, label: str) -> list[float]:
        return list(self._samples[label])

    def mean(self, label: str, *, warmup_fraction: float = 0.0) -> float:
        """Arithmetic mean, optionally discarding a leading warmup fraction.

        The paper treats the first 1% of performance data as warmup; pass
        ``warmup_fraction=0.01`` to follow that methodology.
        """
        data = self._samples[label]
        if not data:
            raise KeyError(f"no samples recorded for {label!r}")
        skip = math.floor(len(data) * warmup_fraction)
        kept = data[skip:] or data
        return sum(kept) / len(kept)

    def total(self, label: str) -> float:
        return sum(self._samples[label])

    def labels(self) -> list[str]:
        return sorted(self._samples)

    def confidence_interval(self, label: str, *, level: float = 0.95):
        """Non-parametric (order-statistic) CI on the median.

        Mirrors the paper's "95% non-parametric confidence intervals".
        Returns ``(low, high)``; degenerates to (min, max) for tiny samples.
        """
        data = sorted(self._samples[label])
        n = len(data)
        if n == 0:
            raise KeyError(f"no samples recorded for {label!r}")
        if n < 6:
            return data[0], data[-1]
        # Normal approximation to binomial order statistics around the median.
        z = 1.959963984540054 if abs(level - 0.95) < 1e-9 else _z_for(level)
        half = z * math.sqrt(n) / 2.0
        lo = max(0, math.floor(n / 2 - half))
        hi = min(n - 1, math.ceil(n / 2 + half))
        return data[lo], data[hi]


def _z_for(level: float) -> float:
    """Inverse normal CDF for the two-sided confidence ``level``."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1), got {level!r}")
    return inverse_normal_cdf(0.5 + level / 2.0)


# Acklam's rational-approximation coefficients (central region a/b,
# tails c/d); relative error < 1.15e-9 before refinement.
_ACKLAM_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
#: Central/tail split point of Acklam's approximation.
_ACKLAM_SPLIT = 0.02425


def inverse_normal_cdf(p: float) -> float:
    """The standard normal quantile function Φ⁻¹(p), stdlib only.

    Acklam's rational approximation followed by one Halley step through
    ``math.erfc``, which lands within a few ulp of ``scipy.stats.
    norm.ppf`` — the dependency this replaces (the sole scipy import in
    the codebase rode on this one function).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile argument must be in (0, 1), got {p!r}")
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    if p < _ACKLAM_SPLIT:
        q = math.sqrt(-2.0 * math.log(p))
        x = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= 1.0 - _ACKLAM_SPLIT:
        q = p - 0.5
        r = q * q
        x = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    # One Halley refinement: error of the approximation against the exact
    # CDF (via erfc), corrected with second-order convergence.
    err = 0.5 * math.erfc(-x / math.sqrt(2.0)) - p
    u = err * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)
