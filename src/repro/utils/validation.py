"""Argument validation helpers shared across the public API."""

from __future__ import annotations

import numpy as np


def check_probability(value: float, name: str = "p") -> float:
    """Validate that ``value`` lies in [0, 1]; returns it as ``float``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value, name: str = "value"):
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_nonnegative(value, name: str = "value"):
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(value, low, high, name: str = "value"):
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_integer(value, name: str = "value"):
    """Validate that ``value`` is a true integer (bool is rejected)."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    return value
