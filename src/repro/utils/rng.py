"""Deterministic random-number plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, or a :class:`numpy.random.Generator`.  All
randomness flows through :func:`as_generator` so that experiments are
reproducible bit-for-bit.  Parallel code paths (the kernel engine, the
simulated distributed ranks) derive independent child streams with
:func:`spawn_generators`, which uses NumPy's ``SeedSequence.spawn`` to obtain
statistically independent streams regardless of worker count.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so streams can be shared
        deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used by the kernel execution engine so every chunk/rank has its own
    stream: results are then independent of the number of workers used to
    execute the kernels, which keeps parallel compression deterministic.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own stream.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(count)]
