"""Content fingerprints for graphs.

The artifact store keys every sweep cell by the *content* of the input
graph, not its name or provenance: two sessions that build the same graph
— from an edge list, a generator, or a binary snapshot — must hit the
same cached cells.  :func:`graph_fingerprint` hashes the canonical edge
arrays (the graph's identity under :class:`~repro.graphs.csr.CSRGraph`'s
model) with SHA-256 straight from the array buffers, so fingerprinting a
million-edge graph costs one pass over ~16 MB, no Python loops.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro.graphs.analysis import analysis_cache, cached_analysis
from repro.graphs.csr import CSRGraph

__all__ = ["graph_fingerprint"]

#: Bumps when the fingerprint formula changes, so stores never mix keys
#: computed under different formulas.
_FINGERPRINT_TAG = b"repro-csr-fp-v1"


@cached_analysis("fingerprint")
def _compute_fingerprint(g: CSRGraph) -> str:
    h = hashlib.sha256()
    h.update(_FINGERPRINT_TAG)
    h.update(struct.pack("<qq?", g.n, g.num_edges, g.directed))
    h.update(np.ascontiguousarray(g.edge_src, dtype=np.int64))
    h.update(np.ascontiguousarray(g.edge_dst, dtype=np.int64))
    if g.edge_weights is not None:
        h.update(b"weighted")
        h.update(np.ascontiguousarray(g.edge_weights, dtype=np.float64))
    return h.hexdigest()


def graph_fingerprint(g: CSRGraph) -> str:
    """Hex SHA-256 identifying ``g`` by content.

    Covers the vertex count, directedness, the canonical edge arrays, and
    the weights (including their absence — an unweighted graph and its
    all-ones weighted twin fingerprint differently).  The derived CSR
    adjacency is *not* hashed: it is a function of the canonical arrays.

    Memoized per graph object through the analysis cache, and the graph
    is registered as a live carrier of its fingerprint so snapshot
    reloads of the same content can adopt its cached analyses
    (:meth:`repro.graphs.analysis.AnalysisCache.adopt`).
    """
    fp = _compute_fingerprint(g)
    analysis_cache().link_fingerprint(g, fp)
    return fp
