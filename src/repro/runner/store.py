"""Content-addressed on-disk artifact store for sweep cells.

The unit of storage is one **grid cell group**: everything produced by
running one algorithm on one ``(graph, scheme, seed)`` compression and
scoring it with one metric list.  The key is the content of those inputs —

- the graph **fingerprint** (:func:`repro.runner.fingerprint.
  graph_fingerprint` — content, not filename),
- the canonical :class:`~repro.compress.spec.SchemeSpec` JSON,
- the compression **seed**,
- the canonical :class:`~repro.algorithms.spec.AlgorithmSpec` JSON,
- the resolved metric names

— hashed to a SHA-256 digest that names the record file.  Because PRs 1–2
made scheme and algorithm specs canonically serializable (aliases
resolved, parameters type-preserved, equal configs equal strings), two
spellings of the same cell always share one record.

Durability discipline:

- **atomic writes** — records are written to a temp file in the target
  directory and ``os.replace``d into place, so a crash mid-write leaves
  either the old record or none;
- **corruption-tolerant reads** — a truncated/garbled record (e.g. a
  crash while an older non-atomic writer ran, or disk damage) is a cache
  *miss*, never an exception; the next ``put`` overwrites it;
- **versioned schema** — every record embeds ``schema_version``; records
  written under a different version are treated as misses, so upgrading
  the cell format safely invalidates stale caches in place.

Payloads are JSON (`cells` + perf counters); bulky numeric artifacts ride
in an optional ``.npz`` sidecar keyed by the same digest.  Graph
snapshots (:mod:`repro.graphs.snapshot`) live under ``graphs/`` keyed by
fingerprint, which is how parallel workers reload the input graph without
re-parsing edge lists.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.algorithms.spec import AlgorithmSpec
from repro.compress.spec import SchemeSpec
from repro.graphs.csr import CSRGraph
from repro.graphs.snapshot import (
    EXPLODED_SNAPSHOT_VERSION,
    HEADER_NAME,
    SNAPSHOT_VERSION,
    SnapshotError,
    load_snapshot,
    save_snapshot,
)
from repro.utils.fileio import atomic_write

__all__ = ["SCHEMA_VERSION", "ArtifactStore", "CellKey", "StoreStats"]

#: Version of the cell-record layout; bump to invalidate existing stores.
SCHEMA_VERSION = 1


def _canonical_json(value) -> str:
    """Deterministic JSON — the store's hashing/equality normal form."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _scheme_json(scheme) -> str:
    """Canonical SchemeSpec JSON of any scheme surface."""
    if isinstance(scheme, SchemeSpec):
        spec = scheme
    elif isinstance(scheme, str):
        spec = SchemeSpec.parse(scheme)
    elif hasattr(scheme, "spec"):
        spec = scheme.spec()
    else:
        raise TypeError(f"cannot key scheme surface {scheme!r}")
    return _canonical_json(spec.to_dict())


def _canonical_metrics(metrics) -> tuple[str, ...]:
    """Sorted canonical metric names — the key's order-free normal form.

    ``["kl", "l2"]`` and ``["l2", "kl"]`` (and alias spellings of either)
    request the same computation, so they must resolve to the same cell
    instead of recomputing; names unknown to the metric registry pass
    through verbatim (the store also keys third-party payloads).
    """
    from repro.metrics.registry import resolve_metric

    names = set()
    for metric in metrics:
        try:
            names.add(resolve_metric(metric).name)
        except ValueError:
            names.add(str(metric))
    return tuple(sorted(names))


def _algorithm_json(algorithm) -> str:
    """Canonical AlgorithmSpec JSON of a declarative algorithm surface."""
    if isinstance(algorithm, AlgorithmSpec):
        spec = algorithm
    elif isinstance(algorithm, str):
        spec = AlgorithmSpec.parse(algorithm)
    elif hasattr(algorithm, "spec") and isinstance(algorithm.spec, AlgorithmSpec):
        spec = algorithm.spec
    else:
        raise TypeError(
            f"cannot key algorithm surface {algorithm!r}; the store needs "
            "declarative (registry) algorithms, not bare callables"
        )
    return _canonical_json(spec.to_dict())


@dataclass(frozen=True)
class CellKey:
    """The content identity of one stored cell group."""

    graph: str
    scheme: str
    seed: object
    algorithm: str
    metrics: tuple[str, ...] = ()

    @property
    def digest(self) -> str:
        """Hex SHA-256 of the canonical key JSON; names the record file."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode()
        ).hexdigest()

    def to_dict(self) -> dict:
        return {
            "graph": self.graph,
            "scheme": self.scheme,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "metrics": list(self.metrics),
        }


@dataclass
class StoreStats:
    """Observable cache behavior of one :class:`ArtifactStore` instance.

    ``hits``/``misses`` count :meth:`ArtifactStore.get_cells` outcomes;
    ``corrupt`` counts reads that found an unreadable record (a subset of
    misses), ``invalidated`` reads rejected by schema version (also
    misses); ``writes`` counts stored records.

    Counter updates are serialized through a lock: the compression
    service shares one store across worker threads, and bare ``+= 1``
    increments would drop counts under concurrent submission.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    invalidated: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def add(self, **deltas: int) -> None:
        """Atomically bump the named counters (``stats.add(misses=1)``).

        Each bump also feeds the process-global registry under
        ``repro.store.<name>`` — the instance stays the per-store view,
        the registry the process rollup ``GET /metrics`` exposes.
        """
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)
        from repro.obs.metrics import counter

        for name, delta in deltas.items():
            if delta:
                counter(f"repro.store.{name}").inc(delta)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "corrupt": self.corrupt,
                "invalidated": self.invalidated,
            }


class ArtifactStore:
    """A persistent, content-addressed store of sweep artifacts.

    Layout under ``root`` (created on first write)::

        cells/<d0d1>/<digest>.json   one record per cell group
        arrays/<d0d1>/<digest>.npz   optional numeric sidecars
        graphs/<fingerprint>.npz     binary CSR snapshots

    The two-hex-digit shard directories keep any single directory small
    for large sweeps.  All methods are safe against concurrent writers of
    the *same* key (last atomic replace wins; both wrote equal content).
    """

    SCHEMA_VERSION = SCHEMA_VERSION

    def __init__(self, root, *, schema_version: int | None = None):
        self.root = Path(root)
        self.schema_version = (
            SCHEMA_VERSION if schema_version is None else int(schema_version)
        )
        self.stats = StoreStats()

    def __repr__(self) -> str:
        return (
            f"ArtifactStore({str(self.root)!r}, cells={len(self)}, "
            f"schema_version={self.schema_version})"
        )

    # -- keying ------------------------------------------------------------- #

    def cell_key(
        self, graph_fingerprint: str, scheme, seed, algorithm, metrics=()
    ) -> CellKey:
        """Build the content key for one cell group.

        ``scheme``/``algorithm`` accept spec strings, spec objects, or
        configured scheme/bound-algorithm objects; all spellings of one
        configuration key identically.  Metric names are resolved to
        their canonical registry names and sorted, so metric order (and
        aliasing) never splits one computation across two cells.
        """
        return CellKey(
            graph=str(graph_fingerprint),
            scheme=_scheme_json(scheme),
            seed=seed,
            algorithm=_algorithm_json(algorithm),
            metrics=_canonical_metrics(metrics),
        )

    # -- paths -------------------------------------------------------------- #

    def _record_path(self, key: CellKey) -> Path:
        d = key.digest
        return self.root / "cells" / d[:2] / f"{d}.json"

    def _array_path(self, key: CellKey) -> Path:
        d = key.digest
        return self.root / "arrays" / d[:2] / f"{d}.npz"

    # -- cell records ------------------------------------------------------- #

    def get_cells(self, key: CellKey) -> dict | None:
        """The stored payload for ``key``, or ``None`` (a miss).

        Misses cover: no record, unreadable/truncated record, schema
        version mismatch, and (paranoia against digest collisions) a
        record whose embedded key differs from ``key``.
        """
        from repro.faults.plan import InjectedFault, fault_point

        try:
            fault_point("store.get_cells", digest=key.digest[:12])
        except InjectedFault:
            # Reads never raise — a flaky read degrades to a miss and the
            # caller recomputes (and rewrites) the cell.
            self.stats.add(corrupt=1, misses=1)
            return None
        path = self._record_path(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.add(misses=1)
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self.stats.add(corrupt=1, misses=1)
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema_version") != self.schema_version
        ):
            self.stats.add(invalidated=1, misses=1)
            return None
        if record.get("key") != key.to_dict() or "payload" not in record:
            self.stats.add(corrupt=1, misses=1)
            return None
        self.stats.add(hits=1)
        return record["payload"]

    def put_cells(self, key: CellKey, payload: dict, arrays=None) -> None:
        """Store ``payload`` (JSON-safe) under ``key``, atomically.

        ``arrays`` (a ``{name: ndarray}`` mapping) lands in the ``.npz``
        sidecar, written *before* the record so a reader that sees the
        record always finds its arrays.
        """
        from repro.faults.plan import fault_point

        fault_point("store.put_cells", digest=key.digest[:12])
        record = {
            "schema_version": self.schema_version,
            "key": key.to_dict(),
            "payload": payload,
        }
        if arrays:
            atomic_write(
                self._array_path(key),
                lambda fh: np.savez(fh, **{k: np.asarray(v) for k, v in arrays.items()}),
            )
        atomic_write(
            self._record_path(key),
            lambda fh: fh.write(json.dumps(record, sort_keys=True).encode()),
        )
        self.stats.add(writes=1)

    def load_arrays(self, key: CellKey) -> dict | None:
        """The ``.npz`` sidecar of ``key`` as ``{name: ndarray}``, or None."""
        path = self._array_path(key)
        try:
            with np.load(path) as data:
                return {name: data[name] for name in data.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            return None

    def __contains__(self, key: CellKey) -> bool:
        return self._record_path(key).exists()

    def __len__(self) -> int:
        cells = self.root / "cells"
        if not cells.is_dir():
            return 0
        return sum(1 for _ in cells.glob("*/*.json"))

    # -- graph snapshots ---------------------------------------------------- #

    def graph_path(self, fingerprint: str) -> Path | None:
        """Path of the stored snapshot for ``fingerprint``, if present."""
        path = self.root / "graphs" / f"{fingerprint}.npz"
        return path if path.exists() else None

    def add_graph(self, g: CSRGraph, fingerprint: str | None = None) -> tuple[str, Path]:
        """Snapshot ``g`` into the store (idempotent); (fingerprint, path).

        An existing snapshot is reused only if it still opens as the
        current snapshot version — a damaged or stale file is rewritten,
        keeping the store's damage-is-a-miss contract (workers would
        otherwise crash loading it)."""
        if fingerprint is None:
            from repro.runner.fingerprint import graph_fingerprint

            fingerprint = graph_fingerprint(g)
        path = self.root / "graphs" / f"{fingerprint}.npz"
        if not _snapshot_readable(path):
            save_snapshot(g, path)
        return fingerprint, path

    def add_graph_exploded(
        self, g: CSRGraph, fingerprint: str | None = None
    ) -> tuple[str, Path]:
        """Store ``g`` in the exploded (v2) layout; (fingerprint, path).

        The exploded snapshot — a ``graphs/<fingerprint>.snap/`` directory
        of raw ``.npy`` sidecars plus a header — is the one layout
        ``load_snapshot(..., mmap=True)`` can memory-map, so this is what
        out-of-core (``graph_load="mmap"``) sweeps and shard sets read.
        Idempotent with the same damage-is-a-miss contract as
        :meth:`add_graph`: an unreadable directory is rewritten.
        """
        if fingerprint is None:
            from repro.runner.fingerprint import graph_fingerprint

            fingerprint = graph_fingerprint(g)
        path = self.root / "graphs" / f"{fingerprint}.snap"
        if not _exploded_readable(path):
            save_snapshot(g, path, layout="exploded")
        return fingerprint, path

    def load_graph(self, fingerprint: str) -> CSRGraph | None:
        """Reload a stored graph snapshot; damaged snapshots read as None.

        The loaded graph adopts any cached analyses of a live graph with
        the same content fingerprint (triangle lists etc. are functions
        of content), so a reload never re-pays for analyses the original
        object already computed in this process.
        """
        path = self.graph_path(fingerprint)
        if path is None:
            return None
        try:
            g = load_snapshot(path)
        except SnapshotError:
            return None
        from repro.graphs.analysis import analysis_cache

        analysis_cache().adopt(g, fingerprint)
        return g


def _snapshot_readable(path: Path) -> bool:
    """Cheap open-and-version probe of a snapshot file.

    ``np.load`` on an npz is lazy, so this reads the archive directory
    plus the one-element version array — it catches truncation and
    foreign/old files without pulling the edge arrays into memory.
    """
    try:
        with np.load(path) as data:
            return int(data["version"]) == SNAPSHOT_VERSION
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
        return False


def _exploded_readable(path: Path) -> bool:
    """Header-only probe of an exploded (v2) snapshot directory.

    The header is written last (after every sidecar is durable), so a
    parseable header of the right version implies a complete write; any
    sidecar damage is still caught by the loader's per-array checks.
    """
    try:
        header = json.loads((path / HEADER_NAME).read_text())
        return int(header.get("version", -1)) == EXPLODED_SNAPSHOT_VERSION
    except (OSError, ValueError, KeyError):
        return False
