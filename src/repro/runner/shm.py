"""Zero-copy publication of CSR graphs over POSIX shared memory.

The sweep runner's worker processes used to re-load the graph from its
NPZ snapshot in their initializer — N workers, N private copies of every
CSR array.  This module cashes in the immutable-graph contract instead:
the parent packs all of a :class:`~repro.graphs.csr.CSRGraph`'s arrays
into **one** ``multiprocessing.shared_memory`` segment and hands workers
a small JSON-safe *manifest* (segment name + per-array dtype/shape/
offset + the graph fingerprint); each worker re-assembles the graph as
read-only views over the mapped buffer via ``CSRGraph._from_parts`` —
attach-and-slice, no decompression, no copy, aggregate memory ≈ one CSR
regardless of pool width.

Lifecycle discipline (mirrors :mod:`repro.distributed.rma`):

- the parent owns the segment: :meth:`SharedGraph.close` is idempotent
  and both closes and unlinks (``FileNotFoundError`` on a re-unlink is
  swallowed); construction failure after ``create=True`` cleans up the
  segment before re-raising, so a failed publish never leaks;
- workers attach **untracked**: Python's ``resource_tracker`` would
  otherwise register the attach and unlink the parent's segment when the
  first worker exits (3.13+ has ``track=False``; older interpreters are
  handled by unregistering after attach);
- attached segments are kept alive in a per-process registry for the
  life of the worker (the graph's arrays are views into them), and the
  mapping dies with the process — pool rebuilds after a crashed worker
  simply re-attach from the same manifest.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.snapshot import ARRAY_FIELDS, SnapshotError, validate_parts

__all__ = ["SharedGraph", "attach_graph", "detach_all", "MANIFEST_VERSION"]

#: Version of the manifest dict; bump on layout changes.
MANIFEST_VERSION = 1

#: Array offsets are rounded up to this many bytes, so every published
#: array starts cache-line-aligned (harmless for correctness, kind to
#: vectorized kernels reading across process boundaries).
_ALIGN = 64

#: name -> SharedMemory for segments this process attached (not created):
#: the attached graphs' arrays are views into these buffers, so the
#: segments must stay mapped for the life of the process (or until
#: :func:`detach_all` in tests).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker adoption.

    On Python < 3.13 every attach is auto-registered with the (global)
    resource tracker, which unlinks the segment at tracker shutdown —
    i.e. the first exiting worker would tear the buffer out from under
    its siblings and the parent.  The tracker keyes a shared *set*, so
    unregistering after the fact would also cancel the creator's own
    registration (and make its later unlink-time unregister a tracked
    error); instead, registration is suppressed for the duration of the
    attach, keeping ownership squarely with the creating process.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedGraph:
    """One graph published into one shared-memory segment (parent side).

    Usable as a context manager; :attr:`manifest` is the picklable
    attach recipe for :func:`attach_graph`.  The creating process must
    call :meth:`close` (idempotent; also unlinks) when the sweep is done
    — the runner does so in its pool ``finally``.
    """

    def __init__(self, graph: CSRGraph, *, fingerprint: str | None = None):
        arrays: list[tuple[str, np.ndarray]] = []
        for name in ARRAY_FIELDS:
            arr = getattr(graph, name)
            if arr is not None:
                arrays.append((name, np.ascontiguousarray(arr)))

        layout: dict[str, dict] = {}
        offset = 0
        for name, arr in arrays:
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            layout[name] = {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
            }
            offset += arr.nbytes

        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=max(offset, 1)
        )
        try:
            for name, arr in arrays:
                view = np.ndarray(
                    arr.shape,
                    dtype=arr.dtype,
                    buffer=self._shm.buf,
                    offset=layout[name]["offset"],
                )
                view[...] = arr
            del view  # a live view would pin the buffer against close()
        except BaseException:
            # No unlink on the error path would leak the segment until
            # reboot (same bug class as the rma.py window fix).
            self.close()
            raise
        self.manifest: dict = {
            "version": MANIFEST_VERSION,
            "segment": self._shm.name,
            "nbytes": max(offset, 1),
            "fingerprint": fingerprint,
            "n": graph.n,
            "directed": graph.directed,
            "arrays": layout,
        }

    @property
    def name(self) -> str | None:
        """OS name of the segment (None once closed)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        """Release and unlink the segment.  Idempotent; safe to call on a
        partially constructed instance and after an external unlink."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # live views; the mapping dies with the process
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = self.name or "closed"
        return f"SharedGraph({state}, arrays={len(self.manifest['arrays']) if self._shm else 0})"


def attach_graph(manifest: dict) -> CSRGraph:
    """Re-assemble a published graph from its manifest (worker side).

    Returns a :class:`CSRGraph` whose arrays are **read-only views** over
    the shared segment — zero bytes copied.  The segment stays mapped in
    this process (registry) so the views outlive the call.  The manifest
    is validated with the same cross-field checks the snapshot loader
    applies (:func:`repro.graphs.snapshot.validate_parts`); a manifest
    the publisher did not produce fails here, not in a kernel.

    Raises :class:`~repro.graphs.snapshot.SnapshotError` on manifest
    damage and ``FileNotFoundError`` when the segment is gone (publisher
    already unlinked).
    """
    if not isinstance(manifest, dict) or manifest.get("version") != MANIFEST_VERSION:
        raise SnapshotError(
            f"unsupported shared-graph manifest (version "
            f"{manifest.get('version') if isinstance(manifest, dict) else manifest!r}; "
            f"this build reads {MANIFEST_VERSION})"
        )
    name = manifest["segment"]
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = _attach_untracked(name)
        _ATTACHED[name] = segment
    source = f"shm:{name}"
    parts: dict = {}
    for field, meta in manifest["arrays"].items():
        shape = tuple(meta["shape"])
        dtype = np.dtype(meta["dtype"])
        end = meta["offset"] + dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if meta["offset"] < 0 or end > segment.size:
            raise SnapshotError(
                f"{source}: field {field!r} extends past the segment "
                f"(offset {meta['offset']} + {end - meta['offset']} bytes > "
                f"{segment.size})"
            )
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=meta["offset"])
        view.flags.writeable = False
        parts[field] = view
    validate_parts(manifest["n"], manifest["directed"], parts, source=source)
    graph = CSRGraph._from_parts(
        manifest["n"],
        parts["edge_src"],
        parts["edge_dst"],
        parts.get("edge_weights"),
        directed=manifest["directed"],
        indptr=parts["indptr"],
        indices=parts["indices"],
        arc_edge_ids=parts["arc_edge_ids"],
    )
    fingerprint = manifest.get("fingerprint")
    if fingerprint:
        # Same-content analyses transfer (triangle lists etc.), exactly
        # as the store's snapshot loader adopts them.
        from repro.graphs.analysis import analysis_cache

        analysis_cache().adopt(graph, fingerprint)
    return graph


def detach_all() -> int:
    """Close every segment this process attached; returns the count.

    For tests and long-lived parents that attach (workers just exit).
    Any graphs built from those segments must already be dead — live
    views keep the mapping open (``BufferError`` is swallowed and the
    segment is dropped from the registry regardless).
    """
    count = 0
    for name, segment in list(_ATTACHED.items()):
        try:
            segment.close()
        except BufferError:
            pass
        _ATTACHED.pop(name, None)
        count += 1
    return count
