"""``python -m repro.runner`` — run named sweeps from the command line.

Examples::

    python -m repro.runner --list
    python -m repro.runner smoke --store .sweep-store --jobs 2
    python -m repro.runner table5 --store .sweep-store --out benchmarks/results
    python -m repro.runner fig5 --graphs s-pok --seeds 1 2 3 --markdown

Every run emits ``BENCH_<sweep>.json`` (wall time, compression time,
cache hit counts) under ``--out``; with ``--store``, re-running a sweep
replays stored cells — the second identical run reports zero cache
misses and does no recomputation.
"""

from __future__ import annotations

import argparse
import sys

from repro.runner.harness import (
    available_sweeps,
    get_sweep,
    run_sweep,
    write_bench_record,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run a named scheme x algorithm x metric sweep, "
        "resumably and optionally in parallel.",
    )
    parser.add_argument("sweep", nargs="?", help="sweep name (see --list)")
    parser.add_argument(
        "--list", action="store_true", help="list registered sweeps and exit"
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="artifact store directory; cells already stored are replayed",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes (default 1)"
    )
    parser.add_argument(
        "--load-mode",
        choices=("auto", "shm", "npz", "mmap"),
        default="auto",
        help="how workers obtain the graph: shm attaches one shared-memory "
        "copy, npz re-loads the snapshot per worker, mmap memory-maps an "
        "exploded snapshot; auto (default) tries shm then falls back to npz",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", metavar="S", help="override the sweep's seeds"
    )
    parser.add_argument(
        "--graphs", nargs="+", metavar="G", help="override the sweep's graph list"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default="benchmarks/results",
        help="directory for BENCH_<sweep>.json (default benchmarks/results)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="also write <out>/<sweep>_cells.csv"
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print the cell table as markdown"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record spans (parent and workers) and write a Chrome "
        "trace-event JSON export here (open in chrome://tracing or "
        "https://ui.perfetto.dev; validate with python -m repro.obs)",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        for name in available_sweeps():
            spec = get_sweep(name)
            groups = (
                len(spec.graphs)
                * len(spec.schemes)
                * len(spec.algorithms)
                * len(spec.seeds)
            )
            print(f"{name:12s} {groups:5d} cell groups  {spec.description}")
        return 0
    if not args.sweep:
        _build_parser().print_usage()
        print("error: name a sweep or pass --list", file=sys.stderr)
        return 2

    if args.trace:
        from repro.obs.spans import enable_tracing

        enable_tracing()

    result = run_sweep(
        args.sweep,
        store=args.store,
        jobs=args.jobs,
        seeds=args.seeds,
        graphs=args.graphs,
        graph_load=args.load_mode,
    )
    record_path = write_bench_record(result, args.out)

    if args.trace:
        from repro.obs.spans import tracer

        trace_path = tracer().write_chrome_trace(
            args.trace, metadata={"sweep": result.spec.name}
        )
        print(f"trace: {trace_path} ({len(tracer())} spans)")
    if args.csv:
        result.table.to_csv(f"{args.out}/{result.spec.name}_cells.csv")
    if args.markdown:
        print(result.table.to_markdown(title=f"sweep: {result.spec.name}"))

    perf = result.perf
    print(
        f"sweep {result.spec.name}: {perf['cells']} cells "
        f"({perf['cells_scheduled']} groups) over "
        f"{len(perf['graphs'])} graph(s) x {len(perf['seeds'])} seed(s) "
        f"in {perf['wall_seconds']:.2f}s "
        f"[jobs={perf['jobs']}, cache {perf['cache_hits']} hit / "
        f"{perf['cache_misses']} miss, "
        f"compression {perf['compress_seconds']:.2f}s]"
    )
    print(f"perf record: {record_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
