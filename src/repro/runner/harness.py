"""Named, resumable sweeps + the ``BENCH_*.json`` perf trajectory.

A :class:`SweepSpec` is a declarative description of one paper-style
experiment: which dataset stand-ins, which scheme specs, which algorithms
and metrics, which seeds.  :func:`run_sweep` executes it through
:class:`~repro.analytics.session.Session` — and therefore through the
artifact store and process pool when asked — returning every cell as one
multi-graph :class:`~repro.analytics.grid.SweepTable` plus a perf record
(wall time, compression time, cache hit counts) that
:func:`write_bench_record` emits as ``BENCH_<name>.json``.

Resumability falls out of the store: a sweep interrupted (or re-run)
against a warm store replays stored cells with **zero recomputation** —
the CI ``bench-smoke`` job asserts exactly that by running the ``smoke``
sweep twice and checking the second record's ``cache_misses == 0``.

Execution is delegated to the transport-neutral job model
(:mod:`repro.service.jobs`): each sweep graph becomes one
:class:`~repro.service.jobs.JobSpec` run through
:func:`~repro.service.jobs.execute_job` — the very scheduler the
compression service's queue and HTTP front-end use — so CLI sweeps,
pooled sweeps, and HTTP submissions of the same grid populate (and
replay) identical store cells.

The registry ships the paper's headline experiments (``fig5``,
``table5``) plus the tiny ``smoke`` sweep; benchmark scripts and external
callers add their own with :func:`register_sweep`.  The CLI
(``python -m repro.runner``) is a thin veneer over this module.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analytics.grid import SweepTable
from repro.obs.resources import sample_resources
from repro.obs.spans import span
from repro.service.jobs import JobSpec, execute_job, merge_worker_stats
from repro.utils.timer import stopwatch

__all__ = [
    "SweepSpec",
    "SweepResult",
    "register_sweep",
    "get_sweep",
    "available_sweeps",
    "run_sweep",
    "write_bench_record",
    "write_perf_record",
    "BENCH_SCHEMA_VERSION",
]

#: Version of the BENCH_*.json record layout.
BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SweepSpec:
    """One named experiment: the full grid it runs and its defaults."""

    name: str
    graphs: tuple[str, ...]
    schemes: tuple[str, ...]
    algorithms: tuple[str, ...] = ("bfs", "pr", "cc", "tc")
    metrics: tuple[str, ...] | None = None
    seeds: tuple[int, ...] = (0,)
    #: Seed handed to :func:`repro.graphs.datasets.load` when building
    #: the dataset stand-ins (distinct from the compression seeds).
    graph_seed: int = 0
    bfs_root: int = 0
    pr_iterations: int = 100
    description: str = ""


@dataclass
class SweepResult:
    """Everything one :func:`run_sweep` call produced."""

    spec: SweepSpec
    table: SweepTable
    perf: dict = field(default_factory=dict)

    def bench_record(self) -> dict:
        """The JSON-safe ``BENCH_*`` perf record for this run."""
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "sweep": self.spec.name,
            **self.perf,
        }


_SWEEPS: dict[str, SweepSpec] = {}


def register_sweep(spec: SweepSpec, *, replace_existing: bool = False) -> SweepSpec:
    """Add a named sweep; duplicates are rejected unless replacing."""
    key = spec.name.lower()
    if key in _SWEEPS and not replace_existing:
        raise ValueError(f"sweep {spec.name!r} is already registered")
    _SWEEPS[key] = spec
    return spec


def get_sweep(name: str) -> SweepSpec:
    try:
        return _SWEEPS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown sweep {name!r}; available: {', '.join(available_sweeps())}"
        ) from None


def available_sweeps() -> list[str]:
    return sorted(_SWEEPS)


def _load_dataset(name: str, *, seed: int):
    from repro.graphs import datasets

    return datasets.load(name, seed=seed)


def run_sweep(
    sweep,
    *,
    store=None,
    jobs: int | None = None,
    retry=None,
    seeds=None,
    graphs=None,
    graph_loader=None,
    graph_load: str | None = None,
) -> SweepResult:
    """Execute a sweep (by name or :class:`SweepSpec`), resumably.

    Parameters
    ----------
    store:
        :class:`~repro.runner.store.ArtifactStore` or a path to one;
        cells already stored are replayed instead of recomputed, fresh
        cells are written back — interrupt and re-run at will.
    jobs:
        Worker processes per grid (``> 1`` enables the pool).
    retry:
        Fault-tolerance policy for grid execution — a
        :class:`~repro.runner.parallel.RetryPolicy` or a dict of its
        fields (``max_attempts``, ``backoff_base``, ``backoff_cap``,
        ``jitter``, ``task_timeout``).  Default: 3 attempts, capped
        exponential backoff, no per-task timeout.
    seeds, graphs:
        Optional overrides of the spec's axes (e.g. CLI flags).
    graph_loader:
        ``name -> CSRGraph`` override replacing the default
        :func:`repro.graphs.datasets.load` (benchmark fixtures pass their
        session-scoped cache here).
    graph_load:
        Worker graph-delivery mode for pooled grids (``"auto"``/``"shm"``/
        ``"npz"``/``"mmap"`` — :mod:`repro.runner.parallel`); the BENCH
        record's per-worker stats carry the mode each worker used.

    Returns a :class:`SweepResult` whose table spans every (graph, seed)
    grid, with each cell's ``graph`` column filled in.
    """
    spec = get_sweep(sweep) if isinstance(sweep, str) else sweep
    if seeds is not None:
        spec = replace(spec, seeds=tuple(seeds))
    if graphs is not None:
        spec = replace(spec, graphs=tuple(graphs))
    if store is not None and not hasattr(store, "get_cells"):
        from repro.runner.store import ArtifactStore

        store = ArtifactStore(store)
    loader = graph_loader or (lambda name: _load_dataset(name, seed=spec.graph_seed))

    cells = []
    grids = []
    workers: dict = {}
    failed_cells: list = []
    store_write_failures: list = []
    totals = {
        "cells_scheduled": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "compress_seconds": 0.0,
        "analysis_hits": 0,
        "analysis_misses": 0,
        "retries": 0,
        "pool_rebuilds": 0,
        "store_write_retries": 0,
    }
    with stopwatch() as wall, span(
        "sweep", name=spec.name, graphs=len(spec.graphs), jobs=jobs or 1
    ):
        for graph_name in spec.graphs:
            job = JobSpec.from_sweep(spec, graph_name)
            result = execute_job(
                job, store=store, jobs=jobs, graph_loader=loader, retry=retry,
                graph_load=graph_load,
            )
            cells.extend(result.table)
            grids.extend(result.perf["grids"])
            for key in totals:
                totals[key] += result.perf.get(key, 0)
            for entry in result.perf.get("failed_cells", ()):
                failed_cells.append({"graph": graph_name, **entry})
            for entry in result.perf.get("store_write_failures", ()):
                store_write_failures.append({"graph": graph_name, **entry})
            merge_worker_stats(workers, result.perf.get("workers"))

    table = SweepTable(cells)
    algorithm_seconds = sum(
        c.original_seconds + c.compressed_seconds for c in table
    )
    resources = sample_resources()
    perf = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "jobs": jobs or 1,
        "graph_load": graph_load or "auto",
        "store": None if store is None else str(store.root),
        "graphs": list(spec.graphs),
        "seeds": list(spec.seeds),
        "cells": len(table),
        **totals,
        # Quarantine manifest: cell groups that exhausted their retry
        # budget (the sweep completed without them) and store writes
        # abandoned after retries (their cells are still in the table).
        "failed_cells": failed_cells,
        "store_write_failures": store_write_failures,
        # Canonical registry spellings of the flat totals above — the
        # legacy keys (analysis_hits vs the cache's own "hits" etc.) stay
        # as aliases so existing consumers keep working.
        "metrics": {
            "repro.runner.cells_scheduled": totals["cells_scheduled"],
            "repro.runner.cache_hits": totals["cache_hits"],
            "repro.runner.cache_misses": totals["cache_misses"],
            "repro.runner.task_retries": totals["retries"],
            "repro.runner.pool_rebuilds": totals["pool_rebuilds"],
            "repro.runner.failed_cells": len(failed_cells),
            "repro.runner.store_write_retries": totals["store_write_retries"],
            "repro.analysis.hits": totals["analysis_hits"],
            "repro.analysis.misses": totals["analysis_misses"],
        },
        "algorithm_seconds": algorithm_seconds,
        "seconds_per_cell_group": (
            wall.seconds / totals["cells_scheduled"]
            if totals["cells_scheduled"]
            else 0.0
        ),
        "wall_seconds": wall.seconds,
        # The parent process's resource sample plus per-worker-process
        # load time / peak RSS (pid-keyed; empty for in-process sweeps).
        "resources": resources,
        "peak_rss_bytes": resources["peak_rss_bytes"],
        "workers": workers,
        "grids": grids,
    }
    if store is not None:
        store_stats = store.stats.snapshot()
        perf["store_stats"] = store_stats
        perf["metrics"].update(
            {f"repro.store.{k}": v for k, v in store_stats.items()}
        )
    return SweepResult(spec=spec, table=table, perf=perf)


def write_perf_record(name: str, perf: dict, out_dir) -> Path:
    """Emit a ``BENCH_<name>.json`` perf record under ``out_dir``.

    The shared exit point of the perf trajectory: sweep results
    (:func:`write_bench_record`) and the micro-benchmark suite
    (``benchmarks/bench_core.py``) both land here, so every record
    carries the same ``schema_version`` and naming convention.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    record = {"schema_version": BENCH_SCHEMA_VERSION, "sweep": name, **perf}
    # Every BENCH record carries a resource footprint, sampled at write
    # time unless the producer already attached one (run_sweep does).
    if "resources" not in record:
        record["resources"] = sample_resources()
    record.setdefault("peak_rss_bytes", record["resources"]["peak_rss_bytes"])
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def write_bench_record(result: SweepResult, out_dir) -> Path:
    """Emit ``BENCH_<sweep>.json`` under ``out_dir``; returns the path."""
    return write_perf_record(result.spec.name, result.perf, out_dir)


# ---------------------------------------------------------------------- #
# built-in sweeps
# ---------------------------------------------------------------------- #

#: Fig. 5's sixteen scheme configurations, panel by panel.
FIG5_PANELS: dict[str, tuple[tuple[str, float, str], ...]] = {
    "uniform": tuple(("p", p, f"uniform(p={p})") for p in (0.1, 0.5, 0.9)),
    "spectral": tuple(("p", p, f"spectral(p={p})") for p in (0.005, 0.05, 0.5)),
    "tr": tuple(("p", p, f"{p}-1-TR") for p in (0.1, 0.5, 0.9)),
    "spanner": tuple(("k", k, f"spanner(k={k})") for k in (2, 8, 32, 128)),
    "summarization": tuple(
        ("epsilon", e, f"summarization(epsilon={e})") for e in (0.1, 0.4, 0.7)
    ),
}

#: Table 5's seven scheme configurations with their paper column labels.
TABLE5_SCHEMES: tuple[tuple[str, str], ...] = (
    ("EO-0.8-1-TR", "EO-0.8-1-TR"),
    ("EO-1.0-1-TR", "EO-1.0-1-TR"),
    ("uniform(p=0.8)", "Uniform p=0.2"),
    ("uniform(p=0.5)", "Uniform p=0.5"),
    ("spanner(k=2)", "Spanner k=2"),
    ("spanner(k=16)", "Spanner k=16"),
    ("spanner(k=128)", "Spanner k=128"),
)

register_sweep(
    SweepSpec(
        name="smoke",
        graphs=("s-flx",),
        schemes=("uniform(p=0.5)", "spanner(k=4)"),
        algorithms=("pr", "cc"),
        seeds=(0, 1),
        description="tiny 2x2x2-cell sweep for CI and store smoke tests",
    )
)

register_sweep(
    SweepSpec(
        name="fig5",
        graphs=("s-cds", "s-pok", "v-ewk"),
        schemes=tuple(
            spec for entries in FIG5_PANELS.values() for _, _, spec in entries
        ),
        # The scalar BFS surface, so the BFS column carries real timings
        # (the traversal surface delegates its work to the metric and
        # would report a constant 0 runtime difference).
        algorithms=("bfs_reach(source=0)", "pr", "cc", "tc"),
        seeds=(1,),
        pr_iterations=50,
        description="Fig. 5 storage/performance tradeoffs (16 schemes x 4 algorithms x 3 graphs)",
    )
)

register_sweep(
    SweepSpec(
        name="table5",
        graphs=("s-you", "h-hud", "l-dbl", "v-skt", "v-usa"),
        schemes=tuple(spec for spec, _ in TABLE5_SCHEMES),
        algorithms=("pr",),
        metrics=("kl",),
        seeds=(3,),
        pr_iterations=100,
        description="Table 5 KL divergence of PageRank distributions (7 schemes x 5 graphs)",
    )
)
