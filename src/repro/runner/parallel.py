"""Parallel, store-aware execution of grid sweeps.

:func:`run_grid` is the engine behind ``Session(store=…, jobs=N).grid``:
it takes the session's already-resolved grid plan (schemes × algorithm
runners × metric plans), turns it into one **task per (scheme, seed,
algorithm) cell group**, and executes the tasks

- against the artifact store first — cells already stored are replayed
  with zero recomputation,
- then in-process (``jobs <= 1``) or fanned out over a
  ``ProcessPoolExecutor`` (``jobs > 1``), streaming completed cells back
  as workers finish and writing each straight into the store.

Worker processes never receive the graph over the pipe: the parent
snapshots it once (:mod:`repro.graphs.snapshot` — into the store keyed by
fingerprint, or a temp directory when no store is configured) and each
worker loads the snapshot in its initializer.  Every worker keeps its own
:class:`~repro.analytics.session.Session`, so original-graph baselines
are computed at most once per algorithm per worker and compressions at
most once per (scheme, seed) per worker — the same deduplication the
in-memory session performs, sharded over the pool.

Results are bit-compatible with the sequential in-memory path: workers
execute the very same ``Session._score_cells`` code on the very same
inputs, and the parent reassembles cells in deterministic plan order, so
a parallel, store-backed grid equals the single-process one on a fixed
seed (metric values, ratios, labels; wall times naturally vary).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path

from repro.algorithms.spec import AlgorithmSpec
from repro.analytics.grid import GridCell
from repro.graphs.analysis import analysis_cache, stats_delta
from repro.metrics.registry import resolve_metric
from repro.obs.resources import peak_rss_bytes
from repro.obs.spans import (
    current_span_id,
    enable_tracing,
    span,
    tracer,
    tracing_enabled,
)
from repro.utils.timer import stopwatch, timed_call

__all__ = ["run_grid", "CellTask"]


@dataclass(frozen=True)
class CellTask:
    """One unit of sweep work: algorithm × (scheme, seed) compression."""

    scheme: str
    seed: object
    algorithm: str
    metrics: tuple[str, ...]
    scheme_index: int
    runner_index: int

    def transport(self) -> dict:
        """Picklable form sent to workers (and echoed back for routing)."""
        return {
            "scheme": self.scheme,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "metrics": self.metrics,
            "scheme_index": self.scheme_index,
            "runner_index": self.runner_index,
        }


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #

#: Per-process state: the reloaded graph's session plus compression cache.
_WORKER: dict = {}


def _init_worker(snapshot_path: str, session_kwargs: dict, trace: bool = False) -> None:
    from repro.analytics.session import Session
    from repro.graphs.snapshot import load_snapshot

    # Under the fork start method the child inherits the parent tracer's
    # finished spans; drop them or they would ship back as duplicates.
    tracer().clear()
    if trace:
        # The parent traced this sweep; this worker records its own spans
        # and ships them back with each cell result (see _worker_cell).
        enable_tracing()
    with span("worker.load_snapshot", path=str(snapshot_path)):
        with stopwatch() as sw:
            graph = load_snapshot(snapshot_path)
    _WORKER["session"] = Session(graph, **session_kwargs)
    _WORKER["runs"] = {}
    _WORKER["load_seconds"] = sw.seconds


def _worker_cell(task: dict) -> tuple[dict, list[dict], dict]:
    with span("worker.cell", scheme=task["scheme"], algorithm=task["algorithm"]):
        cells, perf = _compute_cell(_WORKER["session"], _WORKER["runs"], task)
    # Per-worker accounting for BENCH records (always) and the worker's
    # finished spans (only when tracing) — the parent pops both out of the
    # perf dict before cells are written to the store, so stored payloads
    # keep their historical schema.
    perf["worker"] = {
        "pid": os.getpid(),
        "load_seconds": _WORKER.get("load_seconds", 0.0),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if tracing_enabled():
        perf["spans"] = tracer().drain()
    return task, cells, perf


def _compute_cell(session, runs: dict, task: dict) -> tuple[list[dict], dict]:
    """Execute one task against ``session`` (worker or parent process).

    ``runs`` holds the current (scheme, seed) compression so consecutive
    same-scheme tasks share it; it is evicted on scheme change, bounding
    peak memory to one compressed graph per process (tasks are submitted
    scheme-major, so in practice each compression still runs once).
    Baselines dedupe through the session's own cache.
    """
    analysis_before = analysis_cache().stats()
    run_key = (task["scheme"], task["seed"])
    cached = runs.get(run_key)
    compress_seconds = 0.0
    if cached is None:
        runs.clear()
        cached, compress_seconds = timed_call(
            session.compress, task["scheme"], seed=task["seed"]
        )
        runs[run_key] = cached
    runner = session._as_runner(task["algorithm"])
    plan = [resolve_metric(m) for m in task["metrics"]]
    with stopwatch() as sw:
        cells = session._score_cells(cached, runner, plan, seed=task["seed"])
    perf = {
        "compress_seconds": compress_seconds,
        "cell_seconds": sw.seconds,
        # Structural-analysis cache activity attributable to this cell
        # (in the executing process — a worker's own cache when pooled).
        "analysis": stats_delta(analysis_before, analysis_cache().stats()),
    }
    return [c.to_dict() for c in cells], perf


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #


def _make_tasks(session, built, runners, plans, seed) -> list[CellTask]:
    tasks: list[CellTask] = []
    from repro.analytics.session import _spec_label

    for si, scheme in enumerate(built):
        scheme_str = _spec_label(scheme)
        for ri, (runner, plan) in enumerate(zip(runners, plans)):
            if not plan:
                continue
            if not isinstance(runner.key, AlgorithmSpec):
                raise ValueError(
                    f"store-backed/parallel grids require registry "
                    f"algorithms; {runner.label!r} is a legacy executable "
                    "spec or bare callable (register it with "
                    "@register_algorithm)"
                )
            tasks.append(
                CellTask(
                    scheme=scheme_str,
                    seed=seed,
                    algorithm=runner.key.to_string(),
                    metrics=tuple(entry.name for entry in plan),
                    scheme_index=si,
                    runner_index=ri,
                )
            )
    return tasks


def run_grid(session, built, runners, plans, *, seed):
    """Execute a resolved grid plan with store replay and/or a pool.

    Returns ``(cells, perf)`` where ``cells`` is in the same deterministic
    (scheme-major, then algorithm, then metric) order the in-memory path
    produces, and ``perf`` reports cache hits/misses, compression time,
    and wall time for this call.
    """
    store = session.store
    jobs = session.jobs or 1
    with stopwatch() as wall:
        tasks = _make_tasks(session, built, runners, plans, seed)

        fingerprint = None
        if store is not None:
            from repro.runner.fingerprint import graph_fingerprint

            fingerprint = graph_fingerprint(session.graph)

        results: dict[tuple[int, int], list[dict]] = {}
        perf = {
            "jobs": jobs,
            "cells_scheduled": len(tasks),
            "cache_hits": 0,
            "cache_misses": 0,
            "compress_seconds": 0.0,
            "analysis_cache": {"hits": 0, "misses": 0, "by_analysis": {}},
            # Per-worker-process accounting (pid-keyed): snapshot load
            # time, peak RSS, cells computed.  Empty for in-process runs.
            "workers": {},
        }
        pending: list[CellTask] = []
        for task in tasks:
            payload = None
            if store is not None:
                key = store.cell_key(
                    fingerprint, task.scheme, task.seed, task.algorithm, task.metrics
                )
                payload = store.get_cells(key)
            if payload is not None:
                results[(task.scheme_index, task.runner_index)] = payload["cells"]
                perf["cache_hits"] += 1
            else:
                pending.append(task)
                perf["cache_misses"] += 1

        def harvest(task: CellTask, cells: list[dict], cell_perf: dict) -> None:
            results[(task.scheme_index, task.runner_index)] = cells
            perf["compress_seconds"] += cell_perf.get("compress_seconds", 0.0)
            _merge_analysis(perf["analysis_cache"], cell_perf.get("analysis"))
            # Worker-only payloads ride in the perf dict but must not
            # reach the store: stored cell payloads keep the historical
            # schema so warm replays stay byte-identical across runs.
            spans = cell_perf.pop("spans", None)
            worker = cell_perf.pop("worker", None)
            if spans:
                tracer().adopt(spans, parent_id=current_span_id())
            if worker:
                slot = perf["workers"].setdefault(
                    str(worker["pid"]),
                    {
                        "pid": worker["pid"],
                        "load_seconds": worker["load_seconds"],
                        "peak_rss_bytes": 0,
                        "cells": 0,
                    },
                )
                slot["cells"] += 1
                slot["peak_rss_bytes"] = max(
                    slot["peak_rss_bytes"], worker["peak_rss_bytes"]
                )
            if store is not None:
                key = store.cell_key(
                    fingerprint, task.scheme, task.seed, task.algorithm, task.metrics
                )
                store.put_cells(key, {"cells": cells, "perf": cell_perf})

        if pending and jobs > 1:
            _run_pool(session, store, fingerprint, pending, jobs, harvest)
        elif pending:
            # In-process: reuse the parent session so its baseline cache
            # keeps paying off across grids; compressions cached per call.
            runs: dict = {}
            for task in pending:
                cells, cell_perf = _compute_cell(session, runs, task.transport())
                harvest(task, cells, cell_perf)

        cells = _assemble(tasks, runners, results)
    perf["wall_seconds"] = wall.seconds
    if store is not None:
        perf["store_stats"] = store.stats.snapshot()
    return cells, perf


def _merge_analysis(total: dict, delta: dict | None) -> None:
    """Accumulate one cell's analysis-cache delta into the grid totals."""
    if not delta:
        return
    total["hits"] += delta.get("hits", 0)
    total["misses"] += delta.get("misses", 0)
    for name, counts in delta.get("by_analysis", {}).items():
        slot = total["by_analysis"].setdefault(name, {"hits": 0, "misses": 0})
        slot["hits"] += counts.get("hits", 0)
        slot["misses"] += counts.get("misses", 0)


def _run_pool(session, store, fingerprint, pending, jobs, harvest) -> None:
    """Fan ``pending`` tasks over a process pool, streaming results back."""
    tmpdir = None
    if store is not None:
        _, snapshot_path = store.add_graph(session.graph, fingerprint)
    else:
        from repro.graphs.snapshot import save_snapshot

        tmpdir = tempfile.mkdtemp(prefix="repro-grid-")
        snapshot_path = save_snapshot(session.graph, Path(tmpdir) / "graph.npz")
    session_kwargs = {
        "seed": session.seed,
        "backend": session.backend,
        "num_chunks": session.num_chunks,
        "bfs_root": session.bfs_root,
        "pr_iterations": session.pr_iterations,
    }
    by_routing = {(t.scheme_index, t.runner_index): t for t in pending}
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(str(snapshot_path), session_kwargs, tracing_enabled()),
        ) as pool:
            futures = [pool.submit(_worker_cell, t.transport()) for t in pending]
            for future in as_completed(futures):
                task_dict, cells, cell_perf = future.result()
                task = by_routing[
                    (task_dict["scheme_index"], task_dict["runner_index"])
                ]
                harvest(task, cells, cell_perf)
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)


def _assemble(tasks, runners, results) -> list[GridCell]:
    """Cells in plan order, labeled like the in-memory path.

    Stored payloads carry the canonical bound algorithm label; the session
    may have requested the cell under a battery short name (``"pr"``), so
    the display label is rewritten to this call's surface.  Replayed
    payloads may also carry the *writer's* metric order (store keys are
    metric-order-free), so rows are re-sorted to this call's requested
    order — a warm replay is row-for-row identical to the in-memory grid
    no matter how the cells were first spelled.
    """
    cells: list[GridCell] = []
    for task in tasks:
        label = runners[task.runner_index].label
        rows = [
            GridCell.from_dict(data)
            for data in results[(task.scheme_index, task.runner_index)]
        ]
        if len(task.metrics) > 1:
            order = {m: i for i, m in enumerate(task.metrics)}
            rows.sort(key=lambda c: order.get(c.metric, len(order)))
        for cell in rows:
            if cell.algorithm != label or cell.seed != task.seed:
                cell = replace(cell, algorithm=label, seed=task.seed)
            cells.append(cell)
    return cells
