"""Parallel, store-aware, fault-tolerant execution of grid sweeps.

:func:`run_grid` is the engine behind ``Session(store=…, jobs=N).grid``:
it takes the session's already-resolved grid plan (schemes × algorithm
runners × metric plans), turns it into one **task per (scheme, seed,
algorithm) cell group**, and executes the tasks

- against the artifact store first — cells already stored are replayed
  with zero recomputation,
- then in-process (``jobs <= 1``) or fanned out over a
  ``ProcessPoolExecutor`` (``jobs > 1``), streaming completed cells back
  as workers finish and writing each straight into the store.

Worker processes never receive the graph over the pipe.  How they get it
is the session's ``graph_load`` mode:

- ``"shm"`` (and the ``"auto"`` default): the parent publishes the CSR
  arrays once into a shared-memory segment (:mod:`repro.runner.shm`) and
  workers attach read-only views in their initializer — zero-copy, near
  zero load time, aggregate memory ≈ one CSR no matter the pool width.
  ``"auto"`` falls back to ``"npz"`` when shared memory is unavailable
  (the perf record notes the fallback).
- ``"npz"``: the historical path — the parent snapshots the graph
  (:mod:`repro.graphs.snapshot` — into the store keyed by fingerprint,
  or a temp directory when no store is configured) and each worker
  decompresses the snapshot into private memory.
- ``"mmap"``: the parent writes the *exploded* (v2) snapshot layout and
  workers memory-map it read-only — out-of-core operation for graphs
  bigger than RAM (see also :mod:`repro.runner.shards`).

The shared segment is a pool-lifetime resource: pool rebuilds after a
dead worker re-attach from the same manifest, and the parent unlinks it
in the scheduler's ``finally`` — a crashed sweep never leaks a segment.
Every worker keeps its own
:class:`~repro.analytics.session.Session`, so original-graph baselines
are computed at most once per algorithm per worker and compressions at
most once per (scheme, seed) per worker — the same deduplication the
in-memory session performs, sharded over the pool.

Results are bit-compatible with the sequential in-memory path: workers
execute the very same ``Session._score_cells`` code on the very same
inputs, and the parent reassembles cells in deterministic plan order, so
a parallel, store-backed grid equals the single-process one on a fixed
seed (metric values, ratios, labels; wall times naturally vary).

**Fault tolerance.**  A sweep over a scheme×algorithm×seed cube runs for
hours; one OOM-killed worker must not lose the night.  The executor
therefore treats every task as retryable under a :class:`RetryPolicy`:

- a task that **raises** in a worker (or in-process) is requeued with
  capped exponential backoff plus deterministic jitter;
- a **dead worker** (``BrokenProcessPool`` — SIGKILL, OOM, segfault)
  rebuilds the pool and requeues every in-flight task;
- a task exceeding the policy's **per-task timeout** has its (hung)
  workers killed, the pool rebuilt, and the task requeued — innocent
  in-flight tasks are requeued without an attempt charge;
- a task still failing after ``max_attempts`` is **quarantined** as a
  :class:`FailedCell` in the perf record's ``failed_cells`` manifest
  instead of aborting the sweep — the grid returns partial results plus
  the manifest, and BENCH records carry both;
- a **store write** failure is retried with the same backoff and, when
  exhausted, logged to ``store_write_failures`` — the computed cells are
  kept, so the sweep's results never depend on store durability.

Because a retried task recomputes from the same snapshot, seed, and
specs, recovery is *correct*, not just survivable: a sweep that rides
through injected faults (:mod:`repro.faults`) produces cells
value-identical to a clean run, which ``python -m repro.faults`` and the
``chaos-smoke`` CI job assert.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import random
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path

from repro.algorithms.spec import AlgorithmSpec
from repro.analytics.grid import GridCell
from repro.faults.plan import fault_point
from repro.graphs.analysis import analysis_cache, stats_delta
from repro.metrics.registry import resolve_metric
from repro.obs.metrics import counter
from repro.obs.resources import peak_rss_bytes, private_bytes
from repro.obs.spans import (
    current_span_id,
    enable_tracing,
    span,
    tracer,
    tracing_enabled,
)
from repro.utils.timer import stopwatch, timed_call

__all__ = ["run_grid", "CellTask", "RetryPolicy", "FailedCell", "GRAPH_LOAD_MODES"]

#: Worker graph-delivery modes a session may request (``"auto"`` picks
#: shared memory and falls back to the npz snapshot).
GRAPH_LOAD_MODES = ("auto", "shm", "npz", "mmap")


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to task failures.

    ``backoff(attempt)`` grows ``backoff_base * 2**(attempt-1)`` capped
    at ``backoff_cap``, with up to ``jitter`` (a fraction) of extra delay
    drawn from the deterministic per-grid RNG — retries de-synchronize
    without making reruns irreproducible.  ``task_timeout`` (seconds,
    measured from submission to a free worker slot) is enforced only for
    pooled execution; ``None`` disables it.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    task_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.jitter < 0:
            raise ValueError("backoff_base, backoff_cap, and jitter must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")

    @classmethod
    def of(cls, value) -> "RetryPolicy":
        """Coerce ``None``/dict/policy to a policy (session convenience)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(f"cannot build a RetryPolicy from {type(value).__name__}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        delay = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass(frozen=True)
class FailedCell:
    """One quarantined cell group: the sweep went on without it."""

    scheme: str
    seed: object
    algorithm: str
    error: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class CellTask:
    """One unit of sweep work: algorithm × (scheme, seed) compression."""

    scheme: str
    seed: object
    algorithm: str
    metrics: tuple[str, ...]
    scheme_index: int
    runner_index: int

    def transport(self) -> dict:
        """Picklable form sent to workers (and echoed back for routing)."""
        return {
            "scheme": self.scheme,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "metrics": self.metrics,
            "scheme_index": self.scheme_index,
            "runner_index": self.runner_index,
        }


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #

#: Per-process state: the reloaded graph's session plus compression cache.
_WORKER: dict = {}


def _load_worker_graph(graph_ref: dict):
    """Materialize the parent's graph from its transport reference.

    ``graph_ref["mode"]`` selects the delivery: ``"shm"`` attaches
    read-only views over the parent's shared segment (zero copy),
    ``"mmap"`` memory-maps an exploded snapshot (out-of-core), ``"npz"``
    decompresses the classic snapshot into private memory.
    """
    mode = graph_ref["mode"]
    if mode == "shm":
        from repro.runner.shm import attach_graph

        return attach_graph(graph_ref["manifest"])
    from repro.graphs.snapshot import load_snapshot

    return load_snapshot(graph_ref["path"], mmap=(mode == "mmap"))


def _init_worker(graph_ref: dict, session_kwargs: dict, trace: bool = False) -> None:
    from repro.analytics.session import Session

    # Under the fork start method the child inherits the parent tracer's
    # finished spans; drop them or they would ship back as duplicates.
    tracer().clear()
    if trace:
        # The parent traced this sweep; this worker records its own spans
        # and ships them back with each cell result (see _worker_cell).
        enable_tracing()
    # Historical span name: this is the worker's graph-acquisition step,
    # whatever the mode (the obs contract keys on the name).
    with span(
        "worker.load_snapshot",
        mode=graph_ref["mode"],
        ref=graph_ref.get("path") or graph_ref.get("manifest", {}).get("segment"),
    ):
        with stopwatch() as sw:
            graph = _load_worker_graph(graph_ref)
    _WORKER["session"] = Session(graph, **session_kwargs)
    _WORKER["runs"] = {}
    _WORKER["load_seconds"] = sw.seconds
    _WORKER["load_mode"] = graph_ref["mode"]


def _worker_cell(task: dict) -> tuple[dict, list[dict], dict]:
    # Chaos hook: "kill" here is an OOM-killed worker (BrokenProcessPool
    # in the parent), "raise" a transient in-worker failure, "hang" a
    # wedged worker for the per-task timeout to reap.
    fault_point(
        "runner.worker_cell", scheme=task["scheme"], algorithm=task["algorithm"]
    )
    with span("worker.cell", scheme=task["scheme"], algorithm=task["algorithm"]):
        cells, perf = _compute_cell(_WORKER["session"], _WORKER["runs"], task)
    # Per-worker accounting for BENCH records (always) and the worker's
    # finished spans (only when tracing) — the parent pops both out of the
    # perf dict before cells are written to the store, so stored payloads
    # keep their historical schema.
    perf["worker"] = {
        "pid": os.getpid(),
        "load_seconds": _WORKER.get("load_seconds", 0.0),
        "load_mode": _WORKER.get("load_mode", "npz"),
        "peak_rss_bytes": peak_rss_bytes(),
        # USS: memory private to this worker.  Shared-memory graph pages
        # inflate peak_rss_bytes in every attacher but not this number —
        # it is what proves "aggregate RSS ≈ one copy".
        "private_bytes": private_bytes(),
    }
    if tracing_enabled():
        perf["spans"] = tracer().drain()
    return task, cells, perf


def _compute_cell(session, runs: dict, task: dict) -> tuple[list[dict], dict]:
    """Execute one task against ``session`` (worker or parent process).

    ``runs`` holds the current (scheme, seed) compression so consecutive
    same-key tasks share it; it is evicted whenever the ``(scheme, seed)``
    key changes — a new seed of the same scheme evicts too — bounding
    peak memory to one compressed graph per process.  Tasks are submitted
    scheme-major (seeds grouped within a scheme), so each (scheme, seed)
    compression still runs exactly once per process.  Baselines dedupe
    through the session's own cache.
    """
    fault_point(
        "runner.compute_cell", scheme=task["scheme"], algorithm=task["algorithm"]
    )
    analysis_before = analysis_cache().stats()
    run_key = (task["scheme"], task["seed"])
    cached = runs.get(run_key)
    compress_seconds = 0.0
    if cached is None:
        runs.clear()
        cached, compress_seconds = timed_call(
            session.compress, task["scheme"], seed=task["seed"]
        )
        runs[run_key] = cached
    runner = session._as_runner(task["algorithm"])
    plan = [resolve_metric(m) for m in task["metrics"]]
    with stopwatch() as sw:
        cells = session._score_cells(cached, runner, plan, seed=task["seed"])
    perf = {
        "compress_seconds": compress_seconds,
        "cell_seconds": sw.seconds,
        # Structural-analysis cache activity attributable to this cell
        # (in the executing process — a worker's own cache when pooled).
        "analysis": stats_delta(analysis_before, analysis_cache().stats()),
    }
    return [c.to_dict() for c in cells], perf


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #


def _make_tasks(session, built, runners, plans, seed) -> list[CellTask]:
    tasks: list[CellTask] = []
    from repro.analytics.session import _spec_label

    for si, scheme in enumerate(built):
        scheme_str = _spec_label(scheme)
        for ri, (runner, plan) in enumerate(zip(runners, plans)):
            if not plan:
                continue
            if not isinstance(runner.key, AlgorithmSpec):
                raise ValueError(
                    f"store-backed/parallel grids require registry "
                    f"algorithms; {runner.label!r} is a legacy executable "
                    "spec or bare callable (register it with "
                    "@register_algorithm)"
                )
            tasks.append(
                CellTask(
                    scheme=scheme_str,
                    seed=seed,
                    algorithm=runner.key.to_string(),
                    metrics=tuple(entry.name for entry in plan),
                    scheme_index=si,
                    runner_index=ri,
                )
            )
    return tasks


def run_grid(session, built, runners, plans, *, seed):
    """Execute a resolved grid plan with store replay and/or a pool.

    Returns ``(cells, perf)`` where ``cells`` is in the same deterministic
    (scheme-major, then algorithm, then metric) order the in-memory path
    produces — minus any quarantined cells, which appear in
    ``perf["failed_cells"]`` instead — and ``perf`` reports cache
    hits/misses, compression time, retries, and wall time for this call.
    """
    store = session.store
    jobs = session.jobs or 1
    retry = RetryPolicy.of(getattr(session, "retry", None))
    rng = random.Random(f"retry-jitter-{seed}")
    with stopwatch() as wall:
        tasks = _make_tasks(session, built, runners, plans, seed)

        fingerprint = None
        if store is not None:
            from repro.runner.fingerprint import graph_fingerprint

            fingerprint = graph_fingerprint(session.graph)

        results: dict[tuple[int, int], list[dict]] = {}
        perf = {
            "jobs": jobs,
            "cells_scheduled": len(tasks),
            "cache_hits": 0,
            "cache_misses": 0,
            "compress_seconds": 0.0,
            "analysis_cache": {"hits": 0, "misses": 0, "by_analysis": {}},
            # Fault-tolerance accounting: task re-executions, quarantined
            # cell groups, pool rebuilds after dead/hung workers, and
            # store writes that needed retries / were abandoned.
            "retries": 0,
            "failed_cells": [],
            "pool_rebuilds": 0,
            "store_write_retries": 0,
            "store_write_failures": [],
            # Per-worker-process accounting (pid-keyed): snapshot load
            # time, peak RSS, cells computed.  Empty for in-process runs.
            "workers": {},
        }
        pending: list[CellTask] = []
        for task in tasks:
            payload = None
            if store is not None:
                key = store.cell_key(
                    fingerprint, task.scheme, task.seed, task.algorithm, task.metrics
                )
                payload = store.get_cells(key)
            if payload is not None:
                results[(task.scheme_index, task.runner_index)] = payload["cells"]
                perf["cache_hits"] += 1
            else:
                pending.append(task)
                perf["cache_misses"] += 1

        def harvest(task: CellTask, cells: list[dict], cell_perf: dict) -> None:
            results[(task.scheme_index, task.runner_index)] = cells
            perf["compress_seconds"] += cell_perf.get("compress_seconds", 0.0)
            _merge_analysis(perf["analysis_cache"], cell_perf.get("analysis"))
            # Worker-only payloads ride in the perf dict but must not
            # reach the store: stored cell payloads keep the historical
            # schema so warm replays stay byte-identical across runs.
            spans = cell_perf.pop("spans", None)
            worker = cell_perf.pop("worker", None)
            if spans:
                tracer().adopt(spans, parent_id=current_span_id())
            if worker:
                slot = perf["workers"].setdefault(
                    str(worker["pid"]),
                    {
                        "pid": worker["pid"],
                        "load_seconds": worker["load_seconds"],
                        "load_mode": worker.get("load_mode", "npz"),
                        "peak_rss_bytes": 0,
                        "private_bytes": None,
                        "cells": 0,
                    },
                )
                slot["cells"] += 1
                slot["peak_rss_bytes"] = max(
                    slot["peak_rss_bytes"], worker["peak_rss_bytes"]
                )
                uss = worker.get("private_bytes")
                if uss is not None:
                    slot["private_bytes"] = max(slot["private_bytes"] or 0, uss)
            if store is not None:
                key = store.cell_key(
                    fingerprint, task.scheme, task.seed, task.algorithm, task.metrics
                )
                _store_put(store, key, {"cells": cells, "perf": cell_perf}, retry, rng, perf)

        if pending and jobs > 1:
            _run_pool(session, store, fingerprint, pending, jobs, harvest, retry, rng, perf)
        elif pending:
            _run_inline(session, pending, harvest, retry, rng, perf)

        cells = _assemble(tasks, runners, results)
    perf["wall_seconds"] = wall.seconds
    if store is not None:
        perf["store_stats"] = store.stats.snapshot()
    return cells, perf


def _store_put(store, key, payload, retry: RetryPolicy, rng, perf: dict) -> bool:
    """Write one cell record, riding out transient store failures.

    The cells are already harvested — a store that stays broken costs
    future replays, never this sweep's results — so exhaustion logs a
    ``store_write_failures`` entry and moves on instead of raising.
    """
    for attempt in range(1, retry.max_attempts + 1):
        try:
            store.put_cells(key, payload)
            return True
        except Exception as err:  # noqa: BLE001 — flaky disks throw anything
            if attempt >= retry.max_attempts:
                perf["store_write_failures"].append(
                    {
                        "digest": key.digest,
                        "error": f"{type(err).__name__}: {err}",
                        "attempts": attempt,
                    }
                )
                counter("repro.runner.store_write_failures").inc()
                return False
            perf["store_write_retries"] += 1
            counter("repro.runner.store_write_retries").inc()
            time.sleep(retry.backoff(attempt, rng))
    return False


def _quarantine(task: CellTask, err, attempts: int, perf: dict) -> None:
    perf["failed_cells"].append(
        FailedCell(
            scheme=task.scheme,
            seed=task.seed,
            algorithm=task.algorithm,
            error=f"{type(err).__name__}: {err}",
            attempts=attempts,
        ).to_dict()
    )
    counter("repro.runner.failed_cells").inc()


def _run_inline(session, pending, harvest, retry: RetryPolicy, rng, perf: dict) -> None:
    """In-process execution with the same retry/quarantine semantics.

    Reuses the parent session so its baseline cache keeps paying off
    across grids; compressions cached per call.  A failed attempt may
    leave a partial compression in ``runs`` — retries clear it first.
    """
    runs: dict = {}
    for task in pending:
        for attempt in range(1, retry.max_attempts + 1):
            try:
                cells, cell_perf = _compute_cell(session, runs, task.transport())
            except Exception as err:  # noqa: BLE001 — any failure is retryable
                runs.clear()
                if attempt >= retry.max_attempts:
                    _quarantine(task, err, attempt, perf)
                    break
                perf["retries"] += 1
                counter("repro.runner.task_retries").inc()
                time.sleep(retry.backoff(attempt, rng))
            else:
                harvest(task, cells, cell_perf)
                break


def _run_pool(
    session, store, fingerprint, pending, jobs, harvest, retry: RetryPolicy, rng, perf
) -> None:
    """Fan ``pending`` tasks over a process pool, streaming results back.

    The pool is treated as a crashable resource: per-future exceptions
    requeue the task with backoff, a broken pool (dead worker) or a
    per-task timeout (hung worker, killed here) rebuilds it and requeues
    the in-flight tasks, and tasks out of attempts are quarantined.
    """
    tmpdir: str | None = None
    shared = None
    mode = getattr(session, "graph_load", "auto") or "auto"

    def _durably(write):
        # The snapshot is the one write the sweep cannot proceed without,
        # so transient failures retry (a torn/damaged file is rewritten —
        # add_graph validates existing snapshots) and exhaustion raises.
        for attempt in range(1, retry.max_attempts + 1):
            try:
                return write()
            except Exception:  # noqa: BLE001 — flaky disks throw anything
                if attempt >= retry.max_attempts:
                    raise
                perf["store_write_retries"] += 1
                counter("repro.runner.store_write_retries").inc()
                time.sleep(retry.backoff(attempt, rng))

    if mode in ("auto", "shm"):
        from repro.runner.shm import SharedGraph

        try:
            shared = SharedGraph(session.graph, fingerprint=fingerprint)
        except Exception as err:  # noqa: BLE001 — /dev/shm full, cgroup caps…
            if mode == "shm":
                raise
            perf["graph_load_fallback"] = f"{type(err).__name__}: {err}"
            mode = "npz"
        else:
            mode = "shm"
            graph_ref = {"mode": "shm", "manifest": shared.manifest}
            perf["shm_segment"] = shared.name
            if store is not None:
                # Workers never read it, but the store's durable copy
                # still backs warm replays and shard cutting.
                _durably(lambda: store.add_graph(session.graph, fingerprint))
    if mode == "npz":
        if store is not None:
            _, snapshot_path = _durably(
                lambda: store.add_graph(session.graph, fingerprint)
            )
        else:
            from repro.graphs.snapshot import save_snapshot

            tmpdir = tempfile.mkdtemp(prefix="repro-grid-")
            snapshot_path = save_snapshot(session.graph, Path(tmpdir) / "graph.npz")
        graph_ref = {"mode": "npz", "path": str(snapshot_path)}
    elif mode == "mmap":
        if store is not None:
            _, snapshot_path = _durably(
                lambda: store.add_graph_exploded(session.graph, fingerprint)
            )
        else:
            from repro.graphs.snapshot import save_snapshot

            tmpdir = tempfile.mkdtemp(prefix="repro-grid-")
            snapshot_path = save_snapshot(
                session.graph, Path(tmpdir) / "graph.snap", layout="exploded"
            )
        graph_ref = {"mode": "mmap", "path": str(snapshot_path)}
    perf["graph_load"] = mode
    session_kwargs = {
        "seed": session.seed,
        "backend": session.backend,
        "num_chunks": session.num_chunks,
        "bfs_root": session.bfs_root,
        "pr_iterations": session.pr_iterations,
    }

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(graph_ref, session_kwargs, tracing_enabled()),
        )

    pool: ProcessPoolExecutor | None = None

    def shutdown_pool(*, kill: bool = False) -> None:
        nonlocal pool
        if pool is None:
            return
        if kill:
            # A hung worker never returns; terminate so shutdown's join
            # completes.  ``_processes`` is executor-internal — guard it.
            procs = getattr(pool, "_processes", None) or {}
            for proc in list(procs.values()):
                try:
                    proc.terminate()
                except Exception:  # noqa: BLE001 — already dead is fine
                    pass
        pool.shutdown(wait=True, cancel_futures=True)
        pool = None

    # Ready-queue ordered by (not-before time, submission sequence): fresh
    # tasks keep the deterministic scheme-major order; retries re-enter
    # after their backoff.  ``attempts`` survives requeues.
    seq = itertools.count()
    ready: list[tuple[float, int, CellTask]] = [
        (0.0, next(seq), task) for task in pending
    ]
    heapq.heapify(ready)
    attempts: dict[CellTask, int] = {}
    window: dict = {}  # future -> (task, deadline)

    def fail_or_requeue(task: CellTask, err, *, charge: bool = True) -> None:
        if not charge:
            heapq.heappush(ready, (time.monotonic(), next(seq), task))
            return
        n = attempts[task] = attempts.get(task, 0) + 1
        if n >= retry.max_attempts:
            _quarantine(task, err, n, perf)
            return
        perf["retries"] += 1
        counter("repro.runner.task_retries").inc()
        delay = retry.backoff(n, rng)
        heapq.heappush(ready, (time.monotonic() + delay, next(seq), task))

    def rebuild_after(kind: str) -> None:
        perf["pool_rebuilds"] += 1
        counter("repro.runner.pool_rebuilds").inc()
        shutdown_pool(kill=(kind == "timeout"))

    try:
        while ready or window:
            now = time.monotonic()
            while ready and len(window) < jobs and ready[0][0] <= now:
                _, _, task = heapq.heappop(ready)
                if pool is None:
                    pool = make_pool()
                future = pool.submit(_worker_cell, task.transport())
                deadline = (
                    math.inf
                    if retry.task_timeout is None
                    else now + retry.task_timeout
                )
                window[future] = (task, deadline)
            if not window:
                # Everything is backing off; sleep until the first is due.
                time.sleep(min(0.5, max(0.0, ready[0][0] - now)) or 0.001)
                continue

            next_deadline = min(deadline for _, deadline in window.values())
            poll = None
            if next_deadline is not math.inf or ready:
                bounds = [0.25]
                if next_deadline is not math.inf:
                    bounds.append(max(0.01, next_deadline - now))
                if ready:
                    bounds.append(max(0.01, ready[0][0] - now))
                poll = min(bounds)
            done, _ = wait(set(window), timeout=poll, return_when=FIRST_COMPLETED)

            for future in done:
                if future not in window:  # window cleared by a pool rebuild
                    continue
                task, _ = window.pop(future)
                try:
                    task_dict, cells, cell_perf = future.result()
                except BrokenExecutor as err:
                    # The pool died under us (SIGKILL/OOM/segfault): every
                    # in-flight future is lost with it.  Requeue them all
                    # (each was interrupted — each attempt is charged),
                    # rebuild lazily on next submission.
                    lost = [task] + [t for t, _ in window.values()]
                    window.clear()
                    rebuild_after("broken")
                    for casualty in lost:
                        fail_or_requeue(casualty, err)
                    break
                except Exception as err:  # noqa: BLE001 — task failure is data
                    fail_or_requeue(task, err)
                else:
                    harvest(task, cells, cell_perf)

            if not done and retry.task_timeout is not None:
                now = time.monotonic()
                expired = [
                    (future, task)
                    for future, (task, deadline) in window.items()
                    if now >= deadline and not future.done()
                ]
                if expired:
                    # Hung worker(s): the executor cannot cancel running
                    # work, so kill the pool and resubmit.  Only the
                    # expired tasks are charged an attempt; co-resident
                    # tasks were innocent.
                    expired_tasks = {task for _, task in expired}
                    survivors = [
                        t for t, _ in window.values() if t not in expired_tasks
                    ]
                    window.clear()
                    rebuild_after("timeout")
                    err = TimeoutError(
                        f"task exceeded the {retry.task_timeout}s per-task timeout"
                    )
                    for task in expired_tasks:
                        fail_or_requeue(task, err)
                    for task in survivors:
                        fail_or_requeue(task, None, charge=False)
    finally:
        shutdown_pool()
        if shared is not None:
            # Unlink exactly once, crash or not: workers are gone (their
            # mappings died with them), so the segment is freed here.
            shared.close()
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)


def _merge_analysis(total: dict, delta: dict | None) -> None:
    """Accumulate one cell's analysis-cache delta into the grid totals."""
    if not delta:
        return
    total["hits"] += delta.get("hits", 0)
    total["misses"] += delta.get("misses", 0)
    for name, counts in delta.get("by_analysis", {}).items():
        slot = total["by_analysis"].setdefault(name, {"hits": 0, "misses": 0})
        slot["hits"] += counts.get("hits", 0)
        slot["misses"] += counts.get("misses", 0)


def _assemble(tasks, runners, results) -> list[GridCell]:
    """Cells in plan order, labeled like the in-memory path.

    Stored payloads carry the canonical bound algorithm label; the session
    may have requested the cell under a battery short name (``"pr"``), so
    the display label is rewritten to this call's surface.  Replayed
    payloads may also carry the *writer's* metric order (store keys are
    metric-order-free), so rows are re-sorted to this call's requested
    order — a warm replay is row-for-row identical to the in-memory grid
    no matter how the cells were first spelled.  Quarantined tasks have
    no results entry and are skipped — their identity lives in the perf
    record's ``failed_cells`` manifest.
    """
    cells: list[GridCell] = []
    for task in tasks:
        payload = results.get((task.scheme_index, task.runner_index))
        if payload is None:
            continue
        label = runners[task.runner_index].label
        rows = [GridCell.from_dict(data) for data in payload]
        if len(task.metrics) > 1:
            order = {m: i for i, m in enumerate(task.metrics)}
            rows.sort(key=lambda c: order.get(c.metric, len(order)))
        for cell in rows:
            if cell.algorithm != label or cell.seed != task.seed:
                cell = replace(cell, algorithm=label, seed=task.seed)
            cells.append(cell)
    return cells
