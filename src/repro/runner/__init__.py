"""The sweep runner: persistent, parallel, resumable grid execution.

The paper's headline numbers come from large scheme × algorithm × metric
sweeps; this subsystem is the execution layer that makes those sweeps
cheap to repeat:

- :mod:`repro.runner.store` — a content-addressed on-disk artifact store
  (atomic writes, versioned schema, corruption-tolerant reads) keyed by
  (graph fingerprint, canonical scheme JSON, seed, canonical algorithm
  JSON, metrics);
- :mod:`repro.runner.fingerprint` — content hashes of CSR graphs (paired
  with the binary snapshots in :mod:`repro.graphs.snapshot`);
- :mod:`repro.runner.parallel` — the store-aware executor fanning grid
  cells across a process pool with per-worker baseline/compression
  deduplication;
- :mod:`repro.runner.harness` — named sweeps (``fig5``, ``table5``,
  ``smoke``, yours via :func:`~repro.runner.harness.register_sweep`),
  resumable runs, and ``BENCH_*.json`` perf records.

Sessions opt in with ``Session(graph, store=..., jobs=N)``; the CLI is
``python -m repro.runner <sweep> [--store DIR] [--jobs N]``.
"""

from repro.runner.fingerprint import graph_fingerprint
from repro.runner.harness import (
    SweepResult,
    SweepSpec,
    available_sweeps,
    get_sweep,
    register_sweep,
    run_sweep,
    write_bench_record,
    write_perf_record,
)
from repro.runner.parallel import CellTask, run_grid
from repro.runner.store import SCHEMA_VERSION, ArtifactStore, CellKey, StoreStats

__all__ = [
    "ArtifactStore",
    "CellKey",
    "CellTask",
    "StoreStats",
    "SCHEMA_VERSION",
    "SweepResult",
    "SweepSpec",
    "available_sweeps",
    "get_sweep",
    "graph_fingerprint",
    "register_sweep",
    "run_grid",
    "run_sweep",
    "write_bench_record",
    "write_perf_record",
]
