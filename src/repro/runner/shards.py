"""Out-of-core sweeps: cut a graph into mmap-able CSR shards, sweep each.

A graph too big to hold N+1 times (parent plus a pool of workers) is
handled by :mod:`repro.runner.shm` — one shared copy.  A graph too big
to hold even *once* needs the disk as backing store, and that is this
module: :func:`shard_graph` cuts the edge set into contiguous (or
degree-balanced) ranges with :class:`repro.distributed.partition.
EdgePartition`, materializes each range as a vertex-preserving subgraph
(``CSRGraph.keep_edges`` — bit-identical to a full rebuild), and writes
every shard in the *exploded* (v2) snapshot layout that
``load_snapshot(..., mmap=True)`` can memory-map.  A ``manifest.json``
(written last, atomically — the same write-sidecars-then-commit
discipline as the exploded snapshot itself) makes the shard set
self-describing and damage detectable.

:func:`sweep_shards` then drives a normal grid over every shard with
``graph_load="mmap"`` workers: the parent touches each shard through a
read-only mapping (pages the kernel can drop under pressure) and workers
map the same bytes — at no point does the full graph, or even one full
private shard copy per worker, have to be resident.  Cells are labeled
``graph="shard:<i>"`` so per-shard results stay attributable and the
merged table is a plain :class:`~repro.analytics.grid.SweepTable`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analytics.grid import SweepTable
from repro.distributed.partition import EdgePartition
from repro.graphs.csr import CSRGraph
from repro.graphs.snapshot import SnapshotError, load_snapshot, save_snapshot
from repro.obs.spans import span
from repro.utils.fileio import atomic_write
from repro.utils.timer import stopwatch

__all__ = ["Shard", "ShardSet", "shard_graph", "sweep_shards", "SHARD_MANIFEST_VERSION"]

#: Version of ``manifest.json``; bump on layout changes.
SHARD_MANIFEST_VERSION = 1

#: Manifest file name inside a shard-set directory.
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class Shard:
    """One edge-range shard of a parent graph (metadata only)."""

    index: int
    path: str
    edge_lo: int
    edge_hi: int
    num_edges: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "path": self.path,
            "edge_lo": self.edge_lo,
            "edge_hi": self.edge_hi,
            "num_edges": self.num_edges,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Shard":
        return cls(
            index=int(data["index"]),
            path=str(data["path"]),
            edge_lo=int(data["edge_lo"]),
            edge_hi=int(data["edge_hi"]),
            num_edges=int(data["num_edges"]),
        )


class ShardSet:
    """A directory of exploded shard snapshots plus its manifest.

    Construct with :func:`shard_graph` or reopen with :meth:`open`.
    Iterating yields ``(shard, graph)`` pairs with the graph memory-mapped
    read-only — materialize at most one shard's *pages* at a time, and
    only the ones actually touched.
    """

    def __init__(self, root: Path, manifest: dict):
        self.root = Path(root)
        self.manifest = manifest
        self.shards = tuple(Shard.from_dict(s) for s in manifest["shards"])

    @classmethod
    def open(cls, root) -> "ShardSet":
        root = Path(root)
        try:
            manifest = json.loads((root / MANIFEST_NAME).read_text())
        except FileNotFoundError:
            raise SnapshotError(
                f"no shard manifest at {root / MANIFEST_NAME} — not a shard "
                "set, or the cut crashed before commit"
            ) from None
        except (OSError, ValueError) as err:
            raise SnapshotError(f"unreadable shard manifest at {root}: {err}") from err
        if manifest.get("version") != SHARD_MANIFEST_VERSION:
            raise SnapshotError(
                f"unsupported shard manifest version {manifest.get('version')!r} "
                f"at {root} (this build reads {SHARD_MANIFEST_VERSION})"
            )
        return cls(root, manifest)

    def __len__(self) -> int:
        return len(self.shards)

    def load(self, index: int, *, mmap: bool = True) -> CSRGraph:
        """Load one shard's graph (memory-mapped by default)."""
        shard = self.shards[index]
        return load_snapshot(self.root / shard.path, mmap=mmap)

    def __iter__(self):
        for shard in self.shards:
            yield shard, load_snapshot(self.root / shard.path, mmap=True)

    def __repr__(self) -> str:
        return (
            f"ShardSet({str(self.root)!r}, shards={len(self.shards)}, "
            f"n={self.manifest['n']}, edges={self.manifest['num_edges']})"
        )


def shard_graph(
    g: CSRGraph,
    root,
    *,
    num_shards: int,
    policy: str = "contiguous",
    fingerprint: str | None = None,
) -> ShardSet:
    """Cut ``g`` into ``num_shards`` edge-range shards under ``root``.

    ``policy`` selects the edge partition: ``"contiguous"`` (equal edge
    counts) or ``"balanced"`` (endpoint-degree-balanced ranges — better
    for power-law graphs whose hub edges dominate work).  Every shard
    keeps the full vertex set (compression never renumbers vertices), so
    per-shard metric outputs stay positionally comparable.

    Shards are written in the exploded (v2) snapshot layout; the
    manifest commits last, so a crash mid-cut leaves a directory
    :meth:`ShardSet.open` refuses rather than a silently short set.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if policy == "contiguous":
        part = EdgePartition.contiguous(g, num_shards)
    elif policy == "balanced":
        part = EdgePartition.balanced(g, num_shards)
    else:
        raise ValueError(
            f"unknown shard policy {policy!r}; use 'contiguous' or 'balanced'"
        )
    if fingerprint is None:
        from repro.runner.fingerprint import graph_fingerprint

        fingerprint = graph_fingerprint(g)

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    shards: list[Shard] = []
    with span("shards.cut", shards=len(part.ranges), policy=policy):
        for i, (lo, hi) in enumerate(part.ranges):
            mask = np.zeros(g.num_edges, dtype=bool)
            mask[lo:hi] = True
            sub = g.keep_edges(mask)
            rel = f"shard-{i:04d}.snap"
            save_snapshot(sub, root / rel, layout="exploded")
            shards.append(
                Shard(
                    index=i,
                    path=rel,
                    edge_lo=int(lo),
                    edge_hi=int(hi),
                    num_edges=int(hi - lo),
                )
            )
    manifest = {
        "version": SHARD_MANIFEST_VERSION,
        "fingerprint": fingerprint,
        "n": g.n,
        "directed": g.directed,
        "num_edges": g.num_edges,
        "policy": policy,
        "shards": [s.to_dict() for s in shards],
    }
    payload = json.dumps(manifest, indent=2, sort_keys=True)
    atomic_write(root / MANIFEST_NAME, lambda fh: fh.write(payload.encode()))
    return ShardSet(root, manifest)


def sweep_shards(
    shard_set,
    schemes,
    algorithms,
    metrics=None,
    *,
    seed=0,
    jobs: int | None = None,
    store=None,
    retry=None,
    session_kwargs: dict | None = None,
):
    """Run one grid per shard over memory-mapped inputs; merged results.

    ``shard_set`` is a :class:`ShardSet` or a path to one.  Each shard
    gets its own :class:`~repro.analytics.session.Session` with
    ``graph_load="mmap"`` — pooled workers map the shard's exploded
    snapshot instead of holding private copies, so peak residency is
    bounded by one shard's touched pages, not the whole graph.

    Returns ``(table, perf)``: a :class:`SweepTable` whose cells carry
    ``graph="shard:<i>"`` labels, and a perf dict with per-shard grid
    perf under ``"shards"`` plus merged totals.
    """
    from dataclasses import replace as _replace

    from repro.analytics.session import Session

    if not isinstance(shard_set, ShardSet):
        shard_set = ShardSet.open(shard_set)
    cells = []
    shard_perf = []
    with stopwatch() as wall, span("shards.sweep", shards=len(shard_set)):
        for shard in shard_set.shards:
            graph = shard_set.load(shard.index, mmap=True)
            session = Session(
                graph,
                seed=seed,
                jobs=jobs,
                store=store,
                retry=retry,
                graph_load="mmap",
                **(session_kwargs or {}),
            )
            table = session.grid(schemes, algorithms, metrics, seed=seed)
            label = f"shard:{shard.index}"
            cells.extend(_replace(c, graph=label) for c in table)
            perf = dict(session.last_grid_perf)
            perf.pop("store_stats", None)
            shard_perf.append({"shard": shard.index, "edges": shard.num_edges, **perf})
            # Drop the session and mapped graph before the next shard so
            # at most one shard's mapping is live at a time.
            del session, table, graph
    perf = {
        "shards": shard_perf,
        "num_shards": len(shard_set),
        "fingerprint": shard_set.manifest.get("fingerprint"),
        "wall_seconds": wall.seconds,
        "cells": len(cells),
        "failed_cells": [f for p in shard_perf for f in p.get("failed_cells", ())],
    }
    return SweepTable(cells), perf
