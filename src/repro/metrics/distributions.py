"""Degree-distribution analysis (§7.2 Fig. 7, §7.3 Fig. 8).

The paper uses degree-distribution plots as "a visual method of assessing
the impact of compression" that also works across graphs with different
vertex counts.  This module computes the plotted quantities — (degree,
fraction-of-vertices) point clouds — plus two scalar summaries:

- Kolmogorov–Smirnov distance between degree CDFs (how much the
  distribution moved),
- a log–log least-squares power-law fit whose residual quantifies the
  Fig. 7 observation that spanners "strengthen the power law" (residual
  shrinks as k grows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = [
    "degree_histogram",
    "degree_cdf_distance",
    "PowerLawFit",
    "fit_power_law",
]


def degree_histogram(g: CSRGraph, *, use_out_degrees: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """(unique degrees ≥ 1, fraction of vertices) — the Fig. 7/8 axes."""
    deg = g.degrees if use_out_degrees or not g.directed else g.in_degrees
    deg = deg[deg > 0]
    if len(deg) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    values, counts = np.unique(deg, return_counts=True)
    return values, counts / g.n


def degree_cdf_distance(a: CSRGraph, b: CSRGraph) -> float:
    """Kolmogorov–Smirnov distance between the two degree distributions."""
    da, db = a.degrees, b.degrees
    hi = int(max(da.max(initial=0), db.max(initial=0))) + 1
    ca = np.cumsum(np.bincount(da, minlength=hi)) / max(a.n, 1)
    cb = np.cumsum(np.bincount(db, minlength=hi)) / max(b.n, 1)
    return float(np.abs(ca - cb).max()) if hi else 0.0


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of log(fraction) = intercept − slope·log(degree)."""

    slope: float
    intercept: float
    residual: float  # RMS residual in log-log space; lower = straighter line

    @property
    def exponent(self) -> float:
        """The power-law exponent estimate (positive for decaying tails)."""
        return self.slope


def fit_power_law(g: CSRGraph, *, min_degree: int = 1) -> PowerLawFit:
    """Fit the degree histogram in log–log space.

    The residual is the Fig. 7 "straightness" score: spanners with larger
    k produce smaller residuals ("strengthen the power law").
    """
    values, fractions = degree_histogram(g)
    mask = values >= min_degree
    values, fractions = values[mask], fractions[mask]
    if len(values) < 2:
        return PowerLawFit(slope=0.0, intercept=0.0, residual=0.0)
    x = np.log(values.astype(np.float64))
    y = np.log(fractions)
    coeffs = np.polyfit(x, y, 1)
    predicted = np.polyval(coeffs, x)
    residual = float(np.sqrt(np.mean((y - predicted) ** 2)))
    return PowerLawFit(slope=float(-coeffs[0]), intercept=float(coeffs[1]), residual=residual)
