"""Statistical divergences (§5).

For algorithm outputs that form probability distributions (PageRank being
the paper's flagship case), accuracy of lossy compression is measured with
divergences.  The paper surveys f-divergences and Bregman divergences and
selects **Kullback–Leibler** (the unique divergence in both families);
we implement KL plus the alternatives the survey weighed — Jensen–Shannon,
Hellinger, total variation, Bhattacharyya — so the selection experiment
can be rerun.

All functions accept unnormalized nonnegative score vectors and normalize
internally; KL uses additive smoothing so zero-mass vertices (isolated by
compression) do not yield infinities — matching how the paper compares
PageRank across graphs with identical vertex sets.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize_distribution",
    "kl_divergence",
    "js_divergence",
    "hellinger_distance",
    "total_variation",
    "bhattacharyya_distance",
    "all_divergences",
]


def normalize_distribution(x, *, smoothing: float = 0.0) -> np.ndarray:
    """Nonnegative vector → probability distribution (optional additive
    smoothing before normalization)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("expected a 1-D score vector")
    if len(x) == 0:
        raise ValueError("empty distribution")
    if np.any(x < 0):
        raise ValueError("scores must be nonnegative")
    if smoothing < 0:
        raise ValueError("smoothing must be >= 0")
    x = x + smoothing
    total = x.sum()
    if total <= 0:
        raise ValueError("distribution has zero total mass; use smoothing > 0")
    return x / total


def _pair(p, q, smoothing: float):
    p = normalize_distribution(p, smoothing=smoothing)
    q = normalize_distribution(q, smoothing=smoothing)
    if p.shape != q.shape:
        raise ValueError("distributions must have equal length")
    return p, q


def kl_divergence(p, q, *, smoothing: float = 1e-12, base: float = 2.0) -> float:
    """D_KL(P ‖ Q) = Σ P(i) log(P(i)/Q(i)); ≥ 0, = 0 iff P = Q.

    The deviation of Q (compressed) from P (original); base-2 logs as in
    the paper's definition.
    """
    p, q = _pair(p, q, smoothing)
    mask = p > 0
    return float(np.sum(p[mask] * (np.log(p[mask]) - np.log(q[mask]))) / np.log(base))


def js_divergence(p, q, *, smoothing: float = 1e-12, base: float = 2.0) -> float:
    """Jensen–Shannon divergence: symmetrized, bounded KL (∈ [0, 1] base 2)."""
    p, q = _pair(p, q, smoothing)
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m, smoothing=0.0, base=base) + 0.5 * kl_divergence(
        q, m, smoothing=0.0, base=base
    )


def hellinger_distance(p, q, *, smoothing: float = 0.0) -> float:
    """Hellinger distance ∈ [0, 1]: (1/√2)·‖√P − √Q‖₂."""
    p, q = _pair(p, q, smoothing)
    return float(np.sqrt(np.sum((np.sqrt(p) - np.sqrt(q)) ** 2)) / np.sqrt(2.0))


def total_variation(p, q, *, smoothing: float = 0.0) -> float:
    """Total variation distance ∈ [0, 1]: (1/2)·‖P − Q‖₁."""
    p, q = _pair(p, q, smoothing)
    return float(0.5 * np.abs(p - q).sum())


def bhattacharyya_distance(p, q, *, smoothing: float = 1e-12) -> float:
    """−ln Σ √(P(i)·Q(i)); 0 iff identical."""
    p, q = _pair(p, q, smoothing)
    bc = float(np.sum(np.sqrt(p * q)))
    return float(-np.log(min(max(bc, 1e-300), 1.0)))


def all_divergences(p, q) -> dict[str, float]:
    """Every implemented divergence at once (the §5 selection table)."""
    return {
        "kl": kl_divergence(p, q),
        "js": js_divergence(p, q),
        "hellinger": hellinger_distance(p, q, smoothing=1e-12),
        "total_variation": total_variation(p, q, smoothing=1e-12),
        "bhattacharyya": bhattacharyya_distance(p, q),
    }
