"""Accuracy metrics for lossy compression (§5)."""

from repro.metrics.divergences import (
    normalize_distribution,
    kl_divergence,
    js_divergence,
    hellinger_distance,
    total_variation,
    bhattacharyya_distance,
    all_divergences,
)
from repro.metrics.ordering import (
    count_reordered_pairs,
    reordered_pairs_fraction,
    reordered_neighbor_pairs,
)
from repro.metrics.bfs_quality import (
    CriticalEdges,
    critical_edges,
    critical_edge_preservation,
)
from repro.metrics.distributions import (
    degree_histogram,
    degree_cdf_distance,
    PowerLawFit,
    fit_power_law,
)
from repro.metrics.scalars import relative_change, absolute_change, is_preserved
from repro.metrics.registry import (
    MetricContext,
    MetricEntry,
    metrics_for_adapter,
    register_metric,
    registered_metrics,
    resolve_metric,
    unregister_metric,
)

__all__ = [
    "MetricContext",
    "MetricEntry",
    "register_metric",
    "registered_metrics",
    "resolve_metric",
    "unregister_metric",
    "metrics_for_adapter",
    "normalize_distribution",
    "kl_divergence",
    "js_divergence",
    "hellinger_distance",
    "total_variation",
    "bhattacharyya_distance",
    "all_divergences",
    "count_reordered_pairs",
    "reordered_pairs_fraction",
    "reordered_neighbor_pairs",
    "CriticalEdges",
    "critical_edges",
    "critical_edge_preservation",
    "degree_histogram",
    "degree_cdf_distance",
    "PowerLawFit",
    "fit_power_law",
    "relative_change",
    "absolute_change",
    "is_preserved",
]
