"""Scalar-output accuracy: relative changes (§5's "simple tools").

For algorithms with scalar output — number of connected components, MST
weight, triangle count, matching size — the natural metric is the relative
change after compression.  Kept trivial on purpose; the value of the
analytics subsystem is routing each algorithm class to the right metric.
"""

from __future__ import annotations

import math

__all__ = ["relative_change", "absolute_change", "is_preserved"]


def relative_change(original: float, compressed: float) -> float:
    """(compressed − original) / |original|; 0 when both are 0."""
    if original == 0:
        return 0.0 if compressed == 0 else math.inf
    return (compressed - original) / abs(original)


def absolute_change(original: float, compressed: float) -> float:
    return compressed - original


def is_preserved(original: float, compressed: float, *, rel_tol: float = 0.0) -> bool:
    """Whether a scalar survived compression (exactly, or within rel_tol)."""
    if original == compressed:
        return True
    if rel_tol <= 0:
        return False
    return abs(relative_change(original, compressed)) <= rel_tol
