"""Reordered-pair counts (§5).

For algorithms producing a per-vertex score vector (betweenness, triangle
counts per vertex, PageRank-as-ranking), the paper counts vertex pairs
whose relative order flips after compression:

- :func:`reordered_pairs_fraction` — |PRE| / n² over **all** pairs, exact
  in O(n log n) via merge-sort inversion counting (a pair is reordered iff
  the scores strictly order it one way before and the other way after);
- :func:`reordered_neighbor_pairs` — the paper's cheaper O(m) variant over
  adjacent vertex pairs only.

The paper's caveat applies: compare schemes at equal removed-edge budgets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["count_reordered_pairs", "reordered_pairs_fraction", "reordered_neighbor_pairs"]


def _count_strict_inversions(seq: np.ndarray) -> int:
    """Pairs (i < j) with seq[i] > seq[j] — iterative merge-sort count."""
    seq = np.asarray(seq, dtype=np.float64).copy()
    n = len(seq)
    inversions = 0
    width = 1
    buf = np.empty_like(seq)
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                if seq[i] <= seq[j]:
                    buf[k] = seq[i]
                    i += 1
                else:
                    buf[k] = seq[j]
                    inversions += mid - i
                    j += 1
                k += 1
            buf[k : k + (mid - i)] = seq[i:mid]
            k += mid - i
            buf[k : k + (hi - j)] = seq[j:hi]
            seq[lo:hi] = buf[lo:hi]
        width *= 2
    return inversions


def count_reordered_pairs(before, after) -> int:
    """Number of vertex pairs strictly ordered opposite ways by the two
    score vectors (discordant pairs; ties in either vector don't count).

    O(n log n): sort by (before, after), then inversions of the ``after``
    sequence are exactly the discordant pairs — ties in ``before`` are
    sorted by ``after`` ascending so they contribute no strict inversion.
    """
    before = np.asarray(before, dtype=np.float64)
    after = np.asarray(after, dtype=np.float64)
    if before.shape != after.shape or before.ndim != 1:
        raise ValueError("score vectors must be 1-D and equally long")
    order = np.lexsort((after, before))
    return _count_strict_inversions(after[order])


def reordered_pairs_fraction(before, after) -> float:
    """|PRE| / n² — the paper's normalized reordered-pair count."""
    n = len(np.asarray(before))
    if n == 0:
        return 0.0
    return count_reordered_pairs(before, after) / float(n) ** 2


def reordered_neighbor_pairs(g, before, after) -> float:
    """Fraction of *adjacent* vertex pairs that are reordered — O(m).

    ``g`` supplies the adjacency (use the ORIGINAL graph so all schemes
    are judged over the same pair population).
    """
    before = np.asarray(before, dtype=np.float64)
    after = np.asarray(after, dtype=np.float64)
    if g.num_edges == 0:
        return 0.0
    # inf - inf (both endpoints unreachable, e.g. SSSP distances) gives
    # nan, which correctly reads as "not strictly reordered" below — the
    # errstate just silences the spurious warning.
    with np.errstate(invalid="ignore"):
        du = before[g.edge_src] - before[g.edge_dst]
        dv = after[g.edge_src] - after[g.edge_dst]
        discordant = (du * dv) < 0
    return float(discordant.sum()) / g.num_edges
