"""BFS-specific accuracy: critical edges (§5, Fig. 4).

Graph500-style BFS outputs a parent vector, for which neither reordered
pairs nor divergences make sense.  The paper instead classifies edges of a
traversal from a fixed root:

- **tree edges** — edges of the output BFS tree;
- **potential edges** — edges that could replace a tree edge, i.e. any
  edge connecting a vertex at level L to a vertex at level L+1;
- **critical edges** Ecr = tree ∪ potential — every edge spanning two
  consecutive BFS levels;
- everything else is non-critical (intra-level or unreached).

Compression quality for BFS is |Ẽcr| / |Ecr|: how many critical edges the
compressed graph's own traversal (same root) still has.  §7.2 reports
spanners preserve ~96/75/57/27 % of critical edges at k = 2/8/32/128.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.bfs import bfs
from repro.graphs.csr import CSRGraph

__all__ = ["CriticalEdges", "critical_edges", "critical_edge_preservation"]


@dataclass(frozen=True)
class CriticalEdges:
    """Edge classification of one BFS traversal."""

    root: int
    critical_mask: np.ndarray  # over canonical edge ids
    tree_mask: np.ndarray
    num_reached: int

    @property
    def num_critical(self) -> int:
        return int(self.critical_mask.sum())

    @property
    def num_tree(self) -> int:
        return int(self.tree_mask.sum())

    @property
    def num_potential(self) -> int:
        return self.num_critical - self.num_tree


def critical_edges(g: CSRGraph, root: int) -> CriticalEdges:
    """Classify the canonical edges of ``g`` for a BFS from ``root``."""
    res = bfs(g, root)
    lvl = res.level
    ls, ld = lvl[g.edge_src], lvl[g.edge_dst]
    reached = (ls >= 0) & (ld >= 0)
    critical = reached & (np.abs(ls - ld) == 1)
    # Tree edges: (parent[v], v) for every reached non-root v.
    tree = np.zeros(g.num_edges, dtype=bool)
    reached_v = np.flatnonzero((lvl >= 0) & (np.arange(g.n) != root))
    if len(reached_v):
        from repro.algorithms.triangles import edge_ids_of_pairs

        eids = edge_ids_of_pairs(g, res.parent[reached_v], reached_v)
        tree[eids] = True
    return CriticalEdges(
        root=root,
        critical_mask=critical,
        tree_mask=tree,
        num_reached=res.num_reached,
    )


def critical_edge_preservation(original: CSRGraph, compressed: CSRGraph, root: int) -> float:
    """|Ẽcr| / |Ecr| for traversals from the same root (the §7.2 number)."""
    base = critical_edges(original, root)
    comp = critical_edges(compressed, root)
    if base.num_critical == 0:
        return 1.0
    return comp.num_critical / base.num_critical
