"""The open accuracy-metric registry (§5's metric axis, made declarative).

Metrics declare themselves with :func:`register_metric`, naming the
result adapters (:mod:`repro.algorithms.adapters`) whose outputs they can
score::

    @register_metric("kl_divergence", adapters=("distribution",),
                     aliases=("kl",), summary="Kullback–Leibler divergence")
    def _kl(ctx, original, compressed):
        return float(kl_divergence(original, compressed))

Every metric has the same signature: ``fn(ctx, original, compressed)``
where the values are already adapter-canonicalized and aligned across the
compression's vertex mapping, and ``ctx`` is a :class:`MetricContext`
carrying the graph pair (for metrics like reordered neighbor pairs and
BFS critical edges that consult the adjacency, not just the outputs).

The session and the grid sweep pull compatible metrics from here; the
adapter's ``default_metric`` reproduces the paper's §5 routing when no
metric is named explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.metrics.bfs_quality import critical_edge_preservation
from repro.metrics.divergences import (
    hellinger_distance,
    js_divergence,
    kl_divergence,
    total_variation,
)
from repro.metrics.ordering import (
    reordered_neighbor_pairs,
    reordered_pairs_fraction,
)
from repro.metrics.scalars import absolute_change, relative_change
from repro.utils.registry import AliasNamespace

__all__ = [
    "MetricContext",
    "MetricEntry",
    "register_metric",
    "unregister_metric",
    "resolve_metric",
    "registered_metrics",
    "metrics_for_adapter",
]


@dataclass(frozen=True)
class MetricContext:
    """The graph pair a metric may consult beyond the two output values."""

    original: CSRGraph
    compressed: CSRGraph
    bfs_root: int = 0


@dataclass(frozen=True)
class MetricEntry:
    """Everything the registry knows about one metric."""

    name: str
    fn: Callable  # (ctx, original_value, compressed_value) -> float
    adapters: tuple[str, ...]
    aliases: tuple[str, ...] = ()
    summary: str = ""


_NAMESPACE = AliasNamespace(
    "metric",
    describe=lambda entry: entry.fn.__qualname__,
    # Re-decorating the same function (module reload) is idempotent.
    same=lambda old, new: old.fn is new.fn,
)


def register_metric(
    name: str,
    *,
    adapters: tuple[str, ...] | list[str],
    aliases: tuple[str, ...] | list[str] = (),
    summary: str = "",
):
    """Function decorator adding a metric to the registry.

    ``adapters`` names the result adapters this metric can score; name
    and alias collisions are rejected exactly as in the scheme and
    algorithm registries.
    """
    if not adapters:
        raise ValueError(f"metric {name!r} must declare at least one adapter")

    def decorator(fn):
        entry = MetricEntry(
            name=name.lower(),
            fn=fn,
            adapters=tuple(adapters),
            aliases=tuple(a.lower() for a in aliases),
            summary=summary,
        )
        _NAMESPACE.register(name, entry.aliases, entry)
        return fn

    return decorator


def unregister_metric(name: str) -> None:
    """Remove a metric (and its aliases) from the registry."""
    _NAMESPACE.unregister(name)


def resolve_metric(name: str) -> MetricEntry:
    """Entry for ``name`` (alias-aware); raises on unknown metrics."""
    return _NAMESPACE.get_known(name)


def registered_metrics() -> dict[str, MetricEntry]:
    """Canonical name -> entry, for iteration (docs, round-trip tests)."""
    return _NAMESPACE.items()


def metrics_for_adapter(adapter: str) -> list[MetricEntry]:
    """Every registered metric compatible with one result adapter."""
    return [e for e in registered_metrics().values() if adapter in e.adapters]


def compatible_names(adapter: str) -> list[str]:
    """Canonical names (with aliases parenthesized) for error messages."""
    out = []
    for entry in metrics_for_adapter(adapter):
        label = entry.name
        if entry.aliases:
            label += " (" + ", ".join(entry.aliases) + ")"
        out.append(label)
    return out


# --------------------------------------------------------------------- #
# built-in metrics (§5)
# --------------------------------------------------------------------- #


@register_metric(
    "kl_divergence",
    adapters=("distribution",),
    aliases=("kl",),
    summary="Kullback–Leibler divergence of normalized outputs (Table 5)",
)
def _metric_kl(ctx, original, compressed) -> float:
    return float(kl_divergence(original, compressed))


@register_metric(
    "js_divergence",
    adapters=("distribution",),
    aliases=("js",),
    summary="Jensen–Shannon divergence (symmetric, bounded)",
)
def _metric_js(ctx, original, compressed) -> float:
    return float(js_divergence(original, compressed))


@register_metric(
    "hellinger_distance",
    adapters=("distribution",),
    aliases=("hellinger",),
    summary="Hellinger distance in [0, 1]",
)
def _metric_hellinger(ctx, original, compressed) -> float:
    return float(hellinger_distance(original, compressed, smoothing=1e-12))


@register_metric(
    "total_variation",
    adapters=("distribution",),
    aliases=("tv",),
    summary="total variation distance in [0, 1]",
)
def _metric_tv(ctx, original, compressed) -> float:
    return float(total_variation(original, compressed, smoothing=1e-12))


@register_metric(
    "l2_distance",
    adapters=("distribution", "ordering"),
    aliases=("l2",),
    summary="Euclidean distance of the raw output vectors",
)
def _metric_l2(ctx, original, compressed) -> float:
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(compressed, dtype=np.float64)
    finite = np.isfinite(a) & np.isfinite(b)
    return float(np.linalg.norm(a[finite] - b[finite]))


@register_metric(
    "relative_change",
    adapters=("scalar",),
    aliases=("rel_change",),
    summary="(compressed - original) / |original| (§5's scalar tool)",
)
def _metric_relative_change(ctx, original, compressed) -> float:
    return float(relative_change(float(original), float(compressed)))


@register_metric(
    "absolute_change",
    adapters=("scalar",),
    aliases=("abs_change",),
    summary="compressed - original",
)
def _metric_absolute_change(ctx, original, compressed) -> float:
    return float(absolute_change(float(original), float(compressed)))


@register_metric(
    "reordered_neighbor_pairs",
    adapters=("ordering", "distribution"),
    aliases=("reordered_pairs",),
    summary="fraction of adjacent pairs whose order flips (original adjacency)",
)
def _metric_reordered_neighbor_pairs(ctx, original, compressed) -> float:
    return float(reordered_neighbor_pairs(ctx.original, original, compressed))


@register_metric(
    "reordered_pairs_fraction",
    adapters=("ordering", "distribution"),
    aliases=("reordered_fraction",),
    summary="|PRE| / n² over all vertex pairs (O(n log n))",
)
def _metric_reordered_pairs_fraction(ctx, original, compressed) -> float:
    return float(reordered_pairs_fraction(original, compressed))


@register_metric(
    "jaccard_overlap",
    adapters=("vertex_set",),
    aliases=("jaccard",),
    summary="|A∩B| / |A∪B| of the two vertex sets",
)
def _metric_jaccard(ctx, original, compressed) -> float:
    a, b = frozenset(original), frozenset(compressed)
    union = len(a | b)
    return float(len(a & b) / union) if union else 1.0


@register_metric(
    "size_relative_change",
    adapters=("vertex_set",),
    aliases=("size_change",),
    summary="relative change of the vertex-set size",
)
def _metric_size_change(ctx, original, compressed) -> float:
    return float(relative_change(float(len(original)), float(len(compressed))))


@register_metric(
    "critical_edge_preservation",
    adapters=("traversal",),
    aliases=("critical_edges",),
    summary="|Ẽcr| / |Ecr| for BFS from the session root (§5, Fig. 4)",
)
def _metric_critical_edges(ctx, original, compressed) -> float:
    return float(
        critical_edge_preservation(ctx.original, ctx.compressed, ctx.bfs_root)
    )
