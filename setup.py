"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs fail; this file lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern environments) work everywhere.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
