"""Hypothesis property tests over the compression schemes.

Invariants checked for randomized inputs:

- every edge-deleting scheme returns a *subgraph* on the same vertex set;
- same seed ⇒ bit-identical output (full determinism);
- the edge-once delete mask equals the sequential reference semantics;
- lossless summarization round-trips arbitrary graphs;
- compression ratios live in [0, 1] and respect parameter monotonicity.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compress.spanner import Spanner
from repro.compress.spectral import SpectralSparsifier
from repro.compress.summarization import LossySummarization
from repro.compress.triangle_reduction import TriangleReduction, _edge_once_delete_mask
from repro.compress.uniform import RandomUniformSampling
from repro.graphs.csr import CSRGraph


@st.composite
def small_graphs(draw, max_n=40, max_m=150):
    n = draw(st.integers(min_value=4, max_value=max_n))
    m = draw(st.integers(min_value=3, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return CSRGraph.from_edges(n, src, dst)


SCHEME_FACTORIES = [
    lambda p: RandomUniformSampling(p),
    lambda p: SpectralSparsifier(p),
    lambda p: TriangleReduction(p),
    lambda p: TriangleReduction(p, variant="edge_once"),
    lambda p: Spanner(1 + 7 * p),
]


@given(small_graphs(), st.floats(0.0, 1.0), st.integers(0, 2**31 - 1), st.integers(0, 4))
@settings(max_examples=60, deadline=None)
def test_schemes_return_subgraphs(g, p, seed, which):
    scheme = SCHEME_FACTORIES[which](p)
    sub = scheme.compress(g, seed=seed).graph
    sub.validate()
    assert sub.n == g.n
    assert sub.num_edges <= g.num_edges
    keys = set((g.edge_src * np.int64(g.n) + g.edge_dst).tolist())
    for u, v in zip(sub.edge_src, sub.edge_dst):
        assert int(u) * g.n + int(v) in keys


@given(small_graphs(), st.floats(0.05, 0.95), st.integers(0, 2**31 - 1), st.integers(0, 4))
@settings(max_examples=40, deadline=None)
def test_schemes_deterministic(g, p, seed, which):
    scheme = SCHEME_FACTORIES[which](p)
    a = scheme.compress(g, seed=seed).graph
    b = scheme.compress(g, seed=seed).graph
    assert np.array_equal(a.edge_src, b.edge_src)
    assert np.array_equal(a.edge_dst, b.edge_dst)


@given(
    st.integers(1, 25),
    st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24), st.integers(0, 24)),
             max_size=40),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=80, deadline=None)
def test_edge_once_mask_matches_sequential(num_edges, events, seed):
    """The vectorized first-touch fixpoint == the sequential EO loop."""
    touched = np.array([list(e) for e in events], dtype=np.int64).reshape(-1, 3)
    touched = touched % num_edges
    rng = np.random.default_rng(seed)
    draw_slots = rng.integers(0, 3, size=(len(touched), 1))
    drawn = np.take_along_axis(touched, draw_slots, axis=1)

    considered = np.zeros(num_edges, dtype=bool)
    expected = np.zeros(num_edges, dtype=bool)
    for i in range(len(touched)):
        for e in drawn[i]:
            if not considered[e]:
                expected[e] = True
        considered[touched[i]] = True
    actual = _edge_once_delete_mask(num_edges, touched, drawn)
    assert np.array_equal(expected, actual)


@given(small_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_lossless_summary_roundtrip(g, seed):
    res = LossySummarization(0.0).compress(g, seed=seed)
    assert res.graph.num_edges == g.num_edges
    assert np.array_equal(res.graph.edge_src, g.edge_src)
    assert np.array_equal(res.graph.edge_dst, g.edge_dst)


@given(small_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_lossy_summary_respects_budgets(g, seed):
    eps = 0.5
    res = LossySummarization(eps).compress(g, seed=seed)
    # Per-vertex neighborhood error bounded by eps * degree.
    for v in range(g.n):
        sym = len(np.setxor1d(g.neighbors(v), res.graph.neighbors(v)))
        assert sym <= eps * g.degree(v) + 1e-9


@given(small_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_uniform_ratio_monotone_in_p(g, seed):
    sizes = [
        RandomUniformSampling(p).compress(g, seed=seed).graph.num_edges
        for p in (0.1, 0.5, 0.9)
    ]
    assert sizes[0] <= sizes[1] <= sizes[2]


@given(small_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_eo_tr_caps_at_one_third_plus_slack(g, seed):
    """§6.3: EO can eliminate at most ~a third of the edges."""
    res = TriangleReduction(1.0, variant="edge_once").compress(g, seed=seed)
    # Strict 1/3 holds in expectation; allow the worst-case overlap slack.
    assert res.edges_removed <= np.ceil(g.num_edges / 2) + 1
