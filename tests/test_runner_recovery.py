"""Crash-recovery tests for grid execution: killed/hung workers, flaky
computes, torn and flaky store writes, quarantine after exhausted
retries — every recovered sweep must equal a clean run value-for-value."""

import pytest

from repro.analytics.session import Session
from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan
from repro.runner.parallel import FailedCell, RetryPolicy

SCHEMES = ["uniform(p=0.5)", "spanner(k=4)"]
ALGS = ["pr", "cc"]
FAST_RETRY = {"max_attempts": 4, "backoff_base": 0.01, "jitter": 0.0}


def _comparable(table):
    """The deterministic face of a table (drop wall-clock noise)."""
    return sorted(
        (c.scheme, c.algorithm, c.metric, c.value, c.compression_ratio, c.seed)
        for c in table
    )


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture
def clean_table(plc300):
    return _comparable(Session(plc300, seed=1).grid(SCHEMES, ALGS))


def _faulted_grid(graph, store_dir, faults, *, jobs=2, token_dir=None, retry=None):
    install_plan(FaultPlan(faults=faults, token_dir=token_dir))
    try:
        session = Session(
            graph, seed=1, store=store_dir, jobs=jobs, retry=retry or FAST_RETRY
        )
        table = session.grid(SCHEMES, ALGS)
    finally:
        clear_plan()
    return table, session.last_grid_perf


class TestRetryPolicy:
    def test_of_coerces(self):
        assert RetryPolicy.of(None) == RetryPolicy()
        assert RetryPolicy.of({"max_attempts": 5}).max_attempts == 5
        policy = RetryPolicy(max_attempts=2)
        assert RetryPolicy.of(policy) is policy
        with pytest.raises(TypeError):
            RetryPolicy.of("3 attempts")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0)

    def test_backoff_caps(self):
        import random

        policy = RetryPolicy(backoff_base=1.0, backoff_cap=3.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff(1, rng) == 1.0
        assert policy.backoff(2, rng) == 2.0
        assert policy.backoff(5, rng) == 3.0  # capped


class TestWorkerCrashRecovery:
    def test_killed_worker_mid_sweep_is_bit_identical(
        self, plc300, tmp_path, clean_table
    ):
        faults = (FaultSpec("runner.worker_cell", mode="kill", times=1),)
        table, perf = _faulted_grid(
            plc300, tmp_path / "store", faults, token_dir=str(tmp_path / "tok")
        )
        assert _comparable(table) == clean_table
        assert perf["pool_rebuilds"] >= 1
        assert perf["retries"] >= 1
        assert perf["failed_cells"] == []

    def test_hung_worker_reaped_by_task_timeout(
        self, plc300, tmp_path, clean_table
    ):
        faults = (
            FaultSpec("runner.worker_cell", mode="hang", times=1, delay=20.0),
        )
        retry = {**FAST_RETRY, "task_timeout": 1.0}
        table, perf = _faulted_grid(
            plc300, tmp_path / "store", faults,
            token_dir=str(tmp_path / "tok"), retry=retry,
        )
        assert _comparable(table) == clean_table
        assert perf["pool_rebuilds"] >= 1

    def test_transient_compute_fault_retries_in_pool(
        self, plc300, tmp_path, clean_table
    ):
        faults = (FaultSpec("runner.compute_cell", times=2),)
        table, perf = _faulted_grid(
            plc300, tmp_path / "store", faults, token_dir=str(tmp_path / "tok")
        )
        assert _comparable(table) == clean_table
        assert perf["retries"] == 2

    def test_transient_compute_fault_retries_in_process(
        self, plc300, tmp_path, clean_table
    ):
        faults = (FaultSpec("runner.compute_cell", times=2),)
        table, perf = _faulted_grid(plc300, tmp_path / "store", faults, jobs=1)
        assert _comparable(table) == clean_table
        assert perf["retries"] == 2


class TestStoreFaultRecovery:
    def test_transient_store_write_is_retried(self, plc300, tmp_path, clean_table):
        faults = (FaultSpec("store.put_cells", times=2),)
        table, perf = _faulted_grid(plc300, tmp_path / "store", faults, jobs=1)
        assert _comparable(table) == clean_table
        assert perf["store_write_retries"] == 2
        assert perf["store_write_failures"] == []

    def test_torn_write_is_retried_and_rewritten(
        self, plc300, tmp_path, clean_table
    ):
        faults = (FaultSpec("fileio.atomic_write", mode="torn_write", times=1),)
        table, perf = _faulted_grid(plc300, tmp_path / "store", faults, jobs=1)
        assert _comparable(table) == clean_table
        assert perf["store_write_retries"] >= 1
        # The rewrite replaced the torn record: a warm replay still works.
        warm = Session(plc300, seed=1, store=tmp_path / "store").grid(SCHEMES, ALGS)
        assert _comparable(warm) == clean_table

    def test_exhausted_store_writes_keep_results(self, plc300, tmp_path, clean_table):
        # Every write fails beyond the budget: the sweep must still
        # return full results, with the abandonment on the manifest.
        faults = (FaultSpec("store.put_cells", times=100),)
        table, perf = _faulted_grid(plc300, tmp_path / "store", faults, jobs=1)
        assert _comparable(table) == clean_table
        assert len(perf["store_write_failures"]) > 0
        assert perf["failed_cells"] == []

    def test_read_fault_degrades_to_miss(self, plc300, tmp_path, clean_table):
        store = tmp_path / "store"
        warm_session = Session(plc300, seed=1, store=store)
        warm_session.grid(SCHEMES, ALGS)  # populate
        faults = (FaultSpec("store.get_cells", times=1),)
        install_plan(FaultPlan(faults=faults))
        try:
            session = Session(plc300, seed=1, store=store, retry=FAST_RETRY)
            table = session.grid(SCHEMES, ALGS)
        finally:
            clear_plan()
        assert _comparable(table) == clean_table
        # One hit became a corrupt-miss and was recomputed, not raised.
        assert session.last_grid_perf["cache_misses"] == 1


class TestQuarantine:
    def test_poison_cell_quarantined_not_fatal(self, plc300, tmp_path, clean_table):
        # The first task fails on every attempt (in-process execution is
        # sequential, so invocations 0..2 are all attempts of task 0).
        faults = (FaultSpec("runner.compute_cell", times=3),)
        retry = {"max_attempts": 3, "backoff_base": 0.01, "jitter": 0.0}
        table, perf = _faulted_grid(
            plc300, tmp_path / "store", faults, jobs=1, retry=retry
        )
        assert len(perf["failed_cells"]) == 1
        failed = perf["failed_cells"][0]
        assert failed["attempts"] == 3
        assert "InjectedFault" in failed["error"]
        # Partial results: everything but the quarantined group survived.
        got = _comparable(table)
        assert got  # non-empty
        assert set(got) < set(clean_table)
        # The manifest names the canonical algorithm spelling; the rows
        # use the requested display label — match on the scheme axis and
        # confirm exactly one (scheme, algorithm) group went missing.
        missing = set(clean_table) - set(got)
        assert {row[0] for row in missing} == {failed["scheme"]}
        assert len({(row[0], row[1]) for row in missing}) == 1
        assert failed["algorithm"].startswith("pagerank")

    def test_failed_cell_to_dict(self):
        cell = FailedCell(
            scheme="uniform(p=0.5)", seed=1, algorithm="pr",
            error="InjectedFault: boom", attempts=3,
        )
        data = cell.to_dict()
        assert data["scheme"] == "uniform(p=0.5)" and data["attempts"] == 3


class TestBenchPropagation:
    def test_run_sweep_carries_fault_accounting(self, plc300, tmp_path):
        from repro.runner.harness import SweepSpec, run_sweep

        spec = SweepSpec(
            name="recovery-smoke",
            graphs=("fixture",),
            schemes=("uniform(p=0.5)",),
            algorithms=("pr",),
            seeds=(1,),
        )
        faults = (FaultSpec("runner.compute_cell", times=1),)
        install_plan(FaultPlan(faults=faults))
        try:
            result = run_sweep(
                spec,
                store=tmp_path / "store",
                retry=FAST_RETRY,
                graph_loader=lambda name: plc300,
            )
        finally:
            clear_plan()
        assert result.perf["retries"] == 1
        assert result.perf["failed_cells"] == []
        assert result.perf["metrics"]["repro.runner.task_retries"] == 1
        assert result.perf["metrics"]["repro.runner.failed_cells"] == 0
