"""Tests for divergences, reordered pairs, BFS quality, distributions."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.metrics.bfs_quality import critical_edge_preservation, critical_edges
from repro.metrics.distributions import degree_cdf_distance, degree_histogram, fit_power_law
from repro.metrics.divergences import (
    all_divergences,
    bhattacharyya_distance,
    hellinger_distance,
    js_divergence,
    kl_divergence,
    normalize_distribution,
    total_variation,
)
from repro.metrics.ordering import (
    count_reordered_pairs,
    reordered_neighbor_pairs,
    reordered_pairs_fraction,
)
from repro.metrics.scalars import is_preserved, relative_change


class TestDivergences:
    def test_kl_zero_iff_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        q = np.array([0.5, 0.3, 0.2])
        assert kl_divergence(p, q) > 0

    def test_kl_asymmetric(self):
        p = np.array([0.9, 0.05, 0.05])
        q = np.array([0.4, 0.3, 0.3])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_kl_handles_zeros_via_smoothing(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert np.isfinite(kl_divergence(p, q))

    def test_kl_known_value(self):
        # D(Bern(1/2) || Bern(1/4)) in bits.
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log2(0.5 / 0.25) + 0.5 * np.log2(0.5 / 0.75)
        assert kl_divergence(p, q, smoothing=0.0) == pytest.approx(expected)

    def test_js_symmetric_and_bounded(self):
        p = np.array([0.7, 0.2, 0.1])
        q = np.array([0.1, 0.1, 0.8])
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))
        assert 0.0 <= js_divergence(p, q) <= 1.0

    def test_tv_and_hellinger_bounds(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation(p, q) == pytest.approx(1.0)
        assert hellinger_distance(p, q) == pytest.approx(1.0)

    def test_bhattacharyya_zero_for_identical(self):
        p = np.array([0.25, 0.75])
        assert bhattacharyya_distance(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_all_divergences_keys(self):
        d = all_divergences(np.array([0.5, 0.5]), np.array([0.4, 0.6]))
        assert set(d) == {"kl", "js", "hellinger", "total_variation", "bhattacharyya"}

    def test_normalize_validation(self):
        with pytest.raises(ValueError):
            normalize_distribution(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            normalize_distribution(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            kl_divergence(np.array([1.0]), np.array([0.5, 0.5]))

    @given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_kl_nonnegative_property(self, values):
        rng = np.random.default_rng(0)
        p = np.asarray(values)
        q = rng.random(len(values)) + 0.01
        assert kl_divergence(p, q) >= -1e-9


class TestOrdering:
    def _brute(self, a, b):
        count = 0
        for i, j in itertools.combinations(range(len(a)), 2):
            if (a[i] - a[j]) * (b[i] - b[j]) < 0:
                count += 1
        return count

    def test_known_values(self):
        a = np.arange(10.0)
        assert count_reordered_pairs(a, a) == 0
        assert count_reordered_pairs(a, -a) == 45
        assert reordered_pairs_fraction(a, -a) == pytest.approx(0.45)

    def test_ties_do_not_count(self):
        a = np.array([1.0, 1.0, 2.0])
        b = np.array([2.0, 1.0, 3.0])
        # Pair (0,1) tied in a -> not discordant even though b orders them.
        assert count_reordered_pairs(a, b) == self._brute(a, b) == 0

    @given(
        st.lists(st.integers(0, 8), min_size=2, max_size=40),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, values, seed):
        a = np.asarray(values, dtype=float)
        rng = np.random.default_rng(seed)
        b = rng.integers(0, 8, size=len(a)).astype(float)
        assert count_reordered_pairs(a, b) == self._brute(a, b)

    def test_neighbor_pairs(self, tiny):
        before = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        after = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        # Every adjacent pair flips (no ties).
        assert reordered_neighbor_pairs(tiny, before, after) == 1.0
        assert reordered_neighbor_pairs(tiny, before, before) == 0.0

    def test_empty(self):
        assert reordered_pairs_fraction(np.array([]), np.array([])) == 0.0


class TestBFSQuality:
    def test_fig4_classification(self):
        """Hand-checked classification on a 2-level example.

        root 0 - {1, 2}; 1-2 intra-level; {1,2} - 3.
        """
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(4, [0, 0, 1, 1, 2], [1, 2, 2, 3, 3])
        ce = critical_edges(g, 0)
        # Critical: (0,1), (0,2), (1,3), (2,3). Non-critical: (1,2).
        assert ce.num_critical == 4
        crit = {
            (int(g.edge_src[e]), int(g.edge_dst[e]))
            for e in np.flatnonzero(ce.critical_mask)
        }
        assert crit == {(0, 1), (0, 2), (1, 3), (2, 3)}
        # Tree: 3 edges (n reached - 1).
        assert ce.num_tree == 3
        assert ce.num_potential == 1

    def test_identity_preservation(self, plc300):
        assert critical_edge_preservation(plc300, plc300, 0) == pytest.approx(1.0)

    def test_spanner_preservation_decreases_with_k(self):
        from repro.compress.spanner import Spanner

        g = gen.powerlaw_cluster(500, 6, 0.5, seed=3)
        values = [
            critical_edge_preservation(
                g, Spanner(k).compress(g, seed=1).graph, 0
            )
            for k in (2, 8, 32)
        ]
        assert values[0] >= values[1] >= values[2]
        assert values[0] > 0.4

    def test_tree_edges_always_critical(self, plc300):
        ce = critical_edges(plc300, 5)
        assert np.all(ce.critical_mask[ce.tree_mask])


class TestDistributions:
    def test_histogram_fractions(self, plc300):
        values, fractions = degree_histogram(plc300)
        assert np.all(np.diff(values) > 0)
        assert fractions.sum() == pytest.approx(
            (plc300.degrees > 0).sum() / plc300.n
        )

    def test_cdf_distance_identity(self, plc300):
        assert degree_cdf_distance(plc300, plc300) == 0.0

    def test_cdf_distance_detects_sampling(self, plc300):
        from repro.compress.uniform import RandomUniformSampling

        sub = RandomUniformSampling(0.3).compress(plc300, seed=0).graph
        assert degree_cdf_distance(plc300, sub) > 0.05

    def test_power_law_fit_on_ba(self):
        g = gen.barabasi_albert(2000, 3, seed=0)
        fit = fit_power_law(g)
        assert 1.0 < fit.slope < 4.5
        assert fit.residual > 0

    def test_fit_degenerate(self):
        g = gen.path_graph(2)
        fit = fit_power_law(g)
        assert fit.slope == 0.0


class TestScalars:
    def test_relative_change(self):
        assert relative_change(10, 5) == -0.5
        assert relative_change(0, 0) == 0.0
        assert relative_change(0, 1) == float("inf")

    def test_is_preserved(self):
        assert is_preserved(10, 10)
        assert not is_preserved(10, 9)
        assert is_preserved(10, 9.5, rel_tol=0.1)
