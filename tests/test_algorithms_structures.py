"""MST, matching, coloring, independent sets, k-cores, paths, spectra,
arboricity — against networkx oracles and known closed forms."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.arboricity import estimate_arboricity
from repro.algorithms.coloring import coloring_number, greedy_coloring
from repro.algorithms.independent_set import greedy_mis, luby_mis
from repro.algorithms.kcore import core_numbers
from repro.algorithms.matching import greedy_matching, maximum_matching_size
from repro.algorithms.mst import boruvka, kruskal, minimum_spanning_forest
from repro.algorithms.paths import exact_diameter, pairwise_distance, path_length_stats
from repro.algorithms.spectrum import (
    laplacian_eigenvalues,
    quadratic_form,
    quadratic_form_ratio_bounds,
    spectral_distance,
)
from repro.graphs import generators as gen
from tests.conftest import to_networkx


class TestMST:
    def test_kruskal_vs_networkx(self, weighted300):
        truth = nx.minimum_spanning_tree(to_networkx(weighted300)).size(weight="weight")
        assert kruskal(weighted300).total_weight == pytest.approx(truth)

    def test_boruvka_matches_kruskal(self, weighted300):
        assert boruvka(weighted300).total_weight == pytest.approx(
            kruskal(weighted300).total_weight
        )
        assert boruvka(weighted300).num_trees == kruskal(weighted300).num_trees

    def test_forest_on_disconnected(self):
        g = gen.disjoint_union(gen.path_graph(4), gen.cycle_graph(5))
        res = kruskal(g)
        assert res.num_trees == 2
        assert len(res.edge_ids) == g.n - 2

    def test_unweighted_spanning_tree(self, er300):
        res = kruskal(er300)
        from repro.algorithms.components import connected_components

        cc = connected_components(er300).num_components
        assert len(res.edge_ids) == er300.n - cc

    def test_dispatch(self, weighted300):
        a = minimum_spanning_forest(weighted300, method="kruskal")
        b = minimum_spanning_forest(weighted300, method="boruvka")
        assert a.total_weight == pytest.approx(b.total_weight)
        with pytest.raises(ValueError):
            minimum_spanning_forest(weighted300, method="prim")


class TestMatching:
    def test_greedy_is_valid_matching(self, er300):
        res = greedy_matching(er300)
        touched = set()
        for e in res.edge_ids:
            u, v = int(er300.edge_src[e]), int(er300.edge_dst[e])
            assert u not in touched and v not in touched
            touched |= {u, v}
            assert res.mate[u] == v and res.mate[v] == u

    def test_greedy_is_maximal(self, er300):
        res = greedy_matching(er300)
        # No edge can be added: at least one endpoint of every edge matched.
        for u, v in zip(er300.edge_src, er300.edge_dst):
            assert res.mate[u] != -1 or res.mate[v] != -1

    def test_greedy_at_least_half_of_maximum(self, er300):
        exact = maximum_matching_size(er300)
        assert greedy_matching(er300).size >= exact / 2

    def test_exact_vs_networkx(self, plc300):
        nxg = to_networkx(plc300)
        truth = len(nx.algorithms.matching.max_weight_matching(nxg, maxcardinality=True))
        assert maximum_matching_size(plc300) == truth

    def test_orders(self, weighted300):
        for order in ("id", "random", "weight"):
            res = greedy_matching(weighted300, order=order, seed=1)
            assert res.size > 0
        with pytest.raises(ValueError):
            greedy_matching(weighted300, order="magic")


class TestColoringAndCores:
    def test_core_numbers_vs_networkx(self, plc300):
        ours = core_numbers(plc300).core
        theirs = nx.core_number(to_networkx(plc300))
        assert all(ours[v] == theirs[v] for v in range(plc300.n))

    def test_greedy_coloring_proper_all_orders(self, plc300):
        for order in (None, "degeneracy", "degree", "random"):
            res = greedy_coloring(plc300, order, seed=3)
            assert res.is_proper(plc300)

    def test_coloring_number_definition(self, plc300):
        cn = coloring_number(plc300)
        assert cn == core_numbers(plc300).degeneracy + 1
        # Greedy in reverse degeneracy order achieves it.
        assert greedy_coloring(plc300, "degeneracy").num_colors <= cn

    def test_complete_graph_coloring(self):
        g = gen.complete_graph(6)
        assert coloring_number(g) == 6
        assert greedy_coloring(g, "degeneracy").num_colors == 6

    def test_tree_coloring(self):
        g = gen.balanced_tree(3, 3)
        assert coloring_number(g) == 2

    def test_explicit_order_validation(self, tiny):
        with pytest.raises(ValueError):
            greedy_coloring(tiny, [0, 0, 1, 2, 3])


class TestIndependentSet:
    def _check_is(self, g, iset):
        members = set(iset.tolist())
        for u, v in zip(g.edge_src, g.edge_dst):
            assert not (int(u) in members and int(v) in members)

    def test_greedy_independent_and_maximal(self, er300):
        iset = greedy_mis(er300)
        self._check_is(er300, iset)
        members = set(iset.tolist())
        for v in range(er300.n):
            if v not in members:
                assert any(int(u) in members for u in er300.neighbors(v))

    def test_luby_independent(self, er300):
        iset = luby_mis(er300, seed=0)
        self._check_is(er300, iset)
        assert len(iset) > 0

    def test_star_mis_is_leaves(self, star20):
        assert len(greedy_mis(star20)) == 19


class TestPaths:
    def test_exact_diameter_known(self):
        assert exact_diameter(gen.path_graph(10)) == 9
        assert exact_diameter(gen.cycle_graph(10)) == 5
        assert exact_diameter(gen.complete_graph(5)) == 1

    def test_disconnected_diameter_inf(self):
        g = gen.disjoint_union(gen.path_graph(2), gen.path_graph(2))
        assert exact_diameter(g) == float("inf")

    def test_pairwise_distance(self, weighted300):
        import networkx as nx

        d = pairwise_distance(weighted300, 0, 10)
        truth = nx.shortest_path_length(
            to_networkx(weighted300), 0, 10, weight="weight"
        )
        assert d == pytest.approx(truth)

    def test_sampled_stats_cover_exact(self, er300):
        exact = path_length_stats(er300, num_sources=None)
        sampled = path_length_stats(er300, num_sources=50, seed=2)
        assert sampled.average_length == pytest.approx(exact.average_length, rel=0.2)
        assert sampled.eccentricity_max <= exact.eccentricity_max


class TestSpectrum:
    def test_known_eigenvalues_complete(self):
        # L(K_n) eigenvalues: 0 and n (multiplicity n-1).
        vals = laplacian_eigenvalues(gen.complete_graph(6))
        assert vals[0] == pytest.approx(0.0, abs=1e-8)
        assert np.allclose(vals[1:], 6.0, atol=1e-8)

    def test_zero_eigenvalues_count_components(self):
        g = gen.disjoint_union(gen.cycle_graph(4), gen.cycle_graph(5))
        vals = laplacian_eigenvalues(g)
        assert int((np.abs(vals) < 1e-8).sum()) == 2

    def test_quadratic_form_matches_matrix(self, weighted300):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(weighted300.n)
        from repro.algorithms.spectrum import laplacian

        direct = float(x @ (laplacian(weighted300) @ x))
        assert quadratic_form(weighted300, x) == pytest.approx(direct)

    def test_spectral_distance_zero_for_identical(self, er300):
        assert spectral_distance(er300, er300) == pytest.approx(0.0, abs=1e-9)

    def test_sparsifier_beats_uniform_on_quadratic_forms(self, plc300):
        from repro.compress.spectral import SpectralSparsifier
        from repro.compress.uniform import RandomUniformSampling

        spec = SpectralSparsifier(0.6).compress(plc300, seed=1).graph
        # Equal edge budget for uniform.
        p_keep = spec.num_edges / plc300.num_edges
        uni = RandomUniformSampling(p_keep).compress(plc300, seed=1).graph
        lo_s, hi_s = quadratic_form_ratio_bounds(plc300, spec, seed=3)
        lo_u, hi_u = quadratic_form_ratio_bounds(plc300, uni, seed=3)
        spread_s = max(abs(1 - lo_s), abs(hi_s - 1))
        spread_u = max(abs(1 - lo_u), abs(hi_u - 1))
        assert spread_s < spread_u


class TestArboricity:
    def test_tree(self):
        est = estimate_arboricity(gen.balanced_tree(2, 4))
        assert est.lower <= 1 <= max(est.upper, 1)

    def test_complete_graph(self):
        # α(K_n) = ceil(n/2); degeneracy = n-1.
        est = estimate_arboricity(gen.complete_graph(8))
        assert est.lower <= 4 <= est.upper

    def test_bracket_holds(self, plc300):
        est = estimate_arboricity(plc300)
        assert est.lower <= est.upper
