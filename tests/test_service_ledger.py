"""Tests for the crash-safe job ledger: WAL append/replay semantics,
torn-line tolerance, compaction, queue recovery after restart, and the
full kill -9 subprocess round-trip through ``python -m repro.service``."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.analytics.grid import SweepTable
from repro.service.jobs import JobResult, JobSpec
from repro.service.ledger import JobLedger
from repro.service.queue import DONE, FAILED, JobQueue


def _spec(**overrides) -> JobSpec:
    base = dict(graph="g", schemes=["uniform(p=0.5)"], algorithms=["pr"], seeds=[0])
    base.update(overrides)
    return JobSpec.build(**base)


class _CountingExecutor:
    """Instant stand-in executor; counts executions per job key."""

    def __init__(self, fail_keys=()):
        self.calls: dict[str, int] = {}
        self.fail_keys = set(fail_keys)
        self._lock = threading.Lock()

    def __call__(self, spec, *, store=None, jobs=None, graph_loader=None):
        with self._lock:
            self.calls[spec.job_key] = self.calls.get(spec.job_key, 0) + 1
        if spec.job_key in self.fail_keys:
            raise RuntimeError("synthetic failure")
        return JobResult(spec=spec, table=SweepTable([]), perf={"cache_misses": 0})


class TestJobLedger:
    def test_record_replay_round_trip(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl", durable=False)
        spec = _spec()
        ledger.record("submitted", "j1-abc", key=spec.job_key,
                      spec=spec.to_dict(), submitted_at=123.0)
        ledger.record("running", "j1-abc", attempts=1)
        ledger.record("done", "j1-abc", seconds=0.5, warm=True)
        jobs = ledger.replay()
        assert jobs["j1-abc"]["state"] == "done"
        assert jobs["j1-abc"]["warm"] is True
        assert jobs["j1-abc"]["spec"] == spec.to_dict()
        assert jobs["j1-abc"]["submitted_at"] == 123.0

    def test_requeued_and_failed_transitions(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl", durable=False)
        ledger.record("submitted", "j1-x", key="k", spec=_spec().to_dict())
        ledger.record("running", "j1-x", attempts=1)
        ledger.record("requeued", "j1-x", attempts=1, error="boom")
        assert ledger.replay()["j1-x"]["state"] == "queued"
        ledger.record("failed", "j1-x", error="boom", attempts=2)
        job = ledger.replay()["j1-x"]
        assert job["state"] == "failed" and job["error"] == "boom"
        assert job["attempts"] == 2

    def test_torn_last_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = JobLedger(path, durable=False)
        ledger.record("submitted", "j1-x", key="k", spec=_spec().to_dict())
        ledger.record("done", "j1-x", seconds=0.1, warm=False)
        ledger.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "failed", "id": "j1-x", "err')  # torn append
        jobs = JobLedger(path, durable=False).replay()
        assert jobs["j1-x"]["state"] == "done"  # the tear never happened

    def test_unknown_ids_and_garbage_are_ignored(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"event": "done", "id": "ghost"}\nnot json\n42\n')
        assert JobLedger(path, durable=False).replay() == {}

    def test_compaction_folds_to_snapshots(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = JobLedger(path, durable=False)
        for i in (1, 2):
            jid = f"j{i}-x"
            ledger.record("submitted", jid, key=f"k{i}", spec=_spec().to_dict())
            ledger.record("running", jid, attempts=1)
            ledger.record("done", jid, seconds=0.1, warm=False)
        before = ledger.replay()
        assert ledger.compact() == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["event"] == "snapshot" for line in lines)
        assert ledger.replay() == before
        # The ledger still appends after compaction.
        ledger.record("submitted", "j3-x", key="k3", spec=_spec().to_dict())
        assert len(ledger.replay()) == 3

    def test_missing_file_replays_empty(self, tmp_path):
        ledger = JobLedger(tmp_path / "never-written" / "ledger.jsonl", durable=False)
        os.unlink(ledger.path)
        assert ledger.replay() == {}


class TestQueueRecovery:
    def test_interrupted_jobs_resubmit_on_restart(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        spec = _spec()
        # A dead process's ledger: job accepted and started, never done.
        ledger = JobLedger(path, durable=False)
        ledger.record("submitted", "j1-" + spec.job_key[:10], key=spec.job_key,
                      spec=spec.to_dict(), submitted_at=time.time())
        ledger.record("running", "j1-" + spec.job_key[:10], attempts=1)
        ledger.close()

        executor = _CountingExecutor()
        with JobQueue(workers=1, executor=executor, ledger=path) as q:
            record = q.get("j1-" + spec.job_key[:10])
            assert record is not None
            assert record.wait(30) and record.state == DONE
        assert executor.calls[spec.job_key] == 1

    def test_done_jobs_rerun_and_failed_jobs_rest(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        done_spec, failed_spec = _spec(), _spec(schemes=["spanner(k=4)"])
        ledger = JobLedger(path, durable=False)
        did = "j1-" + done_spec.job_key[:10]
        fid = "j2-" + failed_spec.job_key[:10]
        ledger.record("submitted", did, key=done_spec.job_key,
                      spec=done_spec.to_dict())
        ledger.record("done", did, seconds=0.2, warm=False)
        ledger.record("submitted", fid, key=failed_spec.job_key,
                      spec=failed_spec.to_dict())
        ledger.record("failed", fid, error="poison job", attempts=3)
        ledger.close()

        executor = _CountingExecutor()
        with JobQueue(workers=1, executor=executor, ledger=path) as q:
            done_record = q.get(did)
            assert done_record.wait(30) and done_record.state == DONE
            failed_record = q.get(fid)
            # Restored as history, not re-run.
            assert failed_record.state == FAILED
            assert failed_record.error == "poison job"
            assert failed_record.attempts == 3
            # Fresh ids continue above the replayed ones.
            fresh = q.submit(_spec(schemes=["uniform(p=0.25)"]))
            assert fresh.id.startswith("j3-")
        assert failed_spec.job_key not in executor.calls

    def test_ledger_path_coerced_and_logged(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        executor = _CountingExecutor()
        with JobQueue(workers=1, executor=executor, ledger=path) as q:
            record = q.submit(_spec())
            assert record.wait(30)
            assert q.stats()["ledger"] == str(path)
        events = [json.loads(l)["event"] for l in path.read_text().splitlines()]
        assert events == ["submitted", "running", "done"]

    def test_retry_events_hit_the_ledger(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        spec = _spec()
        executor = _CountingExecutor(fail_keys={spec.job_key})
        with JobQueue(
            workers=1, executor=executor, ledger=path,
            max_attempts=2, backoff_base=0.01,
        ) as q:
            record = q.submit(spec)
            assert record.wait(30) and record.state == FAILED
            assert record.attempts == 2
        events = [json.loads(l)["event"] for l in path.read_text().splitlines()]
        assert events == [
            "submitted", "running", "requeued", "running", "failed",
        ]


class TestKillDashNine:
    def test_service_survives_sigkill(self, tmp_path):
        """Boot the real CLI, run a job, SIGKILL the process, restart:
        the finished job must re-serve warm from the store and an
        interrupted one must re-run to completion."""
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(
            [str(p) for p in sys.path if p] )}
        args = [
            sys.executable, "-m", "repro.service",
            "--store", str(tmp_path / "store"),
            "--ledger", str(tmp_path / "ledger.jsonl"),
            "--port", "0", "--jobs", "1",
        ]

        def boot():
            proc = subprocess.Popen(
                args, env=env, stdout=subprocess.PIPE, text=True
            )
            line = proc.stdout.readline()
            assert "http://" in line, f"unexpected boot line: {line!r}"
            port = line.split("http://")[1].split("/")[0].split(":")[1]
            return proc, f"http://127.0.0.1:{port}"

        def get(base, path):
            with urllib.request.urlopen(base + path, timeout=30) as resp:
                return json.load(resp)

        def post(base, payload):
            req = urllib.request.Request(
                base + "/jobs", data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=30) as resp:
                return json.load(resp)

        def await_done(base, job_id, timeout=60.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                state = get(base, f"/jobs/{job_id}")
                if state["state"] in ("done", "failed"):
                    return state
                time.sleep(0.2)
            raise AssertionError(f"job {job_id} never finished")

        proc, base = boot()
        try:
            first = post(base, {
                "graph": "s-flx", "schemes": ["spanner(k=4)"],
                "algorithms": ["pr"],
            })
            assert await_done(base, first["id"])["state"] == "done"
            # A second job enters the queue; kill before it can finish.
            second = post(base, {
                "graph": "s-flx", "schemes": ["uniform(p=0.5)"],
                "algorithms": ["cc"],
            })
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(30)

        proc, base = boot()
        try:
            jobs = {j["id"]: j for j in get(base, "/jobs")}
            assert first["id"] in jobs and second["id"] in jobs
            replayed = await_done(base, first["id"])
            assert replayed["state"] == "done"
            # Same computation, served from the warm store this time.
            assert replayed["warm"] is True
            rerun = await_done(base, second["id"])
            assert rerun["state"] == "done"
            result = get(base, f"/jobs/{second['id']}/result")
            assert result["cells"]
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(30)
