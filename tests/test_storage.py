"""Tests for storage-reduction accounting."""

import pytest

from repro.analytics.storage import storage_report
from repro.compress.spectral import SpectralSparsifier
from repro.compress.summarization import LossySummarization
from repro.compress.uniform import RandomUniformSampling
from repro.graphs import generators as gen


class TestStorageReport:
    def test_identity_scheme_zero_reduction(self, er300):
        res = RandomUniformSampling(1.0).compress(er300, seed=0)
        report = storage_report(res)
        assert report.reduction == pytest.approx(0.0)
        assert report.ratio == pytest.approx(1.0)

    def test_uniform_reduction_tracks_edges(self, er300):
        res = RandomUniformSampling(0.5).compress(er300, seed=1)
        report = storage_report(res)
        # Bytes scale with edges (indptr is shared overhead).
        assert 0.3 < report.reduction < 0.6

    def test_spectral_weights_count_as_overhead(self, plc300):
        """Reweighted sparsifiers pay 8 bytes/edge: at equal edge counts
        their stored bytes exceed the unweighted scheme's."""
        spec = SpectralSparsifier(0.5).compress(plc300, seed=2)
        m_kept = spec.graph.num_edges / plc300.num_edges
        uni = RandomUniformSampling(m_kept).compress(plc300, seed=2)
        r_spec = storage_report(spec)
        r_uni = storage_report(uni)
        if abs(spec.graph.num_edges - uni.graph.num_edges) < 0.02 * plc300.num_edges:
            assert r_spec.compressed_bytes > r_uni.compressed_bytes

    def test_summary_charged_its_encoding(self, plc300):
        res = LossySummarization(0.3).compress(plc300, seed=3)
        report = storage_report(res)
        summary = res.extras["summary"]
        expected = summary.mapping.nbytes + 16 * summary.storage_edges()
        assert report.compressed_bytes == expected

    def test_empty_graph(self):
        g = gen.erdos_renyi(5, m=0, seed=0)
        res = RandomUniformSampling(0.5).compress(g, seed=0)
        report = storage_report(res)
        assert report.reduction == pytest.approx(0.0, abs=1.0)
