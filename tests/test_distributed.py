"""Tests for the simulated distributed compression pipeline."""

import numpy as np
import pytest

from repro.compress.spectral import SpectralSparsifier
from repro.compress.uniform import RandomUniformSampling
from repro.distributed.engine import distributed_spectral, distributed_uniform_sampling
from repro.distributed.partition import EdgePartition
from repro.distributed.rma import RMAError, Window
from repro.graphs import generators as gen


class TestPartition:
    def test_contiguous_tiles_exactly(self, er300):
        part = EdgePartition.contiguous(er300, 7)
        part.validate(er300.num_edges)
        assert sum(hi - lo for lo, hi in part.ranges) == er300.num_edges

    def test_balanced_tiles_exactly(self):
        g = gen.rmat(9, 8, seed=0)
        part = EdgePartition.balanced(g, 5)
        part.validate(g.num_edges)
        # Balanced partitions should not be wildly skewed in weight.
        deg = g.degrees
        w = deg[g.edge_src] + deg[g.edge_dst]
        loads = [w[lo:hi].sum() for lo, hi in part.ranges]
        assert max(loads) < 3 * min(loads)

    def test_owner_of(self, er300):
        part = EdgePartition.contiguous(er300, 4)
        for rank, (lo, hi) in enumerate(part.ranges):
            assert part.owner_of(lo) == rank
            assert part.owner_of(hi - 1) == rank
        with pytest.raises(KeyError):
            part.owner_of(er300.num_edges)

    def test_more_ranks_than_edges(self):
        g = gen.path_graph(3)
        part = EdgePartition.contiguous(g, 10)
        part.validate(g.num_edges)

    def test_validation(self, er300):
        with pytest.raises(ValueError):
            EdgePartition.contiguous(er300, 0)


class TestWindow:
    def test_put_get_roundtrip(self):
        win = Window(10, dtype="int64")
        win.fence()
        win.put(2, [5, 6, 7])
        assert win.get(2, 3).tolist() == [5, 6, 7]
        win.fence()

    def test_access_requires_epoch_or_lock(self):
        win = Window(4)
        with pytest.raises(RMAError, match="epoch"):
            win.put(0, [1])
        win.lock(0)
        win.put(0, [1])
        win.unlock(0)
        with pytest.raises(RMAError):
            win.get(0, 1)

    def test_lock_discipline(self):
        win = Window(4)
        win.lock(1)
        with pytest.raises(RMAError, match="locked"):
            win.lock(2)
        with pytest.raises(RMAError, match="lock"):
            win.unlock(2)
        win.unlock(1)

    def test_bounds_checked(self):
        win = Window(4)
        win.fence()
        with pytest.raises(RMAError):
            win.put(3, [1, 2])
        with pytest.raises(RMAError):
            win.get(-1, 2)

    def test_accumulate_ops(self):
        win = Window(3, dtype="int64")
        win.fence()
        win.put(0, [1, 5, 3])
        win.accumulate(0, [2, 2, 2], op="sum")
        assert win.get(0, 3).tolist() == [3, 7, 5]
        win.accumulate(0, [4, 0, 9], op="max")
        assert win.get(0, 3).tolist() == [4, 7, 9]
        win.accumulate(0, [1, 1, 1], op="min")
        assert win.get(0, 3).tolist() == [1, 1, 1]
        with pytest.raises(ValueError):
            win.accumulate(0, [1], op="xor")

    def test_shared_memory_backend(self):
        with Window(8, dtype="uint8", shared=True) as win:
            win.fence()
            win.put(0, [1] * 8)
            attached = Window(8, dtype="uint8", shared=True, name=win.name)
            attached.fence()
            assert attached.get(0, 8).tolist() == [1] * 8
            attached._shm.close()

    def test_failed_construction_leaves_no_segment(self, monkeypatch):
        # create=True succeeds, then the ndarray wrap blows up: without
        # cleanup the segment would outlive the process (nothing holds a
        # Window to close), leaking /dev/shm until reboot.
        from multiprocessing import shared_memory

        from repro.distributed import rma as rma_mod

        created: list[str] = []
        real = shared_memory.SharedMemory

        class Recording(real):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(self.name)

        class ExplodingNumpy:
            def __getattr__(self, name):
                return getattr(np, name)

            @staticmethod
            def ndarray(*args, **kwargs):
                raise RuntimeError("simulated wrap failure")

        monkeypatch.setattr(shared_memory, "SharedMemory", Recording)
        monkeypatch.setattr(rma_mod, "np", ExplodingNumpy())
        with pytest.raises(RuntimeError, match="wrap failure"):
            Window(8, dtype="uint8", shared=True)
        monkeypatch.undo()
        assert created, "test never created a segment"
        for name in created:
            with pytest.raises(FileNotFoundError):
                seg = real(name=name)
                seg.close()  # pragma: no cover — only on leak

    def test_close_is_idempotent(self):
        win = Window(8, dtype="uint8", shared=True)
        name = win.name
        win.close()
        assert win.name is None
        win.close()  # second close: no-op, no error
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_survives_external_unlink(self):
        win = Window(8, dtype="uint8", shared=True)
        win._shm.unlink()  # e.g. a sibling raced us to cleanup
        win.close()  # FileNotFoundError swallowed
        assert win.name is None


class TestDistributedEngine:
    def test_rank_count_invariance(self, er300):
        graphs = [
            distributed_uniform_sampling(er300, 0.5, num_ranks=r, seed=7).result.graph
            for r in (1, 3, 8)
        ]
        for g in graphs[1:]:
            assert np.array_equal(graphs[0].edge_src, g.edge_src)

    def test_backend_invariance(self, er300):
        a = distributed_uniform_sampling(
            er300, 0.4, num_ranks=4, seed=2, backend="inprocess"
        ).result.graph
        b = distributed_uniform_sampling(
            er300, 0.4, num_ranks=4, seed=2, backend="process"
        ).result.graph
        assert np.array_equal(a.edge_src, b.edge_src)

    def test_matches_single_node_scheme(self, er300):
        dist = distributed_uniform_sampling(er300, 0.6, num_ranks=5, seed=9).result.graph
        single = RandomUniformSampling(0.6).compress(er300, seed=9).graph
        assert np.array_equal(dist.edge_src, single.edge_src)

    def test_spectral_matches_single_node(self, plc300):
        dist = distributed_spectral(plc300, 0.5, num_ranks=3, seed=4).result.graph
        single = SpectralSparsifier(0.5).compress(plc300, seed=4).graph
        assert np.array_equal(dist.edge_src, single.edge_src)
        assert np.allclose(dist.edge_weights, single.edge_weights)

    def test_per_rank_accounting(self, er300):
        res = distributed_uniform_sampling(er300, 0.5, num_ranks=4, seed=1)
        assert sum(res.edges_per_rank) == er300.num_edges
        assert sum(res.deleted_per_rank) == er300.num_edges - res.result.graph.num_edges

    def test_unknown_backend(self, er300):
        with pytest.raises(ValueError):
            distributed_uniform_sampling(er300, 0.5, backend="mpi")

    def test_directed_web_graph(self):
        """Fig. 8 runs on directed crawls."""
        g = gen.rmat(9, 6, seed=0, directed=True)
        res = distributed_uniform_sampling(g, 0.4, num_ranks=4, seed=3)
        assert res.result.graph.directed
        assert res.result.graph.num_edges < g.num_edges
