"""The edge-delta batch model: canonical form, validation, round trips.

``EdgeDelta`` is the value object of the streaming subsystem — these
tests pin its contract: two batches describing the same edit are equal
(and share a delta id) regardless of input order, every malformed batch
fails with the offender named, and the JSON / NPZ / text-stream round
trips are lossless.
"""

import numpy as np
import pytest

from repro.stream.delta import EdgeDelta, read_stream, write_stream


class TestCanonicalForm:
    def test_input_order_is_irrelevant(self):
        a = EdgeDelta.build(inserts=[(3, 1), (0, 2)], deletes=[(5, 4)])
        b = EdgeDelta.build(inserts=[(2, 0), (1, 3)], deletes=[(4, 5)])
        assert a == b
        assert a.delta_id == b.delta_id

    def test_undirected_endpoints_are_lo_hi(self):
        d = EdgeDelta.build(inserts=[(7, 2)])
        assert d.insert_src.tolist() == [2]
        assert d.insert_dst.tolist() == [7]

    def test_directed_endpoints_are_kept(self):
        d = EdgeDelta.build(inserts=[(7, 2)], directed=True)
        assert (d.insert_src[0], d.insert_dst[0]) == (7, 2)

    def test_weights_follow_their_edges_through_the_sort(self):
        d = EdgeDelta.build(inserts=[(3, 1, 30.0), (0, 2, 10.0)])
        assert d.insert_src.tolist() == [0, 1]
        assert d.insert_weights.tolist() == [10.0, 30.0]

    def test_delta_id_tracks_content(self):
        base = EdgeDelta.build(inserts=[(0, 1)])
        assert base.delta_id != EdgeDelta.build(inserts=[(0, 2)]).delta_id
        assert base.delta_id != EdgeDelta.build(deletes=[(0, 1)]).delta_id
        assert (
            base.delta_id
            != EdgeDelta.build(inserts=[(0, 1)], directed=True).delta_id
        )
        assert (
            base.delta_id
            != EdgeDelta.build(inserts=[(0, 1)], num_vertices=9).delta_id
        )

    def test_arrays_are_frozen(self):
        d = EdgeDelta.build(inserts=[(0, 1)], updates=[(2, 3, 1.0)])
        for arr in (d.insert_src, d.update_weights):
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_size_and_empty(self):
        d = EdgeDelta.build(
            inserts=[(0, 1)], deletes=[(2, 3)], updates=[(4, 5, 1.0)]
        )
        assert (d.num_inserts, d.num_deletes, d.num_updates) == (1, 1, 1)
        assert d.size == 3
        assert not d.is_empty
        assert EdgeDelta.empty().is_empty
        # growth-only batches are not empty: they still change the graph
        assert not EdgeDelta.empty(num_vertices=5).is_empty

    def test_touched_vertices(self):
        d = EdgeDelta.build(
            inserts=[(0, 1)], deletes=[(2, 3)], updates=[(1, 4, 1.0)]
        )
        assert d.touched_vertices().tolist() == [0, 1, 2, 3, 4]


class TestValidation:
    def test_self_loop_named(self):
        with pytest.raises(ValueError, match=r"insert of self-loop \(3, 3\)"):
            EdgeDelta.build(inserts=[(3, 3)])

    def test_negative_endpoint_named(self):
        with pytest.raises(ValueError, match=r"delete endpoint of edge"):
            EdgeDelta.build(deletes=[(-1, 2)])

    def test_out_of_range_vs_num_vertices_named(self):
        with pytest.raises(ValueError, match=r"out of range for num_vertices=3"):
            EdgeDelta.build(inserts=[(0, 5)], num_vertices=3)

    def test_duplicate_within_op_named(self):
        # (1, 0) and (0, 1) are the same undirected edge.
        with pytest.raises(ValueError, match=r"duplicate insert of edge \(0, 1\)"):
            EdgeDelta.build(inserts=[(1, 0), (0, 1)])

    def test_edge_in_two_op_sets_named(self):
        with pytest.raises(ValueError, match=r"appears in both insert"):
            EdgeDelta.build(inserts=[(0, 1)], deletes=[(1, 0)])

    def test_mixed_insert_arity_rejected(self):
        with pytest.raises(ValueError, match="all \\(u, v\\) or all"):
            EdgeDelta.build(inserts=[(0, 1), (2, 3, 1.0)])

    def test_update_needs_weight(self):
        with pytest.raises(ValueError, match="updates must be"):
            EdgeDelta.build(updates=[(0, 1)])

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(ValueError, match="num_vertices must be >= 0"):
            EdgeDelta.build(num_vertices=-1)


class TestRoundTrips:
    def make(self, weighted=False):
        inserts = [(0, 1, 1.5), (2, 3, 0.25)] if weighted else [(0, 1), (2, 3)]
        return EdgeDelta.build(
            inserts=inserts,
            deletes=[(4, 5)],
            updates=[(6, 7, 2.0)],
            num_vertices=10,
        )

    @pytest.mark.parametrize("weighted", [False, True])
    def test_dict_roundtrip(self, weighted):
        d = self.make(weighted)
        back = EdgeDelta.from_dict(d.to_dict())
        assert back == d
        assert back.delta_id == d.delta_id

    def test_dict_rejects_unknown_fields(self):
        data = self.make().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown delta fields"):
            EdgeDelta.from_dict(data)

    def test_dict_rejects_future_schema(self):
        data = self.make().to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version 999"):
            EdgeDelta.from_dict(data)

    @pytest.mark.parametrize("weighted", [False, True])
    def test_npz_roundtrip(self, weighted, tmp_path):
        d = self.make(weighted)
        path = d.save_npz(tmp_path / "d.npz")
        back = EdgeDelta.load_npz(path)
        assert back == d
        assert back.delta_id == d.delta_id

    def test_npz_rejects_non_delta_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ValueError, match="not an edge-delta file"):
            EdgeDelta.load_npz(path)


class TestStreamFiles:
    def test_stream_roundtrip(self, tmp_path):
        deltas = [
            EdgeDelta.build(inserts=[(0, 1), (1, 2)], num_vertices=4),
            EdgeDelta.build(deletes=[(0, 1)], inserts=[(2, 3)]),
        ]
        path = write_stream(deltas, tmp_path / "s.txt")
        back = read_stream(path)
        assert back == deltas
        assert [d.delta_id for d in back] == [d.delta_id for d in deltas]

    def test_weighted_stream_roundtrip(self, tmp_path):
        deltas = [
            EdgeDelta.build(inserts=[(0, 1, 0.5)], num_vertices=3),
            EdgeDelta.build(updates=[(0, 1, 2.5)]),
        ]
        back = read_stream(write_stream(deltas, tmp_path / "w.txt"))
        assert back == deltas

    def test_plain_edge_list_is_a_one_batch_stream(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2\n\n% konect comment\n2 3\n")
        (delta,) = read_stream(path)
        assert delta.num_inserts == 3
        assert delta.num_deletes == 0

    def test_header_directedness_and_override(self, tmp_path):
        path = tmp_path / "dir.txt"
        path.write_text("# repro edge stream: directed=1\n+ 2 0\ncommit\n")
        (delta,) = read_stream(path)
        assert delta.directed
        assert (delta.insert_src[0], delta.insert_dst[0]) == (2, 0)
        (und,) = read_stream(path, directed=False)
        assert not und.directed

    def test_commit_n_grows_the_vertex_set(self, tmp_path):
        path = tmp_path / "n.txt"
        path.write_text("+ 0 1\ncommit n=9\n")
        (delta,) = read_stream(path)
        assert delta.num_vertices == 9

    def test_invalid_batch_names_the_commit_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("+ 0 1\n- 1 0\ncommit\n")
        with pytest.raises(ValueError, match=r"bad.txt:3: invalid batch"):
            read_stream(path)

    def test_delete_row_with_weight_rejected(self, tmp_path):
        path = tmp_path / "delw.txt"
        path.write_text("- 0 1 2.5\n")
        with pytest.raises(ValueError, match="carries a weight"):
            read_stream(path)

    def test_update_row_without_weight_rejected(self, tmp_path):
        path = tmp_path / "updw.txt"
        path.write_text("= 0 1\n")
        with pytest.raises(ValueError, match="needs a weight"):
            read_stream(path)

    def test_malformed_commit_row_named(self, tmp_path):
        path = tmp_path / "badcommit.txt"
        path.write_text("+ 0 1\ncommit n=five\n")
        with pytest.raises(ValueError, match=r"badcommit.txt:2: malformed commit"):
            read_stream(path)

    def test_mixed_directedness_rejected_on_write(self, tmp_path):
        deltas = [
            EdgeDelta.build(inserts=[(0, 1)]),
            EdgeDelta.build(inserts=[(1, 2)], directed=True),
        ]
        with pytest.raises(ValueError, match="share the stream's directedness"):
            write_stream(deltas, tmp_path / "mixed.txt")
