"""Observability wired through the stack: traced parallel grids, BENCH
resource fields, and the Prometheus exposition of a live service."""

import json
import urllib.error
import urllib.request

import pytest

from repro.analytics.session import Session
from repro.obs.spans import disable_tracing, tracer, validate_trace
from repro.runner.harness import run_sweep, write_bench_record

SCHEMES = ["uniform(p=0.5)", "spanner(k=8)"]
ALGS = ["pr", "cc"]


@pytest.fixture(autouse=True)
def tracing_off_afterwards():
    """Session(trace=...) flips the process-global tracer; undo it."""
    yield
    disable_tracing()
    tracer().clear()


class TestTracedParallelGrid:
    def test_trace_spans_two_processes_and_stitches(self, plc300, tmp_path):
        trace_path = tmp_path / "trace.json"
        session = Session(
            plc300,
            seed=1,
            store=tmp_path / "store",
            jobs=2,
            trace=trace_path,
        )
        session.grid(SCHEMES, ALGS)
        path = session.write_trace()
        trace = json.loads(path.read_text())
        assert validate_trace(trace) == []

        events = trace["traceEvents"]
        pids = {e["pid"] for e in events}
        # Parent + at least two worker processes on one timeline.
        assert len(pids) >= 3
        names = {e["name"] for e in events}
        assert {"grid", "worker.load_snapshot", "worker.cell", "compress"} <= names

        # Every worker span is reachable from the parent's grid span:
        # stitching re-parented worker roots under the scheduling span.
        by_id = {e["args"]["span_id"]: e for e in events}
        grid_pid = trace["metadata"]["main_pid"]
        for event in events:
            if event["pid"] == grid_pid:
                continue
            node = event
            while node["args"]["parent_id"] is not None:
                node = by_id[node["args"]["parent_id"]]
            assert node["pid"] == grid_pid, (
                f"worker span {event['name']} is not stitched under the parent"
            )

    def test_worker_perf_fields(self, plc300, tmp_path):
        session = Session(plc300, seed=1, store=tmp_path / "store", jobs=2)
        session.grid(SCHEMES, ALGS)
        workers = session.last_grid_perf["workers"]
        assert len(workers) >= 1  # >=1 worker pid (2 unless one grabbed all)
        assert sum(w["cells"] for w in workers.values()) == len(SCHEMES) * len(
            ALGS
        )
        for stats in workers.values():
            assert stats["load_seconds"] > 0.0
            assert stats["peak_rss_bytes"] > 0

    def test_trace_true_enables_without_path(self, plc300):
        session = Session(plc300, seed=1, trace=True)
        session.compress("uniform(p=0.5)")
        assert len(tracer()) >= 1
        with pytest.raises(ValueError, match="path"):
            session.write_trace()

    def test_untraced_session_records_nothing(self, plc300):
        tracer().clear()
        session = Session(plc300, seed=1)
        session.compress("uniform(p=0.5)")
        assert len(tracer()) == 0


class TestBenchResourceFields:
    def test_sweep_record_carries_resources(self, tmp_path):
        result = run_sweep("smoke", store=tmp_path / "store")
        record_path = write_bench_record(result, tmp_path / "out")
        record = json.loads(record_path.read_text())
        assert record["peak_rss_bytes"] > 0
        resources = record["resources"]
        assert resources["peak_rss_bytes"] == record["peak_rss_bytes"]
        assert resources["cpu_seconds"] > 0.0
        assert "gc" in resources
        # Canonical registry spellings next to the legacy flat keys.
        metrics = record["metrics"]
        assert metrics["repro.runner.cells_scheduled"] == record["cells_scheduled"]
        assert metrics["repro.store.writes"] == record["store_stats"]["writes"]

    def test_parallel_sweep_records_worker_loads(self, tmp_path):
        result = run_sweep("smoke", store=tmp_path / "store", jobs=2)
        workers = result.perf["workers"]
        assert workers, "parallel sweep must report per-worker stats"
        for stats in workers.values():
            assert stats["load_seconds"] > 0.0
            assert stats["peak_rss_bytes"] > 0
        total_cells = sum(w["cells"] for w in workers.values())
        assert total_cells == result.perf["cells_scheduled"]


class TestServiceExposition:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        from repro.service.http import start_in_thread
        from repro.service.queue import JobQueue

        queue = JobQueue(tmp_path_factory.mktemp("svc") / "store", workers=1)
        server, thread = start_in_thread(queue)
        base = "http://{}:{}".format(*server.server_address[:2])
        yield base, queue
        server.shutdown()
        thread.join(30)
        queue.close()

    def _get(self, base, path, headers=None):
        request = urllib.request.Request(base + path, headers=headers or {})
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), resp.read()

    def _run_one_job(self, base, queue):
        import time

        body = json.dumps(
            {
                "graph": "s-flx",
                "schemes": ["uniform(p=0.5)"],
                "algorithms": ["pr"],
                "seeds": [0],
            }
        ).encode()
        request = urllib.request.Request(
            base + "/jobs", data=body, headers={"Content-Type": "application/json"}
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            job_id = json.loads(resp.read())["id"]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, _, raw = self._get(base, f"/jobs/{job_id}")
            if json.loads(raw)["state"] in ("done", "failed"):
                return
            time.sleep(0.05)
        raise AssertionError("job never finished")

    def test_prometheus_exposition(self, service):
        base, queue = service
        self._run_one_job(base, queue)

        status, ctype, body = self._get(base, "/metrics?format=prometheus")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        text = body.decode()
        assert "# TYPE repro_service_jobs_submitted counter" in text
        assert "# TYPE repro_service_latency_seconds_cold histogram" in text
        assert 'repro_service_latency_seconds_cold_bucket{le="+Inf"}' in text
        # The exposition is backed by the same registry the JSON view rolls up.
        _, _, raw = self._get(base, "/metrics")
        stats = json.loads(raw)
        submitted = stats["metrics"]["repro.service.jobs_submitted"]["value"]
        assert f"repro_service_jobs_submitted {submitted}" in text

    def test_accept_header_negotiates_prometheus(self, service):
        base, _ = service
        status, ctype, body = self._get(
            base, "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200 and ctype.startswith("text/plain")
        assert b"# TYPE" in body

    def test_json_view_carries_canonical_metrics_block(self, service):
        base, _ = service
        status, _, raw = self._get(base, "/metrics")
        stats = json.loads(raw)
        assert status == 200
        # Legacy keys intact...
        assert set(stats["states"]) == {"queued", "running", "done", "failed"}
        # ...with the canonical registry names alongside.
        assert "repro.service.jobs_submitted" in stats["metrics"]
        assert any(k.startswith("repro.store.") for k in stats["metrics"])

    def test_unknown_format_is_400(self, service):
        base, _ = service
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(base, "/metrics?format=xml")
        assert err.value.code == 400

    def test_dashboard_renders_sparkline_column(self, service):
        base, _ = service
        status, ctype, body = self._get(base, "/")
        assert status == 200 and ctype.startswith("text/html")
        assert "distribution" in body.decode()
