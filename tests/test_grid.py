"""Tests for Session.grid scheme×algorithm×metric sweeps, the SweepTable
transport round trips, and mapping-aware score alignment."""

import numpy as np
import pytest

from repro.algorithms import build_algorithm, register_algorithm, unregister_algorithm
from repro.analytics import Session, SweepTable
from repro.analytics.grid import GridCell
from repro.compress.mappings import vertex_alignment
from repro.metrics.divergences import kl_divergence


@pytest.fixture
def counting_battery():
    """Four temporary registered algorithms that count their executions."""
    calls = {}

    def make(name):
        calls[name] = 0

        def fn(g, *, scale=1):
            calls[name] += 1
            return g.num_edges * scale

        fn.__name__ = name
        return fn

    names = ["tmp_ga", "tmp_gb", "tmp_gc", "tmp_gd"]
    for n in names:
        register_algorithm(n, adapter="scalar")(make(n))
    yield names, calls
    for n in names:
        unregister_algorithm(n)


SCHEMES3 = ["uniform(p=0.2)", "uniform(p=0.5)", "spanner(k=8)"]


class TestGrid:
    def test_baseline_once_across_whole_grid(self, plc300, counting_battery):
        names, calls = counting_battery
        session = Session(plc300, seed=0)
        table = session.grid(SCHEMES3, names)
        # ≥3 schemes × ≥4 algorithms: each original-graph baseline ran
        # exactly once — one cache miss per algorithm, and each counting
        # function executed 1 (baseline) + 3 (schemes) times.
        assert session.baseline_computations == len(names)
        assert all(calls[n] == 1 + len(SCHEMES3) for n in names)
        assert len(table) == len(SCHEMES3) * len(names)
        # A second grid over the same session adds zero baseline work.
        session.grid(SCHEMES3[:2], names)
        assert session.baseline_computations == len(names)

    def test_long_format_axes(self, plc300):
        session = Session(plc300, seed=0)
        table = session.grid(SCHEMES3, ["pr", "cc", "tc", "sssp"])
        assert len(table) == 3 * 4
        assert table.schemes()[:2] == ["uniform(p=0.2)", "uniform(p=0.5)"]
        assert table.schemes()[2].startswith("spanner(k=8")
        assert len(table.algorithms()) == 4
        # Battery short names keep their paper labels; registry-only
        # algorithms are labeled by their canonical bound spec.
        assert {"pr", "cc", "tc", "sssp(source=0)"} == set(table.algorithms())
        cell = table.filter(scheme="uniform(p=0.5)", metric="kl_divergence").rows[0]
        assert cell.algorithm == "pr"
        assert 0 < cell.compression_ratio < 1

    def test_to_dict_round_trip(self, plc300):
        table = Session(plc300, seed=0).grid(SCHEMES3, ["pr", "cc"])
        assert SweepTable.from_dict(table.to_dict()) == table

    def test_to_csv_round_trip(self, plc300, tmp_path):
        table = Session(plc300, seed=0).grid(SCHEMES3, ["pr", "cc"])
        assert SweepTable.from_csv(table.to_csv()) == table
        path = tmp_path / "grids" / "table.csv"
        table.to_csv(path)
        assert SweepTable.from_csv(path) == table

    def test_duplicate_schemes_and_algorithms_run_once(self, plc300, counting_battery):
        names, calls = counting_battery
        session = Session(plc300, seed=0)
        table = session.grid(
            ["uniform(p=0.5)", "uniform(0.5)", "uniform(p=0.5)"],
            [names[0], names[0], build_algorithm(names[0])],
        )
        assert len(table) == 1  # one deduped scheme × one deduped algorithm
        assert calls[names[0]] == 2  # baseline + one compressed run

    def test_metric_selection_and_filtering(self, plc300):
        session = Session(plc300, seed=0)
        table = session.grid(
            ["uniform(p=0.5)"], ["pr", "cc"], ["kl", "l2", "relative_change"]
        )
        by_alg = {a: {c.metric for c in table.filter(algorithm=a)} for a in table.algorithms()}
        assert by_alg["pr"] == {"kl_divergence", "l2_distance"}
        assert by_alg["cc"] == {"relative_change"}

    def test_metric_matching_nothing_rejected(self, plc300):
        session = Session(plc300, seed=0)
        with pytest.raises(ValueError, match="apply to no algorithm"):
            session.grid(["uniform(p=0.5)"], ["cc"], ["kl"])
        with pytest.raises(ValueError, match="unknown metric"):
            session.grid(["uniform(p=0.5)"], ["cc"], ["wasserstein"])

    def test_default_battery_grid(self, plc300):
        session = Session(plc300, seed=0)
        table = session.grid(["uniform(p=0.5)", "spanner(k=4)"])
        # bfs / pr / cc / tc with their §5 default metrics.
        assert set(table.metrics()) == {
            "critical_edge_preservation",
            "kl_divergence",
            "relative_change",
        }
        assert len(table) == 2 * 4

    def test_mixed_legacy_algorithms(self, plc300):
        from repro.analytics.evaluation import AlgorithmSpec

        session = Session(plc300, seed=0)
        table = session.grid(
            ["uniform(p=0.5)"],
            [AlgorithmSpec("edges", lambda g: g.num_edges, "scalar"), "pr"],
        )
        assert len(table) == 2
        assert "edges" in table.algorithms()

    def test_empty_axes_rejected(self, plc300):
        session = Session(plc300, seed=0)
        with pytest.raises(ValueError, match="at least one scheme"):
            session.grid([], ["pr"])
        with pytest.raises(ValueError, match="at least one algorithm"):
            session.grid(["uniform(p=0.5)"], [])

    def test_from_csv_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            SweepTable.from_csv("no/such/table.csv")

    def test_bound_bfs_honors_its_source(self, plc300):
        # bfs(source=N) through the registry must score critical edges
        # from N, not from the session default root.
        table3 = Session(plc300, seed=0).grid(["uniform(p=0.5)"], ["bfs(source=3)"])
        rooted = Session(plc300, seed=0, bfs_root=3).grid(["uniform(p=0.5)"], ["bfs"])
        assert table3.rows[0].value == rooted.rows[0].value

    def test_bound_traversal_runs_no_baseline(self, plc300):
        session = Session(plc300, seed=0)
        session.grid(["uniform(p=0.5)"], ["bfs(source=0)"])
        assert session.baseline_computations == 0

    def test_battery_and_registry_spellings_share_identity(self, plc300):
        # "pr" (battery short name) and "pagerank" (registry name) bind
        # to the same canonical spec: one grid cell, one baseline.
        session = Session(plc300, seed=0)
        table = session.grid(["uniform(p=0.5)"], ["pr", "pagerank"], ["kl"])
        assert len(table) == 1
        assert session.baseline_computations == 1

    def test_to_markdown_round_trip_safe_floats(self, plc300):
        table = Session(plc300, seed=0).grid(SCHEMES3, ["pr", "cc"])
        md = table.to_markdown(title="grid")
        lines = md.strip().splitlines()
        assert lines[0] == "**grid**"
        assert lines[2].startswith("| scheme |")
        assert set(lines[3].replace("|", "")) <= {"-"}
        # Values printed in markdown parse back to the exact float — the
        # same repr format to_csv uses.
        body = lines[4:]
        assert len(body) == len(table)
        value_col = lines[2].strip("|").split("|").index(" value ")
        for line, cell in zip(body, table):
            printed = line.strip("|").split("|")[value_col].strip()
            assert float(printed) == cell.value
        # to_csv shares the format: the same strings appear there.
        assert repr(table.rows[0].value) in table.to_csv()

    def test_to_markdown_escapes_pipes_and_drops_empty_columns(self, plc300):
        table = Session(plc300, seed=0).grid(
            ["uniform(p=0.9) | spanner(k=4)"], ["cc"]
        )
        md = table.to_markdown()
        # The pipeline scheme's "|" must not break the table grammar.
        assert "uniform(p=0.9) \\| spanner" in md
        header = md.splitlines()[0]
        assert "graph" not in header  # all-empty column dropped
        assert "seed" in header  # seeds are recorded
        with pytest.raises(ValueError, match="unknown columns"):
            table.to_markdown(columns=["scheme", "nope"])
        narrow = table.to_markdown(columns=["scheme", "value"])
        assert narrow.splitlines()[0] == "| scheme | value |"

    def test_cell_fields_serializable(self, plc300):
        cell = Session(plc300, seed=0).grid(["uniform(p=0.5)"], ["cc"]).rows[0]
        assert isinstance(cell, GridCell)
        d = cell.to_dict()
        assert GridCell.from_dict(d) == cell
        assert -1.0 <= cell.relative_runtime_difference <= 1.0 or True


class TestSessionRegistryAlgorithms:
    def test_run_accepts_registry_spec_strings(self, plc300):
        session = Session(plc300, seed=0)
        scores = (
            session.compress("uniform(p=0.5)")
            .run("pagerank(iterations=20)", "sssp")
            .score()
        )
        # Runs are labeled by full spec; bare names resolve unambiguously.
        assert "kl_divergence" in scores["pagerank"]
        assert "reordered_neighbor_pairs" in scores["sssp"]

    def test_two_parameterizations_coexist(self, plc300):
        session = Session(plc300, seed=0)
        run = session.compress("uniform(p=0.5)").run(
            "sssp(source=0)", "sssp(source=5)"
        )
        scores = run.score()
        assert set(scores) == {"sssp(source=0)", "sssp(source=5)"}
        with pytest.raises(ValueError, match="ambiguous"):
            run.outputs("sssp")
        assert run.outputs("sssp(source=5)")[1] is not None

    def test_session_defaults_injected(self, plc300):
        session = Session(plc300, seed=0, bfs_root=3, pr_iterations=17)
        bound = session._bind("pr")
        assert bound.spec.params["max_iterations"] == 17
        assert session._bind("sssp").spec.params["source"] == 3
        assert session._bind("bfs").spec.params["source"] == 3
        # Explicit parameters win over session defaults.
        assert session._bind("bfs(source=5)").spec.params["source"] == 5


class TestMappingAlignment:
    def test_collapse_alignment_uses_mapping(self, plc300):
        session = Session(plc300, seed=0)
        run = session.compress("tr(p=0.9, variant=collapse)")
        assert run.graph.n < plc300.n
        mapping = run.alignment()
        assert mapping is not None and len(mapping) == plc300.n
        assert mapping.max() < run.graph.n
        run.run("pagerank(iterations=30)")
        out0, out1 = run.outputs("pagerank")
        scores = run.score(["kl"])
        # The score must equal KL of the mapping-aligned vectors — i.e.
        # each original vertex reads its supervertex's rank — not the
        # zero-padded tail the legacy path compared against.
        aligned = out1.ranks[mapping]
        expected = kl_divergence(out0.ranks, aligned)
        assert scores["kl_divergence"] == pytest.approx(expected)
        padded = np.zeros(plc300.n)
        padded[: run.graph.n] = out1.ranks
        assert expected != pytest.approx(kl_divergence(out0.ranks, padded))

    def test_vertex_set_scores_translate_compressed_ids(self, plc300):
        # The MIS of a relabeled sample lives in compacted id space; its
        # jaccard score must translate those ids back through the mapping
        # instead of intersecting incompatible id spaces.
        session = Session(plc300, seed=0)
        run = session.compress("vertex_sampling(p=0.5, relabel=true)")
        run.run("mis")
        score = run.score()["mis"]["jaccard_overlap"]
        mapping = run.alignment()
        out0, out1 = run.outputs("mis")
        bound = run._runs["mis"].runner
        a = bound.extract(out0)
        inverse = {int(c): int(v) for v, c in enumerate(mapping) if c >= 0}
        b = frozenset(inverse[int(c)] for c in bound.extract(out1))
        assert score == pytest.approx(len(a & b) / len(a | b))

    def test_relabel_sampling_records_mapping(self, plc300):
        session = Session(plc300, seed=0)
        run = session.compress("vertex_sampling(p=0.6, relabel=true)")
        mapping = run.alignment()
        assert mapping is not None
        dropped = mapping < 0
        assert dropped.sum() == plc300.n - run.graph.n
        survivors = np.sort(mapping[~dropped])
        np.testing.assert_array_equal(survivors, np.arange(run.graph.n))

    def test_chain_alignment_composes_stages(self, plc300):
        session = Session(plc300, seed=0)
        run = session.compress("uniform(p=0.9) | tr(p=0.9, variant=collapse)")
        mapping = run.alignment()
        assert mapping is not None and len(mapping) == plc300.n
        assert mapping.max() < run.graph.n
        # Scoring a per-vertex algorithm through the composed map works.
        scores = run.run("pagerank(iterations=20)").score(["kl"])
        assert np.isfinite(scores["kl_divergence"])

    def test_low_degree_relabel_records_composed_mapping(self):
        from repro.graphs.csr import CSRGraph

        # K4 on {0..3} plus a pendant chain 3-4-5: fixpoint peeling takes
        # two rounds (5 first, then 4), so the mapping must compose.
        g = CSRGraph.from_edges(
            6, [0, 0, 0, 1, 1, 2, 3, 4], [1, 2, 3, 2, 3, 3, 4, 5]
        )
        session = Session(g, seed=0)
        run = session.compress("low_degree(max_degree=1, rounds=none, relabel=true)")
        assert run.graph.n == 4
        assert run.result.extras["rounds"] >= 2
        mapping = run.alignment()
        assert mapping is not None
        # The clique keeps its ids; both peeled chain vertices map to -1.
        np.testing.assert_array_equal(mapping, [0, 1, 2, 3, -1, -1])

    def test_identity_schemes_have_no_mapping(self, plc300):
        run = Session(plc300, seed=0).compress("uniform(p=0.5)")
        assert run.alignment() is None
        assert vertex_alignment(run.result) is None
