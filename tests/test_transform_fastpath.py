"""Property tests: the sort-free O(m) transforms are buffer-identical to a
full rebuild.

``keep_edges`` / ``delete_edges`` / ``remove_vertices`` derive the child's
CSR arrays from the parent's without a ``lexsort``; these tests assert the
result is *bit-identical* — every buffer, including ``arc_edge_ids`` order
— to both the legacy constructor rebuild (``_keep_edges_rebuild``) and a
``from_edges`` rebuild, over random directed/undirected, weighted and
unweighted graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.csr import CSRGraph


@st.composite
def random_graphs(draw, max_n=28, max_m=110):
    """Random graphs across the four (directed × weighted) quadrants."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    directed = draw(st.booleans())
    weighted = draw(st.booleans())
    weights = None
    if weighted:
        weights = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=m,
                max_size=m,
            )
        )
    return CSRGraph.from_edges(n, src, dst, weights, directed=directed)


def assert_buffers_identical(a: CSRGraph, b: CSRGraph) -> None:
    assert a.n == b.n and a.directed == b.directed
    assert np.array_equal(a.edge_src, b.edge_src)
    assert np.array_equal(a.edge_dst, b.edge_dst)
    if a.edge_weights is None:
        assert b.edge_weights is None
    else:
        assert np.array_equal(a.edge_weights, b.edge_weights)
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.arc_edge_ids, b.arc_edge_ids)
    for name in ("edge_src", "edge_dst", "indptr", "indices", "arc_edge_ids"):
        assert getattr(a, name).dtype == getattr(b, name).dtype


@given(random_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=120, deadline=None)
def test_keep_edges_identical_to_rebuild(g, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random(g.num_edges) < rng.uniform(0.0, 1.0)
    fast = g.keep_edges(mask)
    legacy = g._keep_edges_rebuild(mask)
    w = None if g.edge_weights is None else g.edge_weights[mask]
    from_scratch = CSRGraph.from_edges(
        g.n, g.edge_src[mask], g.edge_dst[mask], w, directed=g.directed
    )
    assert_buffers_identical(fast, legacy)
    assert_buffers_identical(fast, from_scratch)
    fast.validate()


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_keep_edges_all_and_none(g):
    everything = g.keep_edges(np.ones(g.num_edges, dtype=bool))
    assert_buffers_identical(everything, g)
    nothing = g.keep_edges(np.zeros(g.num_edges, dtype=bool))
    assert nothing.num_edges == 0 and nothing.n == g.n
    nothing.validate()


@given(random_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_delete_edges_identical_to_rebuild(g, seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(0, g.num_edges + 1))
    victims = rng.choice(g.num_edges, size=k, replace=True) if k else []
    fast = g.delete_edges(victims)
    mask = np.ones(g.num_edges, dtype=bool)
    mask[np.asarray(victims, dtype=np.int64)] = False
    assert_buffers_identical(fast, g._keep_edges_rebuild(mask))
    fast.validate()


@given(random_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_remove_vertices_identical_to_rebuild(g, seed):
    rng = np.random.default_rng(seed)
    victims = np.flatnonzero(rng.random(g.n) < 0.3)
    gone = np.zeros(g.n, dtype=bool)
    gone[victims] = True
    edge_mask = ~(gone[g.edge_src] | gone[g.edge_dst])

    fast = g.remove_vertices(victims)
    assert_buffers_identical(fast, g._keep_edges_rebuild(edge_mask))
    fast.validate()

    # relabel=True against the legacy monotone-renumber rebuild.
    relabeled = g.remove_vertices(victims, relabel=True)
    sub = g._keep_edges_rebuild(edge_mask)
    new_id = np.cumsum(~gone) - 1
    w = sub.edge_weights
    legacy = CSRGraph(
        int((~gone).sum()),
        new_id[sub.edge_src],
        new_id[sub.edge_dst],
        w,
        directed=g.directed,
    )
    assert_buffers_identical(relabeled, legacy)
    relabeled.validate()


@given(random_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_with_weights_shares_structure(g, seed):
    rng = np.random.default_rng(seed)
    w = rng.random(g.num_edges)
    gw = g.with_weights(w)
    assert gw.indptr is g.indptr and gw.indices is g.indices
    assert gw.arc_edge_ids is g.arc_edge_ids
    assert np.array_equal(gw.edge_weights, w)
    gw.validate()
    back = gw.with_weights(None)
    assert back.edge_weights is None
    assert_buffers_identical(
        back, CSRGraph(g.n, g.edge_src, g.edge_dst, None, directed=g.directed)
    )


class TestDeleteEdgesValidation:
    def setup_method(self):
        self.g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3])

    def test_negative_edge_id_rejected(self):
        with pytest.raises(ValueError, match=r"edge id -1 out of range"):
            self.g.delete_edges([-1])

    def test_out_of_range_edge_id_rejected(self):
        with pytest.raises(ValueError, match=r"edge id 3 out of range"):
            self.g.delete_edges([0, 3])

    def test_error_names_the_offending_id(self):
        with pytest.raises(ValueError, match=r"edge id -7"):
            self.g.delete_edges([1, -7, 2])

    def test_valid_ids_still_work(self):
        assert self.g.delete_edges([0, 0, 2]).num_edges == 1

    def test_empty_is_noop(self):
        assert self.g.delete_edges([]).num_edges == 3


class TestRemoveVerticesValidation:
    def setup_method(self):
        self.g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3])

    def test_negative_vertex_id_rejected(self):
        with pytest.raises(ValueError, match=r"vertex id -2 out of range"):
            self.g.remove_vertices([-2])

    def test_out_of_range_vertex_id_rejected(self):
        with pytest.raises(ValueError, match=r"vertex id 4 out of range"):
            self.g.remove_vertices([4])


def test_with_weights_validates_length():
    g = CSRGraph.from_edges(3, [0, 1], [1, 2])
    with pytest.raises(ValueError, match="match the number of edges"):
        g.with_weights([1.0])
